// Community analysis pipeline: extract a vertex community from a weighted
// web-crawl proxy with ESBV, then characterize it — triangle count
// (clustering), connected components, and k-core — all on the simulated
// GPU.  Chains four library algorithms through one device.
//
//   $ ./build/examples/community_subgraph [--gpu=A100] [--fraction=0.4]

#include <cstdio>
#include <string>

#include "core/conn_components.h"
#include "core/kcore.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "graph/stats.h"
#include "util/flags.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

using namespace adgraph;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  double fraction = flags.GetDouble("fraction", 0.4);
  std::string gpu_name = flags.GetString("gpu", "A100");
  const vgpu::ArchConfig* arch = &vgpu::A100Config();
  for (const auto* gpu : vgpu::PaperGpus()) {
    if (gpu->name == gpu_name) arch = gpu;
  }

  // A weighted web-crawl proxy (ESBV requires edge weights, paper §4.5).
  graph::RmatParams params;
  params.scale = 14;
  params.edge_factor = 10;
  params.a = 0.45;
  params.b = 0.25;
  params.c = 0.25;
  params.d = 0.05;
  params.permute_vertices = false;
  params.seed = 7;
  auto coo = graph::GenerateRmat(params).value();
  graph::AttachRandomWeights(&coo, 0.1, 1.0, 8);
  graph::CsrBuildOptions clean;
  clean.remove_duplicates = true;
  clean.remove_self_loops = true;
  auto g = graph::CsrGraph::FromCoo(coo, clean).value();
  std::printf("web proxy: %u pages, %llu weighted links\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  vgpu::Device device(*arch);

  // 1. Extract the community (pseudo-cluster of `fraction` of vertices).
  core::EsbvOptions esbv;
  esbv.vertices =
      core::SelectPseudoCluster(g.num_vertices(), fraction, /*seed=*/3);
  auto extraction = core::ExtractSubgraphByVertex(&device, g, esbv);
  if (!extraction.ok()) {
    std::fprintf(stderr, "ESBV failed: %s\n",
                 extraction.status().ToString().c_str());
    return 1;
  }
  const graph::CsrGraph& community = extraction->subgraph;
  std::printf("ESBV on %s: %llu vertices, %llu edges kept (%.3f ms)\n",
              device.name().c_str(),
              static_cast<unsigned long long>(extraction->subgraph_vertices),
              static_cast<unsigned long long>(extraction->subgraph_edges),
              extraction->time_ms);
  if (community.num_edges() == 0) {
    std::printf("empty community; nothing to analyze\n");
    return 0;
  }

  // 2. Clustering structure: triangles per edge.
  auto tc = core::RunTriangleCount(&device, community, {}).value();
  double closure = static_cast<double>(tc.triangles) /
                   static_cast<double>(tc.oriented_edges);
  std::printf("triangles: %llu (%.4f per undirected edge, %.3f ms)\n",
              static_cast<unsigned long long>(tc.triangles), closure,
              tc.time_ms);

  // 3. Cohesion: connected components of the community.
  auto cc = core::RunConnectedComponents(&device, community, {}).value();
  std::printf("components: %llu across %u vertices (%.3f ms)\n",
              static_cast<unsigned long long>(cc.num_components),
              community.num_vertices(), cc.time_ms);

  // 4. Core structure: who survives 4-core peeling?
  core::KCoreOptions kcore;
  kcore.k = 4;
  auto core4 = core::RunKCore(&device, community, kcore).value();
  std::printf("4-core: %llu vertices after %u peel rounds (%.3f ms)\n",
              static_cast<unsigned long long>(core4.core_size),
              core4.peel_rounds, core4.time_ms);

  std::printf("total modeled GPU time: %.3f ms\n", device.elapsed_ms());
  return 0;
}
