// The paper in miniature: run the same BFS binary-identically on all four
// simulated GPUs and dump the dual-view profiling the study is built on —
// ncu-style metrics for the NVIDIA parts, ROCm-style for the AMD-like
// parts — straight from the library's profiling API.
//
//   $ ./build/examples/arch_compare [--scale=14]

#include <cstdio>

#include "core/bfs.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "prof/metrics.h"
#include "prof/session.h"
#include "runtime/runtime.h"
#include "util/flags.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

using namespace adgraph;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 14));

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 12;
  params.seed = 99;
  auto coo = graph::GenerateRmat(params).value();
  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  auto g = graph::CsrGraph::FromCoo(coo, sym).value();
  graph::vid_t source = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(source)) source = v;
  }
  std::printf("workload: BFS over %u vertices / %llu undirected edges, "
              "source %u\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), source);

  for (const auto* arch : vgpu::PaperGpus()) {
    vgpu::Device device(*arch);
    auto platform = rt::PlatformOf(device);

    prof::Session session(&device);
    core::BfsOptions options;
    options.source = source;
    options.assume_symmetric = true;
    auto bfs = core::RunBfs(&device, g, options);
    if (!bfs.ok()) {
      std::fprintf(stderr, "%s: %s\n", device.name().c_str(),
                   bfs.status().ToString().c_str());
      return 1;
    }
    auto profile = session.Finish();

    std::printf("=== %s (%s, %s / %s, wavefront %u) ===\n",
                device.name().c_str(), arch->vendor.c_str(),
                rt::PlatformName(platform).c_str(),
                rt::LibraryNameOn(platform).c_str(), arch->warp_width);
    std::printf("  runtime %.4f ms  (%.1f MTEPS), %llu kernel launches\n",
                bfs->time_ms,
                static_cast<double>(g.num_edges()) / (bfs->time_ms * 1e3),
                static_cast<unsigned long long>(profile.num_kernels));

    auto fine = prof::ComputeFineGrained(profile, platform);
    auto fine_names = prof::FineGrainedMetricNames(platform);
    std::printf("  fine-grained (instruction counts, Tables 1/6):\n");
    const uint64_t fine_values[4] = {fine.type1, fine.type2, fine.type3,
                                     fine.type4};
    for (int i = 0; i < 4; ++i) {
      std::printf("    %-30s %12llu  (%.0f /ms)\n", fine_names[i].c_str(),
                  static_cast<unsigned long long>(fine_values[i]),
                  static_cast<double>(fine_values[i]) / bfs->time_ms);
    }

    auto coarse = prof::ComputeCoarse(profile, platform, *arch,
                                      vgpu::DefaultTimingParams());
    auto coarse_names = prof::CoarseMetricNames(platform);
    const double coarse_values[4] = {coarse.warp_utilization,
                                     coarse.shared_memory, coarse.l2_hit,
                                     coarse.global_memory};
    std::printf("  coarse-grained (utilization, Tables 2 / Figs 7-8):\n");
    for (int i = 0; i < 4; ++i) {
      std::printf("    %-30s %6.1f%%\n", coarse_names[i].c_str(),
                  coarse_values[i] * 100);
    }
    std::printf("\n");
  }
  std::printf("Same library, same graph, same source: only the simulated "
              "architecture differs.\n");
  return 0;
}
