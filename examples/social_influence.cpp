// Social-network influence analysis: generate a power-law "social graph"
// proxy, run PageRank on a simulated GPU, and report the top influencers
// plus how rank correlates with degree — the recommendation-system style
// workload the paper's introduction motivates.
//
//   $ ./build/examples/social_influence [--scale=14] [--gpu=Z100L]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pagerank.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "graph/stats.h"
#include "util/flags.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

using namespace adgraph;

namespace {

const vgpu::ArchConfig& GpuByName(const std::string& name) {
  for (const auto* gpu : vgpu::PaperGpus()) {
    if (gpu->name == name) return *gpu;
  }
  std::fprintf(stderr, "unknown GPU '%s', using Z100L\n", name.c_str());
  return vgpu::Z100LConfig();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 14));
  const auto& arch = GpuByName(flags.GetString("gpu", "Z100L"));

  // A followers-style graph: heavy-tailed in-degree (celebrities).
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  params.a = 0.50;
  params.b = 0.22;
  params.c = 0.22;
  params.d = 0.06;
  params.seed = 2024;
  auto coo = graph::GenerateRmat(params);
  if (!coo.ok()) {
    std::fprintf(stderr, "%s\n", coo.status().ToString().c_str());
    return 1;
  }
  graph::CsrBuildOptions clean;
  clean.remove_duplicates = true;
  clean.remove_self_loops = true;
  auto g = graph::CsrGraph::FromCoo(*coo, clean).value();
  auto stats = graph::ComputeDegreeStats(g);
  std::printf("social proxy: %u users, %llu follow edges, max out-degree "
              "%u (skew %.0fx)\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              stats.max_degree, stats.skew());

  vgpu::Device device(arch);
  core::PageRankOptions options;
  options.alpha = 0.85;
  options.max_iterations = 60;
  options.tolerance = 1e-8;
  auto pr = core::RunPageRank(&device, g, options);
  if (!pr.ok()) {
    std::fprintf(stderr, "PageRank failed: %s\n",
                 pr.status().ToString().c_str());
    return 1;
  }
  std::printf("PageRank on %s: %u iterations, final L1 delta %.2e, "
              "modeled GPU time %.3f ms\n",
              device.name().c_str(), pr->iterations, pr->l1_delta,
              pr->time_ms);

  // Top influencers: who gathers the most rank mass?
  std::vector<graph::vid_t> order(g.num_vertices());
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](graph::vid_t a, graph::vid_t b) {
    return pr->ranks[a] > pr->ranks[b];
  });
  // In-degree for context (influence flows along incoming follows).
  auto gt = g.Transpose();
  std::printf("top 10 influencers:\n");
  std::printf("  %-8s %-12s %-10s\n", "user", "rank", "followers");
  for (int i = 0; i < 10 && i < static_cast<int>(order.size()); ++i) {
    graph::vid_t v = order[i];
    std::printf("  %-8u %-12.3e %-10u\n", v, pr->ranks[v], gt.degree(v));
  }

  // Rank concentration: how much of the total rank the top 1% holds — the
  // hallmark of power-law influence structure.
  size_t top = std::max<size_t>(1, order.size() / 100);
  double mass = 0;
  for (size_t i = 0; i < top; ++i) mass += pr->ranks[order[i]];
  std::printf("top 1%% of users hold %.1f%% of total rank\n", mass * 100);
  return 0;
}
