// Quickstart: build a graph, run BFS on a simulated A100, inspect results.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface once: graph construction, device
// creation, an algorithm run, and the result + timing you get back.

#include <cstdio>

#include "core/bfs.h"
#include "graph/builder.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

using namespace adgraph;

int main() {
  // 1. Build a small graph.  GraphBuilder grows the vertex set on demand;
  //    Build() finalizes into the CSR format every algorithm consumes.
  graph::GraphBuilder builder;
  //        0
  //       / \
  //      1   2
  //     /|   |
  //    3 4   5 - 6
  builder.AddEdge(0, 1).AddEdge(0, 2);
  builder.AddEdge(1, 3).AddEdge(1, 4);
  builder.AddEdge(2, 5).AddEdge(5, 6);
  auto graph_result = builder.Build();
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  graph::CsrGraph g = std::move(graph_result).value();
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Create a simulated GPU.  The four paper configurations (Z100, V100,
  //    Z100L, A100) are built in; here we use the A100.
  vgpu::Device device(vgpu::A100Config());
  std::printf("device: %s (%s, warp %u, %u SMs)\n", device.name().c_str(),
              device.arch().vendor.c_str(), device.arch().warp_width,
              device.arch().num_sms);

  // 3. Run BFS from vertex 0.  The graph is uploaded, the traversal runs
  //    as simulated GPU kernels, and levels come back to the host.
  core::BfsOptions options;
  options.source = 0;
  auto bfs = core::RunBfs(&device, g, options);
  if (!bfs.ok()) {
    std::fprintf(stderr, "BFS failed: %s\n", bfs.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the results.
  std::printf("BFS from vertex 0 visited %llu vertices, depth %u, "
              "modeled GPU time %.4f ms\n",
              static_cast<unsigned long long>(bfs->vertices_visited),
              bfs->depth, bfs->time_ms);
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (bfs->levels[v] == core::kUnreachedLevel) {
      std::printf("  vertex %u: unreached\n", v);
    } else {
      std::printf("  vertex %u: level %u\n", v, bfs->levels[v]);
    }
  }
  double mteps =
      static_cast<double>(g.num_edges()) / (bfs->time_ms * 1e3);
  std::printf("throughput: %.1f MTEPS (paper Table 5 convention)\n", mteps);
  return 0;
}
