# Empty compiler generated dependencies file for adgraph_graph.
# This may be replaced when dependencies are built.
