file(REMOVE_RECURSE
  "libadgraph_graph.a"
)
