file(REMOVE_RECURSE
  "CMakeFiles/adgraph_graph.dir/builder.cc.o"
  "CMakeFiles/adgraph_graph.dir/builder.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/csr.cc.o"
  "CMakeFiles/adgraph_graph.dir/csr.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/datasets.cc.o"
  "CMakeFiles/adgraph_graph.dir/datasets.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/generate.cc.o"
  "CMakeFiles/adgraph_graph.dir/generate.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/io.cc.o"
  "CMakeFiles/adgraph_graph.dir/io.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/reorder.cc.o"
  "CMakeFiles/adgraph_graph.dir/reorder.cc.o.d"
  "CMakeFiles/adgraph_graph.dir/stats.cc.o"
  "CMakeFiles/adgraph_graph.dir/stats.cc.o.d"
  "libadgraph_graph.a"
  "libadgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
