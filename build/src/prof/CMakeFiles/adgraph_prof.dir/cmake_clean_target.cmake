file(REMOVE_RECURSE
  "libadgraph_prof.a"
)
