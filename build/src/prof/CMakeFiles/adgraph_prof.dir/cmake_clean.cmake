file(REMOVE_RECURSE
  "CMakeFiles/adgraph_prof.dir/metrics.cc.o"
  "CMakeFiles/adgraph_prof.dir/metrics.cc.o.d"
  "CMakeFiles/adgraph_prof.dir/report.cc.o"
  "CMakeFiles/adgraph_prof.dir/report.cc.o.d"
  "libadgraph_prof.a"
  "libadgraph_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
