# Empty compiler generated dependencies file for adgraph_prof.
# This may be replaced when dependencies are built.
