# Empty compiler generated dependencies file for adgraph_vgpu.
# This may be replaced when dependencies are built.
