file(REMOVE_RECURSE
  "CMakeFiles/adgraph_vgpu.dir/arch.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/arch.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/counters.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/counters.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/ctx.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/ctx.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/device.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/device.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/mem/address_space.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/mem/address_space.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/mem/cache.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/mem/cache.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/mem/coalescer.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/mem/coalescer.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/mem/shared_mem.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/mem/shared_mem.cc.o.d"
  "CMakeFiles/adgraph_vgpu.dir/timing.cc.o"
  "CMakeFiles/adgraph_vgpu.dir/timing.cc.o.d"
  "libadgraph_vgpu.a"
  "libadgraph_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
