
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/arch.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/arch.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/arch.cc.o.d"
  "/root/repo/src/vgpu/counters.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/counters.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/counters.cc.o.d"
  "/root/repo/src/vgpu/ctx.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/ctx.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/ctx.cc.o.d"
  "/root/repo/src/vgpu/device.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/device.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/device.cc.o.d"
  "/root/repo/src/vgpu/mem/address_space.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/address_space.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/address_space.cc.o.d"
  "/root/repo/src/vgpu/mem/cache.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/cache.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/cache.cc.o.d"
  "/root/repo/src/vgpu/mem/coalescer.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/coalescer.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/vgpu/mem/shared_mem.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/shared_mem.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/mem/shared_mem.cc.o.d"
  "/root/repo/src/vgpu/timing.cc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/timing.cc.o" "gcc" "src/vgpu/CMakeFiles/adgraph_vgpu.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
