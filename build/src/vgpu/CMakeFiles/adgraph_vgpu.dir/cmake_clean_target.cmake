file(REMOVE_RECURSE
  "libadgraph_vgpu.a"
)
