
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/adgraph_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/adgraph_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/stream.cc" "src/runtime/CMakeFiles/adgraph_runtime.dir/stream.cc.o" "gcc" "src/runtime/CMakeFiles/adgraph_runtime.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vgpu/CMakeFiles/adgraph_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
