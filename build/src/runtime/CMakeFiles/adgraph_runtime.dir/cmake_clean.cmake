file(REMOVE_RECURSE
  "CMakeFiles/adgraph_runtime.dir/runtime.cc.o"
  "CMakeFiles/adgraph_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/adgraph_runtime.dir/stream.cc.o"
  "CMakeFiles/adgraph_runtime.dir/stream.cc.o.d"
  "libadgraph_runtime.a"
  "libadgraph_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
