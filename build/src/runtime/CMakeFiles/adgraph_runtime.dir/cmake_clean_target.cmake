file(REMOVE_RECURSE
  "libadgraph_runtime.a"
)
