# Empty dependencies file for adgraph_runtime.
# This may be replaced when dependencies are built.
