file(REMOVE_RECURSE
  "CMakeFiles/adgraph_capi.dir/adgraph.cc.o"
  "CMakeFiles/adgraph_capi.dir/adgraph.cc.o.d"
  "libadgraph_capi.a"
  "libadgraph_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
