# Empty compiler generated dependencies file for adgraph_capi.
# This may be replaced when dependencies are built.
