file(REMOVE_RECURSE
  "libadgraph_capi.a"
)
