file(REMOVE_RECURSE
  "libadgraph_util.a"
)
