# Empty compiler generated dependencies file for adgraph_util.
# This may be replaced when dependencies are built.
