file(REMOVE_RECURSE
  "CMakeFiles/adgraph_util.dir/flags.cc.o"
  "CMakeFiles/adgraph_util.dir/flags.cc.o.d"
  "CMakeFiles/adgraph_util.dir/logging.cc.o"
  "CMakeFiles/adgraph_util.dir/logging.cc.o.d"
  "CMakeFiles/adgraph_util.dir/random.cc.o"
  "CMakeFiles/adgraph_util.dir/random.cc.o.d"
  "CMakeFiles/adgraph_util.dir/status.cc.o"
  "CMakeFiles/adgraph_util.dir/status.cc.o.d"
  "CMakeFiles/adgraph_util.dir/table.cc.o"
  "CMakeFiles/adgraph_util.dir/table.cc.o.d"
  "libadgraph_util.a"
  "libadgraph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
