file(REMOVE_RECURSE
  "CMakeFiles/adgraph_core.dir/bfs.cc.o"
  "CMakeFiles/adgraph_core.dir/bfs.cc.o.d"
  "CMakeFiles/adgraph_core.dir/coloring.cc.o"
  "CMakeFiles/adgraph_core.dir/coloring.cc.o.d"
  "CMakeFiles/adgraph_core.dir/conn_components.cc.o"
  "CMakeFiles/adgraph_core.dir/conn_components.cc.o.d"
  "CMakeFiles/adgraph_core.dir/device_graph.cc.o"
  "CMakeFiles/adgraph_core.dir/device_graph.cc.o.d"
  "CMakeFiles/adgraph_core.dir/host_ref.cc.o"
  "CMakeFiles/adgraph_core.dir/host_ref.cc.o.d"
  "CMakeFiles/adgraph_core.dir/jaccard.cc.o"
  "CMakeFiles/adgraph_core.dir/jaccard.cc.o.d"
  "CMakeFiles/adgraph_core.dir/kcore.cc.o"
  "CMakeFiles/adgraph_core.dir/kcore.cc.o.d"
  "CMakeFiles/adgraph_core.dir/pagerank.cc.o"
  "CMakeFiles/adgraph_core.dir/pagerank.cc.o.d"
  "CMakeFiles/adgraph_core.dir/spmv.cc.o"
  "CMakeFiles/adgraph_core.dir/spmv.cc.o.d"
  "CMakeFiles/adgraph_core.dir/sssp.cc.o"
  "CMakeFiles/adgraph_core.dir/sssp.cc.o.d"
  "CMakeFiles/adgraph_core.dir/subgraph.cc.o"
  "CMakeFiles/adgraph_core.dir/subgraph.cc.o.d"
  "CMakeFiles/adgraph_core.dir/triangle_count.cc.o"
  "CMakeFiles/adgraph_core.dir/triangle_count.cc.o.d"
  "CMakeFiles/adgraph_core.dir/widest_path.cc.o"
  "CMakeFiles/adgraph_core.dir/widest_path.cc.o.d"
  "libadgraph_core.a"
  "libadgraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
