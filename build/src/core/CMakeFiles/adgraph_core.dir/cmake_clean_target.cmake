file(REMOVE_RECURSE
  "libadgraph_core.a"
)
