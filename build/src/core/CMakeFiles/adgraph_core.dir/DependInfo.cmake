
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bfs.cc" "src/core/CMakeFiles/adgraph_core.dir/bfs.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/bfs.cc.o.d"
  "/root/repo/src/core/coloring.cc" "src/core/CMakeFiles/adgraph_core.dir/coloring.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/coloring.cc.o.d"
  "/root/repo/src/core/conn_components.cc" "src/core/CMakeFiles/adgraph_core.dir/conn_components.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/conn_components.cc.o.d"
  "/root/repo/src/core/device_graph.cc" "src/core/CMakeFiles/adgraph_core.dir/device_graph.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/device_graph.cc.o.d"
  "/root/repo/src/core/host_ref.cc" "src/core/CMakeFiles/adgraph_core.dir/host_ref.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/host_ref.cc.o.d"
  "/root/repo/src/core/jaccard.cc" "src/core/CMakeFiles/adgraph_core.dir/jaccard.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/jaccard.cc.o.d"
  "/root/repo/src/core/kcore.cc" "src/core/CMakeFiles/adgraph_core.dir/kcore.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/kcore.cc.o.d"
  "/root/repo/src/core/pagerank.cc" "src/core/CMakeFiles/adgraph_core.dir/pagerank.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/pagerank.cc.o.d"
  "/root/repo/src/core/spmv.cc" "src/core/CMakeFiles/adgraph_core.dir/spmv.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/spmv.cc.o.d"
  "/root/repo/src/core/sssp.cc" "src/core/CMakeFiles/adgraph_core.dir/sssp.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/sssp.cc.o.d"
  "/root/repo/src/core/subgraph.cc" "src/core/CMakeFiles/adgraph_core.dir/subgraph.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/subgraph.cc.o.d"
  "/root/repo/src/core/triangle_count.cc" "src/core/CMakeFiles/adgraph_core.dir/triangle_count.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/triangle_count.cc.o.d"
  "/root/repo/src/core/widest_path.cc" "src/core/CMakeFiles/adgraph_core.dir/widest_path.cc.o" "gcc" "src/core/CMakeFiles/adgraph_core.dir/widest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/adgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/adgraph_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/adgraph_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/adgraph_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
