# Empty compiler generated dependencies file for adgraph_core.
# This may be replaced when dependencies are built.
