
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/graph_test.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capi/CMakeFiles/adgraph_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/adgraph_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/adgraph_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/adgraph_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
