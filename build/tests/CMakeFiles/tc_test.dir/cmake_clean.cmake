file(REMOVE_RECURSE
  "CMakeFiles/tc_test.dir/tc_test.cc.o"
  "CMakeFiles/tc_test.dir/tc_test.cc.o.d"
  "tc_test"
  "tc_test.pdb"
  "tc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
