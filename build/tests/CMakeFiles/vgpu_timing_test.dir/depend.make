# Empty dependencies file for vgpu_timing_test.
# This may be replaced when dependencies are built.
