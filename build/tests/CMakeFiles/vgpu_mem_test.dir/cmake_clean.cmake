file(REMOVE_RECURSE
  "CMakeFiles/vgpu_mem_test.dir/vgpu_mem_test.cc.o"
  "CMakeFiles/vgpu_mem_test.dir/vgpu_mem_test.cc.o.d"
  "vgpu_mem_test"
  "vgpu_mem_test.pdb"
  "vgpu_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgpu_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
