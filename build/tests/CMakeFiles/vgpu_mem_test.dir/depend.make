# Empty dependencies file for vgpu_mem_test.
# This may be replaced when dependencies are built.
