file(REMOVE_RECURSE
  "CMakeFiles/vgpu_exec_test.dir/vgpu_exec_test.cc.o"
  "CMakeFiles/vgpu_exec_test.dir/vgpu_exec_test.cc.o.d"
  "vgpu_exec_test"
  "vgpu_exec_test.pdb"
  "vgpu_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgpu_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
