# Empty dependencies file for vgpu_exec_test.
# This may be replaced when dependencies are built.
