# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_mem_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_exec_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_timing_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/reorder_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/prof_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
include("/root/repo/build/tests/bfs_test[1]_include.cmake")
include("/root/repo/build/tests/tc_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/fused_ops_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
