# Empty compiler generated dependencies file for community_subgraph.
# This may be replaced when dependencies are built.
