file(REMOVE_RECURSE
  "CMakeFiles/community_subgraph.dir/community_subgraph.cpp.o"
  "CMakeFiles/community_subgraph.dir/community_subgraph.cpp.o.d"
  "community_subgraph"
  "community_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
