file(REMOVE_RECURSE
  "CMakeFiles/adgraph_cli.dir/adgraph_cli.cc.o"
  "CMakeFiles/adgraph_cli.dir/adgraph_cli.cc.o.d"
  "adgraph_cli"
  "adgraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
