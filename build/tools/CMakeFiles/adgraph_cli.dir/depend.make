# Empty dependencies file for adgraph_cli.
# This may be replaced when dependencies are built.
