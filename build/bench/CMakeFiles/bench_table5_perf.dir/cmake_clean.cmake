file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_perf.dir/bench_table5_perf.cc.o"
  "CMakeFiles/bench_table5_perf.dir/bench_table5_perf.cc.o.d"
  "bench_table5_perf"
  "bench_table5_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
