# Empty dependencies file for bench_fig4_speedup_g1.
# This may be replaced when dependencies are built.
