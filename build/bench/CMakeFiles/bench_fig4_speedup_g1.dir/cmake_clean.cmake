file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_speedup_g1.dir/bench_fig4_speedup_g1.cc.o"
  "CMakeFiles/bench_fig4_speedup_g1.dir/bench_fig4_speedup_g1.cc.o.d"
  "bench_fig4_speedup_g1"
  "bench_fig4_speedup_g1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_speedup_g1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
