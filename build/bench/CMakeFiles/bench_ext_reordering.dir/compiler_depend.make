# Empty compiler generated dependencies file for bench_ext_reordering.
# This may be replaced when dependencies are built.
