file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reordering.dir/bench_ext_reordering.cc.o"
  "CMakeFiles/bench_ext_reordering.dir/bench_ext_reordering.cc.o.d"
  "bench_ext_reordering"
  "bench_ext_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
