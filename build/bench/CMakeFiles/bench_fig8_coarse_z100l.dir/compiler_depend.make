# Empty compiler generated dependencies file for bench_fig8_coarse_z100l.
# This may be replaced when dependencies are built.
