file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_coarse_z100l.dir/bench_fig8_coarse_z100l.cc.o"
  "CMakeFiles/bench_fig8_coarse_z100l.dir/bench_fig8_coarse_z100l.cc.o.d"
  "bench_fig8_coarse_z100l"
  "bench_fig8_coarse_z100l.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_coarse_z100l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
