file(REMOVE_RECURSE
  "CMakeFiles/adgraph_bench_common.dir/bench_coarse_common.cc.o"
  "CMakeFiles/adgraph_bench_common.dir/bench_coarse_common.cc.o.d"
  "CMakeFiles/adgraph_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/adgraph_bench_common.dir/bench_common.cc.o.d"
  "libadgraph_bench_common.a"
  "libadgraph_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgraph_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
