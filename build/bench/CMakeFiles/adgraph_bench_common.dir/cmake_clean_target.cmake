file(REMOVE_RECURSE
  "libadgraph_bench_common.a"
)
