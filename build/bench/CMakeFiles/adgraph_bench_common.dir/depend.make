# Empty dependencies file for adgraph_bench_common.
# This may be replaced when dependencies are built.
