# Empty dependencies file for bench_fig7_coarse_a100.
# This may be replaced when dependencies are built.
