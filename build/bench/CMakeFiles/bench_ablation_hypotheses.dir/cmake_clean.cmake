file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hypotheses.dir/bench_ablation_hypotheses.cc.o"
  "CMakeFiles/bench_ablation_hypotheses.dir/bench_ablation_hypotheses.cc.o.d"
  "bench_ablation_hypotheses"
  "bench_ablation_hypotheses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
