# Empty dependencies file for bench_ablation_hypotheses.
# This may be replaced when dependencies are built.
