#!/usr/bin/env python3
"""Validates a Chrome-trace JSON file as emitted by the adgraph tracer.

Used by CI against the --trace exports and the flight recorder's shutdown
dump: the file must be an object with a `traceEvents` array; every event
must be a metadata ("M"), complete ("X"), or instant ("i") record with the
fields Chrome's trace viewer needs; every referenced track (tid) must be
named by a `thread_name` metadata record; complete events on one track
must nest properly (a span either contains or is disjoint from every other
span on its track — partial overlap means the span tree is corrupt); and
kernel-category spans must carry the modeled-timing args the profile
pipeline derives from.

Usage:
    validate_trace.py FILE [--require-cat CAT]... [--require-arg CAT=KEY]...

`--require-cat CAT` asserts at least one event of category CAT is present.
`--require-arg CAT=KEY` asserts every X event of category CAT has args KEY
(kernel spans are always checked for `cycles` and `modeled_ms`).

Exit status 0 when the file parses cleanly and all requirements hold.
"""

import argparse
import json
import sys

# Span endpoints are microsecond doubles measured on one steady clock, so
# true containment is exact; the epsilon only absorbs float printing.
NEST_EPSILON_US = 0.01

ALWAYS_REQUIRED_ARGS = {'kernel': ['cycles', 'modeled_ms']}

# Interval annotations, not span-tree nodes: several jobs legitimately wait
# on one worker's queue at once, so their backdated wait spans overlap.
OVERLAP_OK = {'queue_wait'}


def validate_events(events, require_args, overlap_ok, errors):
    named_tids = set()
    used_tids = set()
    spans_by_tid = {}
    categories = set()

    for number, event in enumerate(events):
        where = f'event {number}'
        if not isinstance(event, dict):
            errors.append(f'{where}: not an object')
            continue
        ph = event.get('ph')
        if ph == 'M':
            if event.get('name') == 'thread_name':
                named_tids.add(event.get('tid'))
            continue
        if ph not in ('X', 'i'):
            errors.append(f'{where}: unknown phase {ph!r}')
            continue
        name = event.get('name')
        if not isinstance(name, str) or not name:
            errors.append(f'{where}: missing or empty name')
            continue
        where = f'event {number} ({name!r})'
        if not isinstance(event.get('cat'), str):
            errors.append(f'{where}: missing cat')
            continue
        categories.add(event['cat'])
        tid = event.get('tid')
        used_tids.add(tid)
        ts = event.get('ts')
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f'{where}: bad ts {ts!r}')
            continue
        if ph == 'i':
            if event.get('s') != 't':
                errors.append(f'{where}: instant without thread scope s="t"')
            continue
        dur = event.get('dur')
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f'{where}: X event with bad dur {dur!r}')
            continue
        if name not in overlap_ok:
            spans_by_tid.setdefault(tid, []).append((ts, ts + dur, name))
        args = event.get('args', {})
        for key in require_args.get(event['cat'], []):
            if key not in args:
                errors.append(f'{where}: {event["cat"]} span missing '
                              f'required arg {key!r}')

    for tid in sorted(used_tids - named_tids, key=repr):
        errors.append(f'tid {tid}: referenced by events but never named by '
                      f'a thread_name metadata record')

    # Nesting per track: walking spans by (start asc, end desc), every span
    # must close before the enclosing one does.  X events are emitted at
    # span end, so *file* order is end order — sort before checking.
    for tid, spans in sorted(spans_by_tid.items(), key=lambda kv: repr(kv[0])):
        stack = []
        for start, end, name in sorted(spans, key=lambda s: (s[0], -s[1])):
            while stack and start >= stack[-1][1] - NEST_EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][1] + NEST_EPSILON_US:
                errors.append(
                    f'tid {tid}: span {name!r} [{start}, {end}] partially '
                    f'overlaps {stack[-1][2]!r} [{stack[-1][0]}, '
                    f'{stack[-1][1]}] — the span tree is corrupt')
                continue
            stack.append((start, end, name))

    return categories, spans_by_tid


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('file')
    parser.add_argument('--require-cat', action='append', default=[],
                        help='category that must have >= 1 event')
    parser.add_argument('--require-arg', action='append', default=[],
                        metavar='CAT=KEY',
                        help='every X event of CAT must carry args KEY')
    parser.add_argument('--overlap-ok', action='append', default=[],
                        metavar='NAME',
                        help='span name exempt from the nesting check')
    args = parser.parse_args()

    errors = []
    try:
        with open(args.file, encoding='utf-8') as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f'validate_trace: {args.file}: {error}', file=sys.stderr)
        return 1

    events = trace.get('traceEvents') if isinstance(trace, dict) else None
    if not isinstance(events, list):
        print(f'validate_trace: {args.file}: no traceEvents array',
              file=sys.stderr)
        return 1

    require_args = {cat: list(keys)
                    for cat, keys in ALWAYS_REQUIRED_ARGS.items()}
    for spec in args.require_arg:
        cat, _, key = spec.partition('=')
        if not key:
            parser.error(f'--require-arg wants CAT=KEY, got {spec!r}')
        require_args.setdefault(cat, []).append(key)

    overlap_ok = OVERLAP_OK | set(args.overlap_ok)
    categories, spans_by_tid = validate_events(events, require_args,
                                               overlap_ok, errors)

    for cat in args.require_cat:
        if cat not in categories:
            errors.append(f'required category missing: {cat}')

    if errors:
        for error in errors:
            print(f'validate_trace: {error}', file=sys.stderr)
        return 1
    num_spans = sum(len(spans) for spans in spans_by_tid.values())
    print(f'validate_trace: OK — {num_spans} spans on '
          f'{len(spans_by_tid)} tracks, {len(categories)} categories')
    return 0


if __name__ == '__main__':
    sys.exit(main())
