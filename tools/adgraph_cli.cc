// adgraph_cli — run any library algorithm on a graph file (or a generated
// proxy) on any simulated GPU, with optional profiling output.  The
// "downstream user" entry point: no C++ needed to use the library.
//
// Usage:
//   adgraph_cli --algo=bfs --graph=edges.txt [--gpu=A100] [--source=0]
//   adgraph_cli --algo=pagerank --dataset=web-Google [--extra-divisor=8]
//   adgraph_cli --algo=tc --generate=rmat --scale=14 --profile
//
// Algorithms: bfs, sssp, pagerank, tc, cc, kcore, jaccard, widest, esbv.
// Graph sources (one of): --graph=FILE (edge list or .mtx), --dataset=NAME
// (paper proxy), --generate=rmat|er|ws|ba.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/bfs.h"
#include "core/coloring.h"
#include "core/conn_components.h"
#include "core/jaccard.h"
#include "core/kcore.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "core/widest_path.h"
#include "graph/datasets.h"
#include "graph/generate.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "prof/report.h"
#include "util/flags.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: adgraph_cli --algo=ALGO (--graph=FILE | "
               "--dataset=NAME | --generate=KIND) [options]\n"
               "  ALGO: bfs sssp pagerank tc cc kcore jaccard widest esbv color\n"
               "  options: --gpu=Z100|V100|Z100L|A100  --source=N  --k=N\n"
               "           --scale=N --edge-factor=F --seed=N (generate)\n"
               "           --extra-divisor=F (dataset)  --profile\n"
               "           --undirected  --weights=random\n");
  return 2;
}

Result<graph::CsrGraph> LoadGraph(const Flags& flags) {
  graph::CooGraph coo;
  if (flags.Has("graph")) {
    std::string path = flags.GetString("graph", "");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".mtx") {
      ADGRAPH_ASSIGN_OR_RETURN(coo, graph::ReadMatrixMarket(path));
    } else {
      ADGRAPH_ASSIGN_OR_RETURN(coo, graph::ReadEdgeList(path));
    }
  } else if (flags.Has("dataset")) {
    ADGRAPH_ASSIGN_OR_RETURN(
        auto spec, graph::FindDataset(flags.GetString("dataset", "")));
    return graph::Materialize(spec, flags.GetDouble("extra-divisor", 1.0));
  } else if (flags.Has("generate")) {
    std::string kind = flags.GetString("generate", "rmat");
    uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 14));
    double ef = flags.GetDouble("edge-factor", 8.0);
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    if (kind == "rmat") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateRmat({.scale = scale, .edge_factor = ef,
                                    .seed = seed}));
    } else if (kind == "er") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateErdosRenyi(
                   1u << scale, static_cast<graph::eid_t>(ef * (1u << scale)),
                   seed));
    } else if (kind == "ws") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateWattsStrogatz(1u << scale, 8, 0.1, seed));
    } else if (kind == "ba") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateBarabasiAlbert(1u << scale, 4, seed));
    } else {
      return Status::InvalidArgument("unknown generator '" + kind + "'");
    }
  } else {
    return Status::InvalidArgument("no graph source given");
  }
  if (flags.GetString("weights", "") == "random") {
    graph::AttachRandomWeights(&coo, 0.0, 1.0,
                               static_cast<uint64_t>(flags.GetInt("seed", 1)));
  }
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = flags.GetBool("undirected", false);
  return graph::CsrGraph::FromCoo(coo, options);
}

Status RunAlgo(const Flags& flags, vgpu::Device* device,
               const graph::CsrGraph& g) {
  std::string algo = flags.GetString("algo", "");
  auto source = static_cast<graph::vid_t>(flags.GetInt("source", 0));
  if (algo == "bfs") {
    core::BfsOptions options;
    options.source = source;
    options.assume_symmetric = flags.GetBool("undirected", false);
    ADGRAPH_ASSIGN_OR_RETURN(auto r, core::RunBfs(device, g, options));
    std::printf("bfs: visited %llu / %u vertices, depth %u, %.4f ms "
                "(%.1f MTEPS)\n",
                static_cast<unsigned long long>(r.vertices_visited),
                g.num_vertices(), r.depth, r.time_ms,
                static_cast<double>(g.num_edges()) / (r.time_ms * 1e3));
  } else if (algo == "sssp") {
    ADGRAPH_ASSIGN_OR_RETURN(auto r,
                             core::RunSssp(device, g, {.source = source}));
    uint64_t reached = 0;
    for (double d : r.distances) reached += std::isfinite(d);
    std::printf("sssp: %llu reachable, %u rounds, %.4f ms\n",
                static_cast<unsigned long long>(reached), r.rounds, r.time_ms);
  } else if (algo == "pagerank") {
    ADGRAPH_ASSIGN_OR_RETURN(auto r, core::RunPageRank(device, g, {}));
    graph::vid_t best = 0;
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      if (r.ranks[v] > r.ranks[best]) best = v;
    }
    std::printf("pagerank: %u iterations, top vertex %u (%.3e), %.4f ms\n",
                r.iterations, best, r.ranks[best], r.time_ms);
  } else if (algo == "tc") {
    core::TcOptions options;
    options.orient = !flags.GetBool("no-orient", false);
    ADGRAPH_ASSIGN_OR_RETURN(auto r,
                             core::RunTriangleCount(device, g, options));
    std::printf("tc: %llu triangles (%s), %.4f ms\n",
                static_cast<unsigned long long>(r.triangles),
                options.orient ? "oriented" : "bisson-fatica", r.time_ms);
  } else if (algo == "color") {
    ADGRAPH_ASSIGN_OR_RETURN(auto r, core::RunGraphColoring(device, g, {}));
    std::printf("color: %u colors in %u rounds, %.4f ms\n", r.num_colors,
                r.rounds, r.time_ms);
  } else if (algo == "cc") {
    ADGRAPH_ASSIGN_OR_RETURN(auto r,
                             core::RunConnectedComponents(device, g, {}));
    std::printf("cc: %llu components, %u iterations, %.4f ms\n",
                static_cast<unsigned long long>(r.num_components),
                r.iterations, r.time_ms);
  } else if (algo == "kcore") {
    core::KCoreOptions options;
    options.k = static_cast<uint32_t>(flags.GetInt("k", 3));
    ADGRAPH_ASSIGN_OR_RETURN(auto r, core::RunKCore(device, g, options));
    std::printf("kcore: %llu vertices in the %u-core, %u peel rounds, "
                "%.4f ms\n",
                static_cast<unsigned long long>(r.core_size), options.k,
                r.peel_rounds, r.time_ms);
  } else if (algo == "jaccard") {
    ADGRAPH_ASSIGN_OR_RETURN(auto r, core::RunJaccard(device, g, {}));
    double sum = 0;
    for (double v : r.coefficients) sum += v;
    std::printf("jaccard: mean coefficient %.4f over %zu edges, %.4f ms\n",
                r.coefficients.empty() ? 0 : sum / r.coefficients.size(),
                r.coefficients.size(), r.time_ms);
  } else if (algo == "widest") {
    ADGRAPH_ASSIGN_OR_RETURN(
        auto r, core::RunWidestPath(device, g, {.source = source}));
    uint64_t reached = 0;
    for (double w : r.widths) reached += w > 0;
    std::printf("widest: %llu reachable, %u rounds, %.4f ms\n",
                static_cast<unsigned long long>(reached), r.rounds, r.time_ms);
  } else if (algo == "esbv") {
    graph::CsrGraph weighted =
        g.has_weights() ? g : g.WithUniformWeights(1.0);
    core::EsbvOptions options;
    options.vertices = core::SelectPseudoCluster(
        g.num_vertices(), flags.GetDouble("fraction", 0.5), 7);
    ADGRAPH_ASSIGN_OR_RETURN(
        auto r, core::ExtractSubgraphByVertex(device, weighted, options));
    std::printf("esbv: kept %llu vertices / %llu edges, %.4f ms\n",
                static_cast<unsigned long long>(r.subgraph_vertices),
                static_cast<unsigned long long>(r.subgraph_edges), r.time_ms);
  } else {
    return Status::InvalidArgument("unknown algorithm '" + algo + "'");
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok() || !flags_result->Has("algo")) return Usage();
  const Flags& flags = *flags_result;

  auto graph_result = LoadGraph(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const graph::CsrGraph& g = *graph_result;
  auto stats = graph::ComputeDegreeStats(g);
  std::printf("graph: %u vertices, %llu edges, max degree %u\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              stats.max_degree);

  const vgpu::ArchConfig* arch = &vgpu::A100Config();
  std::string gpu_name = flags.GetString("gpu", "A100");
  for (const auto* gpu : vgpu::PaperGpus()) {
    if (gpu->name == gpu_name) arch = gpu;
  }
  vgpu::Device device(*arch);
  std::printf("device: %s (%s)\n", device.name().c_str(),
              device.arch().vendor.c_str());

  Status status = RunAlgo(flags, &device, g);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.GetBool("profile", false)) {
    std::cout << prof::FormatKernelLog(device);
  }
  return 0;
}

}  // namespace
}  // namespace adgraph

int main(int argc, char** argv) { return adgraph::Main(argc, argv); }
