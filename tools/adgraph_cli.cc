// adgraph_cli — run any library algorithm on a graph file (or a generated
// proxy) on any simulated GPU, with optional profiling output.  The
// "downstream user" entry point: no C++ needed to use the library.
//
// Usage:
//   adgraph_cli --algo=bfs --graph=edges.txt [--gpu=A100] [--source=0]
//   adgraph_cli --algo=pagerank --dataset=web-Google [--extra-divisor=8]
//   adgraph_cli --algo=tc --generate=rmat --scale=14 --profile
//
// Algorithms: bfs, sssp, pagerank, tc, cc, kcore, jaccard, widest, esbv,
// color, bc.
// Graph sources (one of): --graph=FILE (edge list or .mtx), --dataset=NAME
// (paper proxy), --generate=rmat|er|ws|ba.
//
// Batch serving mode — submit a whole job list to the concurrent scheduler:
//   adgraph_cli serve-batch --jobs=jobs.txt --generate=rmat --scale=12
//       [--gpus=A100,V100] [--queue=64] [--overflow=block|reject]
//       [--headroom=1.0] [--occupancy-floor-ms=0]
// Each jobs.txt line is `ALGO [key=value]...` (see ParseJobLine below);
// blank lines and `#` comments are skipped.

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "capi/adgraph.h"
#include "core/api.h"
#include "graph/datasets.h"
#include "graph/generate.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "net/client.h"
#include "net/server.h"
#include "ooc/streamed.h"
#include "net/tenant.h"
#include "net/wire.h"
#include "obs/alerts.h"
#include "obs/export.h"
#include "part/engine.h"
#include "part/part_bfs.h"
#include "part/part_pagerank.h"
#include "prof/report.h"
#include "serve/job.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "trace/trace.h"
#include "util/flags.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

/// Last signal delivered to the process (0 = none).  SIGINT/SIGTERM flip
/// this; the serve loops poll it and shut down gracefully — drain what is
/// running, flush metrics exporters and trace JSON, then exit.
std::atomic<int> g_shutdown_signal{0};

void OnShutdownSignal(int sig) { g_shutdown_signal.store(sig); }

void InstallShutdownHandlers() {
  g_shutdown_signal.store(0);
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
}

int Usage() {
  std::fprintf(stderr,
               "adgraph_cli %d.%d.%d\n"
               "usage: adgraph_cli --algo=ALGO (--graph=FILE | "
               "--dataset=NAME | --generate=KIND) [options]\n"
               "  ALGO: bfs sssp pagerank tc cc kcore jaccard widest esbv color bc\n"
               "  options: --gpu=Z100|V100|Z100L|A100  --source=N  --k=N\n"
               "           --scale=N --edge-factor=F --seed=N (generate)\n"
               "           --extra-divisor=F (dataset)  --profile\n"
               "           --undirected  --weights=random\n"
               "           --ooc [--shard-bytes=N] (bfs/pagerank: stream\n"
               "             vertex-range shards through a double buffer\n"
               "             instead of staging the whole graph;\n"
               "             --memory-scale=F shrinks device RAM to demo\n"
               "             over-budget runs)\n"
               "           --trace=FILE (Chrome trace-event JSON + summary)\n"
               "           --devices=N (bfs/pagerank: partitioned execution\n"
               "             over N simulated devices; --interconnect=pcie|\n"
               "             nvlink, --partition=uniform|degree)\n"
               "or:    adgraph_cli serve-batch --jobs=FILE <graph source>\n"
               "           [--gpus=A100,V100,...] [--queue=N]\n"
               "           [--overflow=block|reject] [--headroom=F]\n"
               "           [--occupancy-floor-ms=F] [--memory-scale=F]\n"
               "           [--graph-cache=on|off] [--trace=FILE]\n"
               "           [--metrics-out=FILE] [--metrics-format=prom|jsonl]\n"
               "           [--metrics-interval-ms=N] [--alert-rules=FILE]\n"
               "or:    adgraph_cli serve --listen=PORT <graph source>\n"
               "           [--tenants=FILE] [--handlers=N] [--max-sessions=N]\n"
               "           [pool flags as in serve-batch]\n"
               "           (runs until SIGINT/SIGTERM, then drains + flushes)\n"
               "or:    adgraph_cli client --connect=HOST:PORT --jobs=FILE\n"
               "           [--tenant=NAME] [--deadline-ms=F] [--timeout-ms=F]\n"
               "           (job files may hold `mutate add=U:V[:W] del=U:V\n"
               "            compact=1` lines — applied in order)\n"
               "or:    adgraph_cli mutate --connect=HOST:PORT [--graph=NAME]\n"
               "           [--add=U:V[:W],...] [--del=U:V,...] [--compact]\n"
               "           [--tenant=NAME]\n"
               "or:    adgraph_cli inspect --connect=HOST:PORT\n"
               "           [--job=N | --trace-id=HEX] [--timeout-ms=F]\n"
               "           (no selector: list the flight recorder's retained\n"
               "            worst jobs; with one: full span tree + profile)\n"
               "or:    adgraph_cli --version\n",
               ADGRAPH_VERSION_MAJOR, ADGRAPH_VERSION_MINOR,
               ADGRAPH_VERSION_PATCH);
  return 2;
}

Result<graph::CsrGraph> LoadGraph(const Flags& flags) {
  graph::CooGraph coo;
  if (flags.Has("graph")) {
    std::string path = flags.GetString("graph", "");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".mtx") {
      ADGRAPH_ASSIGN_OR_RETURN(coo, graph::ReadMatrixMarket(path));
    } else {
      ADGRAPH_ASSIGN_OR_RETURN(coo, graph::ReadEdgeList(path));
    }
  } else if (flags.Has("dataset")) {
    ADGRAPH_ASSIGN_OR_RETURN(
        auto spec, graph::FindDataset(flags.GetString("dataset", "")));
    return graph::Materialize(spec, flags.GetDouble("extra-divisor", 1.0));
  } else if (flags.Has("generate")) {
    std::string kind = flags.GetString("generate", "rmat");
    uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 14));
    double ef = flags.GetDouble("edge-factor", 8.0);
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    if (kind == "rmat") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateRmat({.scale = scale, .edge_factor = ef,
                                    .seed = seed}));
    } else if (kind == "er") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateErdosRenyi(
                   1u << scale, static_cast<graph::eid_t>(ef * (1u << scale)),
                   seed));
    } else if (kind == "ws") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateWattsStrogatz(1u << scale, 8, 0.1, seed));
    } else if (kind == "ba") {
      ADGRAPH_ASSIGN_OR_RETURN(
          coo, graph::GenerateBarabasiAlbert(1u << scale, 4, seed));
    } else {
      return Status::InvalidArgument("unknown generator '" + kind + "'");
    }
  } else {
    return Status::InvalidArgument("no graph source given");
  }
  if (flags.GetString("weights", "") == "random") {
    graph::AttachRandomWeights(&coo, 0.0, 1.0,
                               static_cast<uint64_t>(flags.GetInt("seed", 1)));
  }
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = flags.GetBool("undirected", false);
  return graph::CsrGraph::FromCoo(coo, options);
}

Status RunAlgo(const Flags& flags, vgpu::Device* device,
               const graph::CsrGraph& g) {
  std::string algo = flags.GetString("algo", "");
  auto source = static_cast<graph::vid_t>(flags.GetInt("source", 0));
  ADGRAPH_ASSIGN_OR_RETURN(core::Algo algo_id, core::ParseAlgorithm(algo));

  // Flag -> options mapping; the variant alternative is the selection.
  core::Params params;
  const graph::CsrGraph* input = &g;
  graph::CsrGraph weighted;  // esbv requires weights; synthesized on demand
  switch (algo_id) {
    case core::Algo::kBfs: {
      core::BfsOptions options;
      options.source = source;
      options.assume_symmetric = flags.GetBool("undirected", false);
      params = options;
      break;
    }
    case core::Algo::kSssp:
      params = core::SsspOptions{.source = source};
      break;
    case core::Algo::kPageRank:
      params = core::PageRankOptions{};
      break;
    case core::Algo::kTriangleCount: {
      core::TcOptions options;
      options.orient = !flags.GetBool("no-orient", false);
      params = options;
      break;
    }
    case core::Algo::kConnectedComponents:
      params = core::CcOptions{};
      break;
    case core::Algo::kKCore: {
      core::KCoreOptions options;
      options.k = static_cast<uint32_t>(flags.GetInt("k", 3));
      params = options;
      break;
    }
    case core::Algo::kJaccard:
      params = core::JaccardOptions{};
      break;
    case core::Algo::kWidestPath:
      params = core::WidestPathOptions{.source = source};
      break;
    case core::Algo::kColoring:
      params = core::ColoringOptions{};
      break;
    case core::Algo::kEsbv: {
      weighted = g.has_weights() ? g : g.WithUniformWeights(1.0);
      input = &weighted;
      core::EsbvOptions options;
      options.vertices = core::SelectPseudoCluster(
          g.num_vertices(), flags.GetDouble("fraction", 0.5), 7);
      params = std::move(options);
      break;
    }
    case core::Algo::kBetweenness:
      params = core::BcOptions{.source = source};
      break;
  }

  core::AlgoResult result;
  if (flags.GetBool("ooc", false)) {
    // Out-of-core streamed execution: the adjacency never becomes
    // whole-graph device-resident; vertex-range shards double-buffer
    // through two staging slots (byte-identical results; bfs/pagerank).
    ooc::OocOptions ooc_options;
    ooc_options.shard_bytes =
        static_cast<uint64_t>(flags.GetInt("shard-bytes", 0));
    ooc::StreamedStats ooc_stats;
    // Non-owning alias: the host graph outlives the run.
    std::shared_ptr<const graph::CsrGraph> alias(
        std::shared_ptr<const graph::CsrGraph>{}, input);
    ADGRAPH_ASSIGN_OR_RETURN(
        result,
        ooc::RunStreamed(device, algo_id, alias, params, ooc_options,
                         &ooc_stats));
    std::printf(
        "ooc: %u shards, %llu staged copies, %llu bytes streamed, "
        "overlap %.2fx (serialized %.4f ms -> overlapped %.4f ms)\n",
        ooc_stats.num_shards,
        static_cast<unsigned long long>(ooc_stats.shards_staged),
        static_cast<unsigned long long>(ooc_stats.staged_bytes),
        ooc_stats.overlap_speedup(), ooc_stats.serialized_ms,
        ooc_stats.overlapped_ms);
  } else {
    ADGRAPH_ASSIGN_OR_RETURN(result,
                             core::Run(device, {algo_id}, *input, params));
  }

  switch (algo_id) {
    case core::Algo::kBfs: {
      const auto& r = std::get<core::BfsResult>(result);
      // A zero modeled time (empty frontier / trivial graph) has no rate.
      const double mteps =
          r.time_ms > 0
              ? static_cast<double>(g.num_edges()) / (r.time_ms * 1e3)
              : 0.0;
      std::printf("bfs: visited %llu / %u vertices, depth %u, %.4f ms "
                  "(%.1f MTEPS%s)\n",
                  static_cast<unsigned long long>(r.vertices_visited),
                  g.num_vertices(), r.depth, r.time_ms, mteps,
                  r.time_ms > 0 ? "" : ", rate skipped");
      break;
    }
    case core::Algo::kSssp: {
      const auto& r = std::get<core::SsspResult>(result);
      uint64_t reached = 0;
      for (double d : r.distances) reached += std::isfinite(d);
      std::printf("sssp: %llu reachable, %u rounds, %.4f ms\n",
                  static_cast<unsigned long long>(reached), r.rounds,
                  r.time_ms);
      break;
    }
    case core::Algo::kPageRank: {
      const auto& r = std::get<core::PageRankResult>(result);
      graph::vid_t best = 0;
      for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
        if (r.ranks[v] > r.ranks[best]) best = v;
      }
      std::printf("pagerank: %u iterations, top vertex %u (%.3e), %.4f ms\n",
                  r.iterations, best, r.ranks[best], r.time_ms);
      break;
    }
    case core::Algo::kTriangleCount: {
      const auto& r = std::get<core::TcResult>(result);
      std::printf("tc: %llu triangles (%s), %.4f ms\n",
                  static_cast<unsigned long long>(r.triangles),
                  std::get<core::TcOptions>(params).orient ? "oriented"
                                                           : "bisson-fatica",
                  r.time_ms);
      break;
    }
    case core::Algo::kColoring: {
      const auto& r = std::get<core::ColoringResult>(result);
      std::printf("color: %u colors in %u rounds, %.4f ms\n", r.num_colors,
                  r.rounds, r.time_ms);
      break;
    }
    case core::Algo::kConnectedComponents: {
      const auto& r = std::get<core::CcResult>(result);
      std::printf("cc: %llu components, %u iterations, %.4f ms\n",
                  static_cast<unsigned long long>(r.num_components),
                  r.iterations, r.time_ms);
      break;
    }
    case core::Algo::kKCore: {
      const auto& r = std::get<core::KCoreResult>(result);
      std::printf("kcore: %llu vertices in the %u-core, %u peel rounds, "
                  "%.4f ms\n",
                  static_cast<unsigned long long>(r.core_size),
                  std::get<core::KCoreOptions>(params).k, r.peel_rounds,
                  r.time_ms);
      break;
    }
    case core::Algo::kJaccard: {
      const auto& r = std::get<core::JaccardResult>(result);
      double sum = 0;
      for (double v : r.coefficients) sum += v;
      std::printf("jaccard: mean coefficient %.4f over %zu edges, %.4f ms\n",
                  r.coefficients.empty() ? 0 : sum / r.coefficients.size(),
                  r.coefficients.size(), r.time_ms);
      break;
    }
    case core::Algo::kWidestPath: {
      const auto& r = std::get<core::WidestPathResult>(result);
      uint64_t reached = 0;
      for (double w : r.widths) reached += w > 0;
      std::printf("widest: %llu reachable, %u rounds, %.4f ms\n",
                  static_cast<unsigned long long>(reached), r.rounds,
                  r.time_ms);
      break;
    }
    case core::Algo::kEsbv: {
      const auto& r = std::get<core::EsbvResult>(result);
      std::printf("esbv: kept %llu vertices / %llu edges, %.4f ms\n",
                  static_cast<unsigned long long>(r.subgraph_vertices),
                  static_cast<unsigned long long>(r.subgraph_edges),
                  r.time_ms);
      break;
    }
    case core::Algo::kBetweenness: {
      const auto& r = std::get<core::BcResult>(result);
      double mass = 0;
      for (double d : r.centrality) mass += d;
      std::printf("bc: source %u, depth %u, dependency mass %.4f, %.4f ms\n",
                  source, r.depth, mass, r.time_ms);
      break;
    }
  }
  return Status::OK();
}


// --- partitioned (multi-device) --------------------------------------------

/// `--devices=N` path: shards the graph 1-D by vertex range over N simulated
/// devices of the chosen arch and runs the bulk-synchronous partitioned
/// driver (bfs or pagerank), printing the interconnect exchange breakdown.
Status RunPartitioned(const Flags& flags, const vgpu::ArchConfig& arch,
                      const graph::CsrGraph& g, uint32_t num_devices) {
  const std::string algo = flags.GetString("algo", "");
  if (algo != "bfs" && algo != "pagerank") {
    return Status::InvalidArgument(
        "--devices=N supports bfs and pagerank, not '" + algo + "'");
  }

  part::PartitionedEngine::Options options;
  options.num_devices = num_devices;
  const std::string link = flags.GetString("interconnect", "nvlink");
  ADGRAPH_ASSIGN_OR_RETURN(options.interconnect,
                           vgpu::InterconnectPresetByName(link));
  const std::string strategy = flags.GetString("partition", "uniform");
  if (strategy == "degree") {
    options.strategy = part::PartitionStrategy::kDegreeBalanced;
  } else if (strategy != "uniform") {
    return Status::InvalidArgument(
        "--partition must be 'uniform' or 'degree', got '" + strategy + "'");
  }
  ADGRAPH_ASSIGN_OR_RETURN(auto engine,
                           part::PartitionedEngine::Create(arch, options));
  ADGRAPH_ASSIGN_OR_RETURN(
      part::PartitionPlan plan,
      part::MakePartitionPlan(g, num_devices, options.strategy));
  std::printf("partition: %u x %s shards (%s), interconnect %s\n", num_devices,
              arch.name.c_str(), part::PartitionStrategyName(options.strategy),
              options.interconnect.name.c_str());

  if (algo == "bfs") {
    part::PartBfsOptions bfs;
    bfs.source = static_cast<graph::vid_t>(flags.GetInt("source", 0));
    ADGRAPH_ASSIGN_OR_RETURN(auto r,
                             part::RunPartitionedBfs(engine.get(), g, plan, bfs));
    const double mteps =
        r.time_ms > 0 ? static_cast<double>(g.num_edges()) / (r.time_ms * 1e3)
                      : 0.0;
    std::printf("bfs[%uD]: visited %llu / %u vertices, depth %u, %u rounds\n",
                num_devices,
                static_cast<unsigned long long>(r.vertices_visited),
                g.num_vertices(), r.depth, r.rounds);
    std::printf("  modeled %.4f ms = compute %.4f ms + exchange %.4f ms "
                "(%.1f MTEPS%s)\n",
                r.time_ms, r.compute_ms, r.exchange_ms, mteps,
                r.time_ms > 0 ? "" : ", rate skipped");
    std::printf("  exchange: %llu bytes over %zu rounds\n",
                static_cast<unsigned long long>(r.exchange_bytes),
                r.round_exchange_bytes.size());
  } else {
    part::PartPageRankOptions pr;
    pr.max_iterations = static_cast<uint32_t>(flags.GetInt("iters", 50));
    ADGRAPH_ASSIGN_OR_RETURN(
        auto r, part::RunPartitionedPageRank(engine.get(), g, plan, pr));
    graph::vid_t best = 0;
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      if (r.ranks[v] > r.ranks[best]) best = v;
    }
    std::printf("pagerank[%uD]: %u iterations, top vertex %u (%.3e)\n",
                num_devices, r.iterations, best, r.ranks[best]);
    std::printf("  modeled %.4f ms = compute %.4f ms + exchange %.4f ms\n",
                r.time_ms, r.compute_ms, r.exchange_ms);
    std::printf("  exchange: %llu bytes\n",
                static_cast<unsigned long long>(r.exchange_bytes));
  }
  return Status::OK();
}

// --- serve-batch -----------------------------------------------------------

/// One parsed `ALGO key=value...` line from the --jobs file.  The graph
/// handle is attached later (after we know whether weights are needed).
/// A line whose first token is `mutate` instead of an algorithm name sets
/// `mutate` (and leaves `algo` meaningless): `mutate add=U:V[:W]`,
/// `mutate del=U:V`, `mutate compact=1` — comma-separated specs allowed,
/// plus `graph=NAME`.  Only `client` mode accepts these (the mutation API
/// lives behind the server's MUTATE verb).
struct ParsedJobLine {
  serve::Algorithm algo = serve::Algorithm::kBfs;
  std::map<std::string, std::string> kv;
  int line_number = 0;
  bool mutate = false;
};

Result<ParsedJobLine> ParseJobLine(const std::string& line, int line_number) {
  std::istringstream in(line);
  std::string algo_name;
  in >> algo_name;
  ParsedJobLine parsed;
  parsed.line_number = line_number;
  if (algo_name == "mutate") {
    parsed.mutate = true;
  } else {
    ADGRAPH_ASSIGN_OR_RETURN(parsed.algo, serve::ParseAlgorithm(algo_name));
  }
  std::string token;
  while (in >> token) {
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("jobs line " + std::to_string(line_number) +
                                     ": expected key=value, got '" + token +
                                     "'");
    }
    parsed.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return parsed;
}

/// Parses a comma-separated list of `U:V[:W]` edge specs (W only legal when
/// `allow_weight`) and appends one MUTATE update object per spec onto the
/// JSON `updates` array.
Status AppendEdgeSpecs(const std::string& specs, const char* op,
                       bool allow_weight, net::Json* updates) {
  std::istringstream list(specs);
  std::string spec;
  while (std::getline(list, spec, ',')) {
    std::istringstream fields(spec);
    std::string u, v, w;
    if (!std::getline(fields, u, ':') || !std::getline(fields, v, ':') ||
        u.empty() || v.empty()) {
      return Status::InvalidArgument("edge spec '" + spec +
                                     "' wants U:V" +
                                     (allow_weight ? "[:W]" : ""));
    }
    std::getline(fields, w, ':');
    if (!w.empty() && !allow_weight) {
      return Status::InvalidArgument("edge spec '" + spec +
                                     "': deletions take no weight");
    }
    net::Json update = net::Json::MakeObject();
    update.Set("op", std::string(op));
    update.Set("u", std::atof(u.c_str()));
    update.Set("v", std::atof(v.c_str()));
    if (!w.empty()) update.Set("w", std::atof(w.c_str()));
    updates->PushBack(std::move(update));
  }
  return Status::OK();
}

/// Turns one parsed `mutate ...` job line into the MUTATE request pieces:
/// fills `updates` (may stay empty for a pure `compact=1` line) and reports
/// whether the line asked for compaction.
Result<bool> BuildMutationLine(const ParsedJobLine& line, net::Json* updates) {
  bool compact = false;
  for (const auto& [key, value] : line.kv) {
    if (key == "add") {
      ADGRAPH_RETURN_NOT_OK(AppendEdgeSpecs(value, "add", true, updates));
    } else if (key == "del") {
      ADGRAPH_RETURN_NOT_OK(AppendEdgeSpecs(value, "del", false, updates));
    } else if (key == "compact") {
      compact = value != "0" && value != "false";
    } else if (key != "graph" && key != "tag") {
      return Status::InvalidArgument(
          "jobs line " + std::to_string(line.line_number) +
          ": mutate takes add= del= compact= graph= tag=, got '" + key + "'");
    }
  }
  return compact;
}

/// Builds the scheduler-pool options shared by `serve-batch` and `serve`
/// (device list, queue, admission, cache, trace and metrics flags).
Result<serve::Scheduler::Options> BuildPoolOptions(const Flags& flags) {
  serve::Scheduler::Options options;
  // Shrinks every pool device's memory by this factor — the same knob the
  // paper-scale benches use, here so small proxies can demonstrate
  // admission-control rejections.
  vgpu::Device::Options device_options;
  device_options.memory_scale = flags.GetDouble("memory-scale", 1.0);
  if (flags.Has("gpus")) {
    std::istringstream list(flags.GetString("gpus", ""));
    std::string name;
    while (std::getline(list, name, ',')) {
      const vgpu::ArchConfig* arch = nullptr;
      for (const auto* gpu : vgpu::PaperGpus()) {
        if (gpu->name == name) arch = gpu;
      }
      if (arch == nullptr) {
        return Status::InvalidArgument("unknown gpu '" + name + "' in --gpus");
      }
      options.devices.push_back({.arch = arch, .options = device_options});
    }
  } else if (device_options.memory_scale != 1.0) {
    for (const auto* gpu : vgpu::PaperGpus()) {
      options.devices.push_back({.arch = gpu, .options = device_options});
    }
  }
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue", 64));
  options.overflow = flags.GetString("overflow", "block") == "reject"
                         ? serve::Scheduler::OverflowPolicy::kReject
                         : serve::Scheduler::OverflowPolicy::kBlock;
  options.admission_headroom = flags.GetDouble("headroom", 1.0);
  options.device_occupancy_floor_ms =
      flags.GetDouble("occupancy-floor-ms", 0.0);
  // Per-worker graph residency cache (on by default; results are
  // byte-identical either way — off restores upload-per-job behavior).
  std::string cache_mode = flags.GetString("graph-cache", "on");
  if (cache_mode != "on" && cache_mode != "off") {
    return Status::InvalidArgument(
        "--graph-cache must be 'on' or 'off', got '" + cache_mode + "'");
  }
  options.cache.enabled = cache_mode == "on";
  if (flags.Has("trace")) {
    options.trace.enabled = true;
    options.trace.path = flags.GetString("trace", "");
  }
  // Any metrics flag switches the background sampler on; --metrics-out
  // also makes Shutdown() export the series there.
  const bool metrics_on = flags.Has("metrics-out") ||
                          flags.Has("metrics-interval-ms") ||
                          flags.Has("alert-rules");
  if (metrics_on) {
    options.metrics.enabled = true;
    options.metrics.path = flags.GetString("metrics-out", "");
    options.metrics.interval_ms =
        flags.GetDouble("metrics-interval-ms", 100.0);
    ADGRAPH_ASSIGN_OR_RETURN(
        options.metrics.format,
        obs::ParseExportFormat(flags.GetString("metrics-format", "prom")));
    if (flags.Has("alert-rules")) {
      std::ifstream rules_file(flags.GetString("alert-rules", ""));
      if (!rules_file) {
        return Status::IOError("cannot open alert-rules file '" +
                               flags.GetString("alert-rules", "") + "'");
      }
      std::stringstream text;
      text << rules_file.rdbuf();
      ADGRAPH_ASSIGN_OR_RETURN(options.metrics.alert_rules,
                               obs::ParseAlertRules(text.str()));
    }
  }
  return options;
}

int ServeBatch(const Flags& flags) {
  if (!flags.Has("jobs")) {
    std::fprintf(stderr, "serve-batch: --jobs=FILE is required\n");
    return Usage();
  }
  auto graph_result = LoadGraph(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  graph::CsrGraph g = std::move(*graph_result);

  // Parse the job file before touching any device.
  std::ifstream jobs_file(flags.GetString("jobs", ""));
  if (!jobs_file) {
    std::fprintf(stderr, "cannot open jobs file '%s'\n",
                 flags.GetString("jobs", "").c_str());
    return 1;
  }
  std::vector<ParsedJobLine> lines;
  bool needs_weights = g.has_weights();
  std::string raw;
  for (int number = 1; std::getline(jobs_file, raw); ++number) {
    auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    auto parsed = ParseJobLine(raw, number);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    if (parsed->mutate) {
      // The in-process batch scheduler serves one immutable snapshot;
      // dynamic graphs live behind the TCP server's MUTATE verb.
      std::fprintf(stderr,
                   "jobs line %d: mutate lines need the TCP server (run "
                   "`adgraph_cli serve` and submit via `adgraph_cli "
                   "client`)\n",
                   number);
      return 1;
    }
    needs_weights |= serve::GetHandler(parsed->algo).requires_weights;
    lines.push_back(std::move(*parsed));
  }
  if (lines.empty()) {
    std::fprintf(stderr, "jobs file contains no jobs\n");
    return 1;
  }
  // Weight-requiring jobs (esbv) in the batch get uniform weights unless the
  // graph already carries real ones.
  if (needs_weights && !g.has_weights()) g = g.WithUniformWeights(1.0);
  auto shared =
      std::make_shared<const graph::CsrGraph>(std::move(g));
  std::printf("graph: %u vertices, %llu edges%s\n", shared->num_vertices(),
              static_cast<unsigned long long>(shared->num_edges()),
              shared->has_weights() ? " (weighted)" : "");

  auto options_result = BuildPoolOptions(flags);
  if (!options_result.ok()) {
    std::fprintf(stderr, "serve-batch: %s\n",
                 options_result.status().ToString().c_str());
    return 1;
  }
  const bool metrics_on = options_result->metrics.enabled;

  auto scheduler_result = serve::Scheduler::Create(std::move(*options_result));
  if (!scheduler_result.ok()) {
    std::fprintf(stderr, "scheduler: %s\n",
                 scheduler_result.status().ToString().c_str());
    return 1;
  }
  auto& scheduler = **scheduler_result;
  std::printf("pool: %zu workers (", scheduler.num_workers());
  for (size_t i = 0; i < scheduler.device_names().size(); ++i) {
    std::printf("%s%s", i ? ", " : "", scheduler.device_names()[i].c_str());
  }
  std::printf(")\n\n");

  // Ctrl-C / SIGTERM: stop submitting, let in-flight jobs finish, fail the
  // still-queued ones, flush metrics + trace, then exit 128+signal.
  InstallShutdownHandlers();

  std::vector<std::future<serve::JobOutcome>> futures;
  futures.reserve(lines.size());
  int submit_failures = 0;
  for (const ParsedJobLine& line : lines) {
    if (g_shutdown_signal.load() != 0) break;
    serve::JobSpec spec;
    spec.graph = shared;
    auto params =
        net::BuildJobParams(line.algo, line.kv, shared->num_vertices());
    if (!params.ok()) {
      std::fprintf(stderr, "jobs line %d: %s\n", line.line_number,
                   params.status().ToString().c_str());
      return 1;
    }
    spec.params = std::move(*params);
    auto arch_it = line.kv.find("arch");
    if (arch_it != line.kv.end()) spec.arch_preference = arch_it->second;
    // `devices=N` on a bfs/pagerank job line runs it as a gang over N
    // same-arch devices; the scheduler reserves that many worker slots.
    auto devices_it = line.kv.find("devices");
    if (devices_it != line.kv.end()) {
      spec.gang_devices =
          static_cast<uint32_t>(std::stoll(devices_it->second));
    }
    auto ic_it = line.kv.find("interconnect");
    if (ic_it != line.kv.end()) {
      auto preset = vgpu::InterconnectPresetByName(ic_it->second);
      if (!preset.ok()) {
        std::fprintf(stderr, "jobs line %d: %s\n", line.line_number,
                     preset.status().ToString().c_str());
        return 1;
      }
      spec.gang_interconnect = *preset;
    }
    auto tag_it = line.kv.find("tag");
    spec.tag = tag_it != line.kv.end()
                   ? tag_it->second
                   : "line" + std::to_string(line.line_number);
    // Tenant QoS keys, same vocabulary as the TCP protocol (§2.10).
    auto tenant_it = line.kv.find("tenant");
    if (tenant_it != line.kv.end()) spec.tenant = tenant_it->second;
    auto priority_it = line.kv.find("priority");
    if (priority_it != line.kv.end()) {
      spec.priority =
          static_cast<uint32_t>(std::atoi(priority_it->second.c_str()));
    }
    auto weight_it = line.kv.find("weight");
    if (weight_it != line.kv.end()) {
      spec.fair_weight = std::atof(weight_it->second.c_str());
    }
    auto deadline_it = line.kv.find("deadline_ms");
    if (deadline_it != line.kv.end()) {
      spec.deadline_ms = std::atof(deadline_it->second.c_str());
    }
    std::string tag = spec.tag;
    auto submitted = scheduler.Submit(std::move(spec));
    if (!submitted.ok()) {
      std::printf("%-12s %-8s REJECTED AT SUBMIT: %s\n",
                  ("[" + tag + "]").c_str(),
                  serve::AlgorithmName(line.algo).data(),
                  submitted.status().ToString().c_str());
      ++submit_failures;
      continue;
    }
    futures.push_back(std::move(*submitted));
  }

  int failures = 0;
  bool interrupted = false;
  std::vector<trace::TraceEvent> trace_events;
  std::map<std::string, int> tally;
  if (submit_failures > 0) tally["rejected at submit"] = submit_failures;
  for (auto& future : futures) {
    // Poll-wait so a shutdown signal can interrupt the batch: Shutdown()
    // finishes in-flight jobs, fails queued ones with kUnavailable (their
    // futures below resolve immediately) and flushes trace + metrics.
    while (!interrupted &&
           future.wait_for(std::chrono::milliseconds(50)) !=
               std::future_status::ready) {
      if (g_shutdown_signal.load() != 0) {
        std::printf("\nsignal %d: draining in-flight jobs, failing queued "
                    "ones\n",
                    g_shutdown_signal.load());
        trace_events = scheduler.TraceEvents();
        scheduler.Shutdown();
        interrupted = true;
      }
    }
    serve::JobOutcome outcome = future.get();
    tally[outcome.status.ok()
              ? "ok"
              : std::string(StatusCodeToString(outcome.status.code()))] += 1;
    if (outcome.status.ok()) {
      std::string suffix;
      if (outcome.cache_hit) suffix += "   [cached graph]";
      if (outcome.gang_devices > 1) {
        char gang[96];
        std::snprintf(gang, sizeof(gang),
                      "   [gang %u dev, %.1f KB exchanged / %llu rounds]",
                      outcome.gang_devices, outcome.exchange_bytes / 1024.0,
                      static_cast<unsigned long long>(outcome.exchange_rounds));
        suffix += gang;
      }
      std::printf("%-12s %-8s %-6s ok      modeled %9.4f ms   wall %8.2f ms"
                  "   queued %7.2f ms%s\n",
                  ("[" + outcome.tag + "]").c_str(),
                  serve::AlgorithmName(
                      static_cast<serve::Algorithm>(outcome.payload.index()))
                      .data(),
                  outcome.device_name.c_str(), outcome.modeled_ms,
                  outcome.exec_wall_ms, outcome.queue_wall_ms, suffix.c_str());
    } else {
      ++failures;
      std::printf("%-12s %-15s %s\n", ("[" + outcome.tag + "]").c_str(),
                  outcome.device_name.empty() ? "-"
                                              : outcome.device_name.c_str(),
                  outcome.status.ToString().c_str());
    }
  }

  if (!interrupted) scheduler.Drain();
  std::printf("\n%s", prof::FormatServerStats(scheduler.Snapshot()).c_str());
  std::printf("\njob status tally:\n");
  for (const auto& [name, count] : tally) {
    std::printf("  %-24s %d\n", name.c_str(), count);
  }
  if (flags.Has("trace")) {
    // After a signal-triggered Shutdown() the collector is detached, so
    // use the events captured at interrupt time.
    std::printf("\n%s", prof::FormatTraceSummary(
                            interrupted ? trace_events
                                        : scheduler.TraceEvents())
                            .c_str());
    std::printf("trace: %s\n", flags.GetString("trace", "").c_str());
  }
  if (metrics_on) {
    // Shutdown here (rather than at scope exit) so the sampler's final
    // sample is taken and --metrics-out is written before we report on
    // the series (idempotent if the signal path already shut down).
    scheduler.Shutdown();
    std::printf("\n%s", prof::FormatMetricsReport(scheduler.MetricsBatches(),
                                                  scheduler.MetricsAlertLog(),
                                                  scheduler.MetricsDropped())
                            .c_str());
    if (flags.Has("metrics-out")) {
      std::printf("metrics: %s\n", flags.GetString("metrics-out", "").c_str());
    }
  }
  if (interrupted) return 128 + g_shutdown_signal.load();
  // Any job that resolved non-OK — admission rejection, device failure, or
  // submit-level rejection — makes the batch exit non-zero, so scripted
  // callers do not have to parse the tally.
  return failures > 0 || submit_failures > 0 ? 1 : 0;
}

// --- serve (TCP front door) ------------------------------------------------

/// `adgraph_cli serve --listen=PORT <graph source>`: starts a scheduler
/// pool plus the net::Server front door and runs until SIGINT/SIGTERM, then
/// shuts down in order — stop accepting, close sessions, drain the pool,
/// flush metrics + trace — and prints the final stats block.
int Serve(const Flags& flags) {
  if (!flags.Has("listen")) {
    std::fprintf(stderr, "serve: --listen=PORT is required\n");
    return Usage();
  }
  auto graph_result = LoadGraph(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  net::Server::GraphMap graphs;
  {
    graph::CsrGraph g = std::move(*graph_result);
    if (!g.has_weights()) {
      // ESBV / weighted jobs need weights; serve both flavors so a SUBMIT
      // can pick `"graph":"weighted"` without a server restart.
      graphs["weighted"] = std::make_shared<const graph::CsrGraph>(
          g.WithUniformWeights(1.0));
      graphs["default"] = std::make_shared<const graph::CsrGraph>(std::move(g));
    } else {
      auto shared = std::make_shared<const graph::CsrGraph>(std::move(g));
      graphs["default"] = shared;
      graphs["weighted"] = shared;
    }
  }
  std::printf("graph: %u vertices, %llu edges%s\n",
              graphs["default"]->num_vertices(),
              static_cast<unsigned long long>(graphs["default"]->num_edges()),
              graphs["default"]->has_weights() ? " (weighted)" : "");

  auto options_result = BuildPoolOptions(flags);
  if (!options_result.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 options_result.status().ToString().c_str());
    return 1;
  }
  const bool metrics_on = options_result->metrics.enabled;
  auto scheduler_result = serve::Scheduler::Create(std::move(*options_result));
  if (!scheduler_result.ok()) {
    std::fprintf(stderr, "scheduler: %s\n",
                 scheduler_result.status().ToString().c_str());
    return 1;
  }
  auto& scheduler = **scheduler_result;

  net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.GetInt("listen", 0));
  server_options.handler_threads =
      static_cast<size_t>(flags.GetInt("handlers", 2));
  server_options.max_sessions =
      static_cast<size_t>(flags.GetInt("max-sessions", 256));
  if (flags.Has("tenants")) {
    std::ifstream tenants_file(flags.GetString("tenants", ""));
    if (!tenants_file) {
      std::fprintf(stderr, "cannot open tenants file '%s'\n",
                   flags.GetString("tenants", "").c_str());
      return 1;
    }
    std::stringstream text;
    text << tenants_file.rdbuf();
    auto tenants = net::ParseTenantConfigs(text.str());
    if (!tenants.ok()) {
      std::fprintf(stderr, "%s\n", tenants.status().ToString().c_str());
      return 1;
    }
    server_options.tenants = std::move(*tenants);
  }
  const size_t num_tenants = server_options.tenants.size();

  auto server_result =
      net::Server::Start(&scheduler, std::move(graphs), server_options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto& server = **server_result;
  std::printf("pool: %zu workers (", scheduler.num_workers());
  for (size_t i = 0; i < scheduler.device_names().size(); ++i) {
    std::printf("%s%s", i ? ", " : "", scheduler.device_names()[i].c_str());
  }
  std::printf(")\n");
  std::printf("listening on 127.0.0.1:%u (%zu handler threads, %s)\n",
              server.port(), server_options.handler_threads,
              num_tenants > 0
                  ? (std::to_string(num_tenants) + " tenants").c_str()
                  : "open access");
  std::fflush(stdout);

  InstallShutdownHandlers();
  while (g_shutdown_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int sig = g_shutdown_signal.load();
  std::printf("\nsignal %d: closing sessions, draining pool\n", sig);

  // Shutdown order matters: front door first (sessions closed, every
  // outstanding tenant charge released), then drain what the scheduler
  // accepted, then Shutdown() to flush metrics exporters and trace JSON.
  std::vector<trace::TraceEvent> trace_events;
  server.Shutdown();
  scheduler.Drain();
  if (flags.Has("trace")) trace_events = scheduler.TraceEvents();
  scheduler.Shutdown();

  net::ServerCounters counters = server.Counters();
  std::printf("\nsessions: %llu opened, %llu closed; requests: %llu "
              "(%llu protocol errors)\n",
              static_cast<unsigned long long>(counters.sessions_opened),
              static_cast<unsigned long long>(counters.sessions_closed),
              static_cast<unsigned long long>(counters.requests),
              static_cast<unsigned long long>(counters.protocol_errors));
  std::printf("submits: %llu accepted, %llu quota-rejected, %llu "
              "scheduler-rejected; %llu orphaned\n",
              static_cast<unsigned long long>(counters.submits_accepted),
              static_cast<unsigned long long>(counters.submits_rejected_quota),
              static_cast<unsigned long long>(
                  counters.submits_rejected_scheduler),
              static_cast<unsigned long long>(counters.jobs_orphaned));
  std::printf("\n%s", prof::FormatServerStats(scheduler.Snapshot()).c_str());
  if (flags.Has("trace")) {
    std::printf("\n%s", prof::FormatTraceSummary(trace_events).c_str());
    std::printf("trace: %s\n", flags.GetString("trace", "").c_str());
  }
  if (metrics_on) {
    std::printf("\n%s", prof::FormatMetricsReport(scheduler.MetricsBatches(),
                                                  scheduler.MetricsAlertLog(),
                                                  scheduler.MetricsDropped())
                            .c_str());
    if (flags.Has("metrics-out")) {
      std::printf("metrics: %s\n", flags.GetString("metrics-out", "").c_str());
    }
  }
  // A signal-triggered stop is the *intended* way to stop a server:
  // exit 0 so service managers and the CI smoke test see a clean stop.
  return 0;
}

// --- client ----------------------------------------------------------------

/// `adgraph_cli client --connect=HOST:PORT --jobs=FILE [--tenant=NAME]`:
/// submits a serve-batch-format job file over the TCP protocol and waits
/// for every outcome.  Job-line keys `graph=`, `arch=`, `tag=` and
/// `deadline_ms=` map to request fields; everything else is an algorithm
/// param.
int ClientMain(const Flags& flags) {
  if (!flags.Has("connect") || !flags.Has("jobs")) {
    std::fprintf(stderr, "client: --connect=HOST:PORT and --jobs=FILE are "
                         "required\n");
    return Usage();
  }
  std::string endpoint = flags.GetString("connect", "");
  auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "client: --connect wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 1;
  }
  std::string host = endpoint.substr(0, colon);
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "client: bad port in '%s'\n", endpoint.c_str());
    return 1;
  }

  std::ifstream jobs_file(flags.GetString("jobs", ""));
  if (!jobs_file) {
    std::fprintf(stderr, "cannot open jobs file '%s'\n",
                 flags.GetString("jobs", "").c_str());
    return 1;
  }
  std::vector<ParsedJobLine> lines;
  std::string raw;
  for (int number = 1; std::getline(jobs_file, raw); ++number) {
    auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    auto parsed = ParseJobLine(raw, number);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    lines.push_back(std::move(*parsed));
  }
  if (lines.empty()) {
    std::fprintf(stderr, "jobs file contains no jobs\n");
    return 1;
  }

  const double timeout_ms = flags.GetDouble("timeout-ms", 30000.0);
  auto client_result =
      net::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client_result.ok()) {
    std::fprintf(stderr, "%s\n", client_result.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(*client_result);
  auto hello = client.Hello(flags.GetString("tenant", ""), timeout_ms);
  if (!hello.ok()) {
    std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
    return 1;
  }

  // Submit everything first (pipelining through the session), then wait.
  struct Submitted {
    uint64_t job_id = 0;
    std::string tag;
    std::string algo;
    std::string trace_id;  ///< hex, client-minted (DESIGN.md §2.14)
  };
  std::vector<Submitted> submitted;
  int failures = 0;
  std::map<std::string, int> tally;
  for (const ParsedJobLine& line : lines) {
    if (line.mutate) {
      // Mutations run synchronously in file order, so a job line after a
      // mutate line is guaranteed to see the mutated graph.
      auto tag_it = line.kv.find("tag");
      std::string tag = tag_it != line.kv.end()
                            ? tag_it->second
                            : "line" + std::to_string(line.line_number);
      net::Json updates = net::Json::MakeArray();
      auto compact = BuildMutationLine(line, &updates);
      if (!compact.ok()) {
        std::fprintf(stderr, "%s\n", compact.status().ToString().c_str());
        return 1;
      }
      auto graph_it = line.kv.find("graph");
      std::string graph_name =
          graph_it != line.kv.end() ? graph_it->second : "default";
      auto response = client.Mutate(graph_name, std::move(updates), *compact,
                                    timeout_ms);
      if (!response.ok()) {
        ++failures;
        tally["mutate failed"] += 1;
        std::printf("%-12s mutate   FAILED: %s\n", ("[" + tag + "]").c_str(),
                    response.status().ToString().c_str());
        continue;
      }
      tally["mutated"] += 1;
      std::printf("%-12s mutate   applied %3.0f   version %.0f   edges %.0f"
                  "   fp %s\n",
                  ("[" + tag + "]").c_str(),
                  response->GetNumber("applied", 0),
                  response->GetNumber("version", 0),
                  response->GetNumber("num_edges", 0),
                  response->GetString("fingerprint", "-").c_str());
      continue;
    }
    net::Json request = net::Json::MakeObject();
    request.Set("op", "SUBMIT");
    request.Set("algo", std::string(serve::AlgorithmName(line.algo)));
    net::Json params = net::Json::MakeObject();
    for (const auto& [key, value] : line.kv) {
      if (key == "graph" || key == "arch" || key == "tag" ||
          key == "deadline_ms") {
        continue;
      }
      params.Set(key, value);
    }
    if (params.size() > 0) request.Set("params", std::move(params));
    auto copy_field = [&](const char* key) {
      auto it = line.kv.find(key);
      if (it != line.kv.end()) request.Set(key, it->second);
    };
    copy_field("graph");
    copy_field("arch");
    auto deadline_it = line.kv.find("deadline_ms");
    if (deadline_it != line.kv.end()) {
      request.Set("deadline_ms", std::atof(deadline_it->second.c_str()));
    } else if (flags.Has("deadline-ms")) {
      request.Set("deadline_ms", flags.GetDouble("deadline-ms", 0.0));
    }
    auto tag_it = line.kv.find("tag");
    std::string tag = tag_it != line.kv.end()
                          ? tag_it->second
                          : "line" + std::to_string(line.line_number);
    request.Set("tag", tag);
    // The client is the outermost layer, so it mints the trace id; the
    // server adopts it and every span of the job carries it end to end.
    const std::string trace_hex = trace::TraceIdHex(trace::MintTraceId());
    request.Set("trace_id", trace_hex);

    auto response = client.Call(request, timeout_ms);
    if (!response.ok()) {
      std::fprintf(stderr, "SUBMIT failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (!response->GetBool("ok", false)) {
      ++failures;
      tally["rejected: " + response->GetString("code", "?")] += 1;
      std::printf("%-12s %-8s REJECTED: %s\n", ("[" + tag + "]").c_str(),
                  serve::AlgorithmName(line.algo).data(),
                  response->GetString("error", "(no error)").c_str());
      continue;
    }
    submitted.push_back(
        {static_cast<uint64_t>(response->GetNumber("job", 0)), tag,
         std::string(serve::AlgorithmName(line.algo)),
         response->GetString("trace_id", trace_hex)});
  }

  for (const Submitted& job : submitted) {
    auto done = client.WaitJob(job.job_id, timeout_ms);
    if (!done.ok()) {
      std::fprintf(stderr, "[%s] %s\n", job.tag.c_str(),
                   done.status().ToString().c_str());
      ++failures;
      tally["transport error"] += 1;
      continue;
    }
    std::string status = done->GetString("status", "?");
    tally[status] += 1;
    if (status == "ok") {
      std::string suffix;
      if (done->GetBool("cache_hit", false)) suffix += "   [cached graph]";
      std::printf("%-12s %-8s %-6s ok      modeled %9.4f ms   queued %7.2f "
                  "ms   fp %s   trace %s%s\n",
                  ("[" + job.tag + "]").c_str(), job.algo.c_str(),
                  done->GetString("device", "-").c_str(),
                  done->GetNumber("modeled_ms", 0),
                  done->GetNumber("queue_ms", 0),
                  done->GetString("fingerprint", "-").c_str(),
                  done->GetString("trace_id", job.trace_id.c_str()).c_str(),
                  suffix.c_str());
    } else {
      ++failures;
      std::printf("%-12s %-15s %s: %s   trace %s\n",
                  ("[" + job.tag + "]").c_str(),
                  done->GetString("device", "-").c_str(), status.c_str(),
                  done->GetString("error", "").c_str(),
                  done->GetString("trace_id", job.trace_id.c_str()).c_str());
    }
  }

  std::printf("\njob status tally:\n");
  for (const auto& [name, count] : tally) {
    std::printf("  %-24s %d\n", name.c_str(), count);
  }
  return failures > 0 ? 1 : 0;
}

// --- mutate ----------------------------------------------------------------

/// `adgraph_cli mutate --connect=HOST:PORT [--graph=NAME] [--add=U:V[:W],...]
/// [--del=U:V,...] [--compact] [--tenant=NAME]`: one MUTATE round trip
/// against a running server — the shell-scriptable face of the dynamic-graph
/// API (the job-file form is `mutate add=...` lines in `client` mode).
int MutateMain(const Flags& flags) {
  if (!flags.Has("connect")) {
    std::fprintf(stderr, "mutate: --connect=HOST:PORT is required\n");
    return Usage();
  }
  if (!flags.Has("add") && !flags.Has("del") && !flags.Has("compact")) {
    std::fprintf(stderr,
                 "mutate: nothing to do — give --add=U:V[:W],... and/or "
                 "--del=U:V,... and/or --compact\n");
    return Usage();
  }
  std::string endpoint = flags.GetString("connect", "");
  auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "mutate: --connect wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 1;
  }
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "mutate: bad port in '%s'\n", endpoint.c_str());
    return 1;
  }

  net::Json updates = net::Json::MakeArray();
  if (flags.Has("add")) {
    Status status =
        AppendEdgeSpecs(flags.GetString("add", ""), "add", true, &updates);
    if (!status.ok()) {
      std::fprintf(stderr, "mutate: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (flags.Has("del")) {
    Status status =
        AppendEdgeSpecs(flags.GetString("del", ""), "del", false, &updates);
    if (!status.ok()) {
      std::fprintf(stderr, "mutate: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  const double timeout_ms = flags.GetDouble("timeout-ms", 30000.0);
  auto client_result = net::Client::Connect(endpoint.substr(0, colon),
                                            static_cast<uint16_t>(port));
  if (!client_result.ok()) {
    std::fprintf(stderr, "%s\n", client_result.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(*client_result);
  auto hello = client.Hello(flags.GetString("tenant", ""), timeout_ms);
  if (!hello.ok()) {
    std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
    return 1;
  }
  auto response =
      client.Mutate(flags.GetString("graph", "default"), std::move(updates),
                    flags.GetBool("compact", false), timeout_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("graph %s: applied %.0f update(s), version %.0f, %.0f edges, "
              "fp %s%s\n",
              response->GetString("graph", "?").c_str(),
              response->GetNumber("applied", 0),
              response->GetNumber("version", 0),
              response->GetNumber("num_edges", 0),
              response->GetString("fingerprint", "-").c_str(),
              response->GetBool("compacted", false) ? " (compacted)" : "");
  return 0;
}

// --- inspect ---------------------------------------------------------------

/// Renders an INSPECT record's "profile" object as an indented block.
void PrintProfileJson(const net::Json& p) {
  std::printf("  profile: %.0f kernel(s), modeled %.4f ms, %.0f cycles\n",
              p.GetNumber("num_kernels", 0), p.GetNumber("total_ms", 0),
              p.GetNumber("total_cycles", 0));
  std::printf("    divergent-branch ratio %.3f   gld eff %.3f   "
              "gst eff %.3f\n",
              p.GetNumber("divergent_branch_ratio", 0),
              p.GetNumber("gld_efficiency", 0),
              p.GetNumber("gst_efficiency", 0));
  std::printf("    L1 hit %.3f   L2 hit %.3f   occupancy %.3f   "
              "exposed %.0f cycles\n",
              p.GetNumber("l1_hit_rate", 0), p.GetNumber("l2_hit_rate", 0),
              p.GetNumber("achieved_occupancy", 0),
              p.GetNumber("exposed_latency_cycles", 0));
  const net::Json* top = p.Find("top_kernels");
  if (top != nullptr && top->size() > 0) {
    std::printf("    top kernels by cycles:\n");
    for (const net::Json& row : top->items()) {
      std::printf("      %-32s x%-4.0f %14.0f cycles %11.4f ms\n",
                  row.GetString("kernel", "?").c_str(),
                  row.GetNumber("launches", 0), row.GetNumber("cycles", 0),
                  row.GetNumber("time_ms", 0));
    }
  }
}

/// One retained job in full: identity, trigger classes, timings, profile
/// and the captured span tree.
void PrintRecordJson(const net::Json& r) {
  std::printf("trace %s   job %.0f   sched %.0f   [%s]\n",
              r.GetString("trace_id", "-").c_str(), r.GetNumber("job", 0),
              r.GetNumber("sched_job_id", 0),
              r.GetString("tag", "-").c_str());
  std::string status = r.GetString("status", "?");
  std::string error = r.GetString("error", "");
  std::printf("  %s on %s, tenant %s: %s%s%s\n",
              r.GetString("algo", "?").c_str(),
              r.GetString("device", "-").c_str(),
              r.GetString("tenant", "-").c_str(), status.c_str(),
              error.empty() ? "" : " — ", error.c_str());
  std::printf("  queued %.2f ms   exec %.2f ms   wall %.2f ms   "
              "modeled %.4f ms\n",
              r.GetNumber("queue_ms", 0), r.GetNumber("exec_ms", 0),
              r.GetNumber("wall_ms", 0), r.GetNumber("modeled_ms", 0));
  const net::Json* triggers = r.Find("triggers");
  if (triggers != nullptr && triggers->size() > 0) {
    std::printf("  retained for:");
    for (const net::Json& t : triggers->items()) {
      std::printf(" %s", t.AsString().c_str());
    }
    std::printf("\n");
  }
  const net::Json* profile = r.Find("profile");
  if (profile != nullptr) PrintProfileJson(*profile);
  const net::Json* spans = r.Find("spans");
  if (spans != nullptr) {
    std::printf("  spans (%zu captured, %.0f dropped):\n", spans->size(),
                r.GetNumber("spans_dropped", 0));
    std::printf("    %12s %10s  %-6s %s\n", "ts_us", "dur_us", "track",
                "name");
    for (const net::Json& span : spans->items()) {
      std::printf("    %12.1f %10.1f  %-6.0f %s (%s)\n",
                  span.GetNumber("ts_us", 0), span.GetNumber("dur_us", 0),
                  span.GetNumber("track", 0),
                  span.GetString("name", "?").c_str(),
                  span.GetString("cat", "-").c_str());
    }
  }
}

/// `adgraph_cli inspect --connect=HOST:PORT [--job=N | --trace-id=HEX]`:
/// reads the serve pool's slow-job flight recorder over the INSPECT verb
/// (DESIGN.md §2.14).  Without a selector, lists the retained worst jobs;
/// with one, prints that job's full record — span tree included.
int InspectMain(const Flags& flags) {
  if (!flags.Has("connect")) {
    std::fprintf(stderr, "inspect: --connect=HOST:PORT is required\n");
    return Usage();
  }
  std::string endpoint = flags.GetString("connect", "");
  auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "inspect: --connect wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 1;
  }
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "inspect: bad port in '%s'\n", endpoint.c_str());
    return 1;
  }
  const double timeout_ms = flags.GetDouble("timeout-ms", 5000.0);
  auto client_result = net::Client::Connect(endpoint.substr(0, colon),
                                            static_cast<uint16_t>(port));
  if (!client_result.ok()) {
    std::fprintf(stderr, "%s\n", client_result.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(*client_result);
  // INSPECT is a diagnostic verb; like STATS it needs no HELLO handshake.
  const uint64_t job = static_cast<uint64_t>(flags.GetInt("job", 0));
  const std::string trace_hex = flags.GetString("trace-id", "");
  auto response = client.Inspect(job, trace_hex, timeout_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  if (job != 0 || !trace_hex.empty()) {
    const net::Json* record = response->Find("record");
    if (record == nullptr) {
      std::fprintf(stderr, "inspect: response carries no record\n");
      return 1;
    }
    PrintRecordJson(*record);
    return 0;
  }
  const net::Json* records = response->Find("records");
  const size_t count = records != nullptr ? records->size() : 0;
  std::printf("flight recorder: %zu retained record(s)\n", count);
  if (count == 0) {
    std::printf("(no job crossed a retention trigger yet — latency "
                "threshold, non-ok status, or a firing alert)\n");
    return 0;
  }
  for (const net::Json& r : records->items()) {
    std::string triggers;
    const net::Json* t = r.Find("triggers");
    if (t != nullptr) {
      for (const net::Json& item : t->items()) {
        triggers += (triggers.empty() ? "" : ",") + item.AsString();
      }
    }
    std::printf("  trace %s  job %-5.0f %-8s %-6s %-20s wall %9.2f ms  "
                "[%s]\n",
                r.GetString("trace_id", "-").c_str(), r.GetNumber("job", 0),
                r.GetString("algo", "?").c_str(),
                r.GetString("device", "-").c_str(),
                r.GetString("status", "?").c_str(),
                r.GetNumber("wall_ms", 0), triggers.c_str());
  }
  std::printf("(re-run with --job=N or --trace-id=HEX for the span tree "
              "and kernel profile)\n");
  return 0;
}

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) return Usage();
  const Flags& flags = *flags_result;
  if (flags.Has("version")) {
    int major = 0, minor = 0, patch = 0;
    adgraphGetVersion(&major, &minor, &patch);
    std::printf("adgraph_cli %d.%d.%d\n", major, minor, patch);
    return 0;
  }
  if (!flags.positional().empty() && flags.positional()[0] == "serve-batch") {
    return ServeBatch(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "serve") {
    return Serve(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "client") {
    return ClientMain(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "mutate") {
    return MutateMain(flags);
  }
  if (!flags.positional().empty() && flags.positional()[0] == "inspect") {
    return InspectMain(flags);
  }
  if (!flags.Has("algo")) return Usage();

  auto graph_result = LoadGraph(flags);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const graph::CsrGraph& g = *graph_result;
  auto stats = graph::ComputeDegreeStats(g);
  std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              static_cast<unsigned long long>(stats.max_degree));

  const vgpu::ArchConfig* arch = &vgpu::A100Config();
  std::string gpu_name = flags.GetString("gpu", "A100");
  for (const auto* gpu : vgpu::PaperGpus()) {
    if (gpu->name == gpu_name) arch = gpu;
  }

  if (flags.Has("trace")) {
    trace::TraceOptions trace_options;
    trace_options.enabled = true;
    trace_options.path = flags.GetString("trace", "");
    Status trace_status = trace::Start(std::move(trace_options));
    if (!trace_status.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace_status.ToString().c_str());
      return 1;
    }
  }

  const uint32_t num_devices =
      static_cast<uint32_t>(flags.GetInt("devices", 1));
  if (num_devices > 1) {
    Status status = RunPartitioned(flags, *arch, g, num_devices);
    if (flags.Has("trace")) {
      Status trace_status = trace::Stop();
      if (!trace_status.ok()) {
        std::fprintf(stderr, "trace: %s\n", trace_status.ToString().c_str());
      }
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (flags.Has("trace")) {
      std::cout << prof::FormatTraceSummary(trace::GlobalEvents());
      std::printf("trace: %s\n", flags.GetString("trace", "").c_str());
    }
    return 0;
  }

  vgpu::Device::Options device_options;
  device_options.memory_scale = flags.GetDouble("memory-scale", 1.0);
  vgpu::Device device(*arch, device_options);
  std::printf("device: %s (%s)\n", device.name().c_str(),
              device.arch().vendor.c_str());

  Status status = RunAlgo(flags, &device, g);
  if (flags.Has("trace")) {
    // Stop() writes the Chrome JSON; the ring stays readable for the
    // summary below.
    Status trace_status = trace::Stop();
    if (!trace_status.ok()) {
      std::fprintf(stderr, "trace: %s\n", trace_status.ToString().c_str());
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.GetBool("profile", false)) {
    std::cout << prof::FormatKernelLog(device);
  }
  if (flags.Has("trace")) {
    std::cout << prof::FormatTraceSummary(trace::GlobalEvents());
    std::printf("trace: %s\n", flags.GetString("trace", "").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace adgraph

int main(int argc, char** argv) { return adgraph::Main(argc, argv); }
