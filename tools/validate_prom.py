#!/usr/bin/env python3
"""Validates a Prometheus text-exposition file (format 0.0.4).

Used by CI against the serve-batch --metrics-out export: every line must be
a comment, a sample, or blank; histogram bucket series must be cumulative
(monotone non-decreasing in `le` order) and end with +Inf; `--require NAME`
asserts that at least one sample of the family NAME is present.

Usage:
    validate_prom.py FILE [--require NAME]... [--min-series NAME=N]...

Exit status 0 when the file parses cleanly and all requirements hold.
"""

import argparse
import re
import sys

# metric_name{label="value",...} value  — labels optional; value is any
# Prometheus float (including +Inf/-Inf/NaN, which the exporter never
# emits but the format allows).
SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^{}]*\})?'
    r' (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$'
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
COMMENT_RE = re.compile(r'^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$')


def parse_labels(text):
    """{a="x",b="y"} -> sorted tuple of (key, value), le excluded."""
    if not text:
        return (), None
    le = None
    labels = []
    for key, value in LABEL_RE.findall(text[1:-1]):
        if key == 'le':
            le = value
        else:
            labels.append((key, value))
    return tuple(sorted(labels)), le


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('file')
    parser.add_argument('--require', action='append', default=[],
                        help='family name that must have >= 1 sample')
    parser.add_argument('--min-series', action='append', default=[],
                        metavar='NAME=N',
                        help='family NAME must have >= N series')
    args = parser.parse_args()

    errors = []
    families = {}          # family name -> number of sample lines
    buckets = {}           # (family, labels) -> list of (le, count)
    typed = {}             # family name -> TYPE

    with open(args.file, encoding='utf-8') as handle:
        for number, raw in enumerate(handle, 1):
            line = raw.rstrip('\n')
            if not line.strip():
                continue
            if line.startswith('#'):
                if not COMMENT_RE.match(line):
                    errors.append(f'line {number}: malformed comment: {line}')
                elif line.startswith('# TYPE '):
                    parts = line.split(' ')
                    typed[parts[2]] = parts[3]
                continue
            match = SAMPLE_RE.match(line)
            if not match:
                errors.append(f'line {number}: not a valid sample: {line}')
                continue
            name = match.group('name')
            labels, le = parse_labels(match.group('labels'))
            value = float(match.group('value').replace('Inf', 'inf'))
            base = re.sub(r'_(bucket|sum|count)$', '', name)
            families[name] = families.get(name, 0) + 1
            families.setdefault(base, families.get(base, 0))
            if name.endswith('_bucket'):
                if le is None:
                    errors.append(f'line {number}: _bucket without le label')
                    continue
                buckets.setdefault((base, labels), []).append((le, value))

    for (family, labels), series in sorted(buckets.items()):
        les = [le for le, _ in series]
        if les[-1] != '+Inf':
            errors.append(f'{family}{dict(labels)}: buckets do not end '
                          f'with +Inf (last le={les[-1]})')
        bounds = [float(le.replace('+Inf', 'inf')) for le in les]
        if bounds != sorted(bounds):
            errors.append(f'{family}{dict(labels)}: le bounds not ascending')
        counts = [count for _, count in series]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(f'{family}{dict(labels)}: cumulative bucket counts '
                          f'decrease: {counts}')

    for name in args.require:
        if families.get(name, 0) < 1 and families.get(name + '_bucket', 0) < 1:
            errors.append(f'required family missing: {name}')
    for spec in args.min_series:
        name, _, minimum = spec.partition('=')
        have = max(families.get(name, 0), families.get(name + '_bucket', 0))
        if have < int(minimum):
            errors.append(f'family {name}: {have} series, need {minimum}')

    if errors:
        for error in errors:
            print(f'validate_prom: {error}', file=sys.stderr)
        return 1
    sample_count = sum(families.values())
    print(f'validate_prom: OK — {len(typed)} typed families, '
          f'{sample_count} samples, {len(buckets)} histogram series')
    return 0


if __name__ == '__main__':
    sys.exit(main())
