#ifndef ADGRAPH_GRAPH_DELTA_H_
#define ADGRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::graph {

/// One edge mutation — the unit of the DeltaGraph log, the MUTATE wire verb,
/// and adgraphApplyEdgeUpdates.
struct EdgeUpdate {
  vid_t u = 0;
  vid_t v = 0;
  /// Ignored for deletions and for unweighted bases (structural insert).
  weight_t w = 1;
  bool insert = true;  ///< false = delete
};

/// \brief A mutable graph: an immutable base CsrGraph plus a sorted
/// edge-insert/delete log, periodically folded back into a fresh base by
/// Compact() (cf. the buffer_graph/disk_graph delta-buffer design, ROADMAP
/// item 1).
///
/// Semantics
///  - The live edge set is (base \ deletes) ∪ inserts; an insert of a
///    deleted base edge resurrects it (with the insert's weight on weighted
///    bases).
///  - Duplicate/self-loop policy matches GraphBuilder (builder.h):
///    AddEdge of an already-live (u,v) is a keep-first no-op (returns
///    false, no version bump); self loops are legal.
///  - The vertex set is fixed at the base's: ids >= num_vertices() are
///    kOutOfRange.
///  - `version()` increments once per *applied* mutation and is never reset
///    (Compact() changes the representation, not the logical version).
///
/// Identity & residency (DESIGN.md §2.12): every DeltaGraph owns a process-
/// unique *family fingerprint* (the base's content fingerprint mixed with a
/// global counter salt, so two families mutated apart from the same base
/// never collide).  Snapshot() publishes an immutable CsrGraph stamped with
/// that family fingerprint and mutation_epoch() == version(); the residency
/// cache keys on (fingerprint, epoch, variant), so a resident copy of an
/// older version can never be served for a newer one, and the server can
/// drop all stale epochs of a family with one Invalidate(family) call.
///
/// Not thread-safe; callers serialize mutations (the net server holds one
/// mutex per served graph).
class DeltaGraph {
 public:
  /// Default-constructed instances exist only to satisfy Result<DeltaGraph>
  /// storage; every usable DeltaGraph comes from Create().
  DeltaGraph() = default;

  /// Wraps a base CSR.  The base must be neighbor-sorted with no duplicate
  /// (u,v) — the normal form every loader/generator/builder path in the
  /// repo produces — so edge-presence lookups can binary search;
  /// kInvalidArgument otherwise.
  static Result<DeltaGraph> Create(CsrGraph base);
  static Result<DeltaGraph> Create(std::shared_ptr<const CsrGraph> base);

  vid_t num_vertices() const { return base_->num_vertices(); }
  /// Live edge count: base - pending deletes + pending inserts.
  eid_t num_edges() const;
  bool has_weights() const { return base_->has_weights(); }

  /// Monotonic mutation counter (0 = pristine base).
  uint64_t version() const { return version_; }
  /// Stable identity of this mutable graph across all its versions.
  uint64_t family_fingerprint() const { return family_fingerprint_; }
  /// Log size (inserts + deletes awaiting Compact()).
  size_t pending_updates() const { return inserts_.size() + deletes_.size(); }

  /// Inserts (u,v); returns true if applied, false if the edge was already
  /// live (keep-first: the existing weight stays).  kOutOfRange for vertex
  /// ids outside the base's vertex set.
  Result<bool> AddEdge(vid_t u, vid_t v, weight_t w = 1);

  /// Deletes (u,v); returns true if applied, false if the edge was not
  /// live.  kOutOfRange for out-of-range ids.
  Result<bool> RemoveEdge(vid_t u, vid_t v);

  /// Applies a batch in order; returns how many actually mutated the graph
  /// (no-ops — duplicate inserts, deletes of absent edges — don't count and
  /// don't bump the version).  Stops at the first out-of-range id.
  Result<uint64_t> Apply(std::span<const EdgeUpdate> updates);

  /// Folds the log into a fresh base CSR.  version() and the family
  /// fingerprint are unchanged — compaction is a representation change.
  Status Compact();

  /// Materializes the live edge set as a plain CSR (sorted, duplicate-free)
  /// carrying its true content fingerprint and epoch 0 — byte-identical to
  /// rebuilding from scratch with the same edges.  Use Snapshot() instead
  /// when the result feeds the residency cache.
  Result<CsrGraph> Materialize() const;

  /// Current immutable snapshot stamped with (family_fingerprint, version)
  /// for versioned residency keys.  Cached until the next mutation; cheap
  /// to call repeatedly at the same version.
  Result<std::shared_ptr<const CsrGraph>> Snapshot();

  /// The applied mutations after `since_version` (exclusive), oldest first
  /// — the input to incremental recompute.  nullopt when that history has
  /// been trimmed (caller must fall back to full recompute).
  std::optional<std::vector<EdgeUpdate>> UpdatesSince(
      uint64_t since_version) const;

  /// Drops history entries beyond the newest `keep` (bounds memory on
  /// long-lived graphs; trimmed ranges make UpdatesSince return nullopt).
  void TrimHistory(size_t keep);

 private:
  bool BaseHasEdge(vid_t u, vid_t v) const;
  bool EdgeLive(vid_t u, vid_t v) const;
  Status CheckVertex(vid_t u, vid_t v) const;
  Result<CsrGraph> MaterializeInternal() const;

  std::shared_ptr<const CsrGraph> base_;
  /// Pending inserts, sorted by (u,v); value = weight.  May overlap
  /// deletes_ (delete-then-reinsert of a base edge).
  std::map<std::pair<vid_t, vid_t>, weight_t> inserts_;
  /// Pending deletes of *base* edges, sorted by (u,v).
  std::set<std::pair<vid_t, vid_t>> deletes_;
  uint64_t version_ = 0;
  uint64_t family_fingerprint_ = 0;
  /// Applied mutations, oldest first; history_[i] was version
  /// history_base_version_ + i + 1.
  std::vector<EdgeUpdate> history_;
  uint64_t history_base_version_ = 0;
  /// Snapshot cache (invalidated by mutation).
  std::shared_ptr<const CsrGraph> snapshot_;
  uint64_t snapshot_version_ = ~uint64_t{0};
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_DELTA_H_
