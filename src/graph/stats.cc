#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace adgraph::graph {

DegreeStats ComputeDegreeStats(const CsrGraph& g) {
  DegreeStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_edges = g.num_edges();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    eid_t d = g.degree(v);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) stats.isolated_vertices += 1;
  }
  stats.avg_degree = stats.num_vertices > 0
                         ? static_cast<double>(stats.num_edges) /
                               static_cast<double>(stats.num_vertices)
                         : 0;
  return stats;
}


DegreeDistribution ComputeDegreeDistribution(const CsrGraph& g) {
  DegreeDistribution dist;
  const vid_t n = g.num_vertices();
  if (n == 0) return dist;
  std::vector<eid_t> degrees(n);
  for (vid_t v = 0; v < n; ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * (n - 1));
    return degrees[idx];
  };
  dist.p0 = pct(0.0);
  dist.p50 = pct(0.5);
  dist.p90 = pct(0.9);
  dist.p99 = pct(0.99);
  dist.p100 = degrees.back();
  // Log2 histogram.
  uint32_t max_bin = 0;
  for (eid_t d : degrees) {
    uint32_t bin = d <= 1 ? 0 : static_cast<uint32_t>(std::log2(d));
    max_bin = std::max(max_bin, bin);
  }
  dist.log2_bins.assign(max_bin + 1, 0);
  for (eid_t d : degrees) {
    uint32_t bin = d <= 1 ? 0 : static_cast<uint32_t>(std::log2(d));
    dist.log2_bins[bin] += 1;
  }
  // Hill estimator over the top decile of nonzero degrees.
  size_t tail = n / 10;
  if (tail >= 8) {
    double threshold = std::max<double>(degrees[n - tail - 1], 1);
    double sum = 0;
    size_t used = 0;
    for (size_t i = n - tail; i < n; ++i) {
      if (degrees[i] > threshold) {
        sum += std::log(static_cast<double>(degrees[i]) / threshold);
        ++used;
      }
    }
    if (used >= 8 && sum > 0) {
      dist.powerlaw_alpha = 1.0 + static_cast<double>(used) / sum;
    }
  }
  return dist;
}

}  // namespace adgraph::graph
