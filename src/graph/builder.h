#ifndef ADGRAPH_GRAPH_BUILDER_H_
#define ADGRAPH_GRAPH_BUILDER_H_

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::graph {

/// \brief Incremental graph construction front end.
///
/// Collects edges (auto-growing the vertex count), then finalizes into a
/// CsrGraph.  Convenient for examples and tests; bulk paths (generators,
/// file readers) build CooGraph directly.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the vertex count (ids >= count still grow it).
  explicit GraphBuilder(vid_t num_vertices) {
    coo_.num_vertices = num_vertices;
  }

  GraphBuilder& AddEdge(vid_t u, vid_t v) {
    Grow(u, v);
    coo_.AddEdge(u, v);
    if (!coo_.weights.empty()) coo_.weights.push_back(weight_t{1});
    return *this;
  }

  GraphBuilder& AddEdge(vid_t u, vid_t v, weight_t w) {
    Grow(u, v);
    // Backfill default weights if earlier edges were unweighted.
    if (coo_.weights.size() < coo_.src.size()) {
      coo_.weights.resize(coo_.src.size(), weight_t{1});
    }
    coo_.AddEdge(u, v, w);
    return *this;
  }

  vid_t num_vertices() const { return coo_.num_vertices; }
  eid_t num_edges() const { return coo_.num_edges(); }
  const CooGraph& coo() const { return coo_; }

  /// Finalizes into CSR.  The builder remains usable afterwards.
  Result<CsrGraph> Build(const CsrBuildOptions& options = {}) const {
    return CsrGraph::FromCoo(coo_, options);
  }

 private:
  void Grow(vid_t u, vid_t v) {
    vid_t needed = std::max(u, v) + 1;
    if (needed > coo_.num_vertices) coo_.num_vertices = needed;
  }

  CooGraph coo_;
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_BUILDER_H_
