#ifndef ADGRAPH_GRAPH_BUILDER_H_
#define ADGRAPH_GRAPH_BUILDER_H_

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::graph {

/// \brief Incremental graph construction front end.
///
/// Collects edges (auto-growing the vertex count), then finalizes into a
/// CsrGraph.  Convenient for examples and tests; bulk paths (generators,
/// file readers) build CooGraph directly.
///
/// Duplicate-edge / self-loop policy (shared with the generators in
/// generate.h and with DeltaGraph::AddEdge): repeated (u,v) pairs collapse
/// to the *first* insertion (first weight wins), self loops are legal and
/// kept.  Build() applies this by default; pass explicit CsrBuildOptions to
/// opt out (e.g. for multigraph experiments).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the vertex count (ids >= count still grow it).
  explicit GraphBuilder(vid_t num_vertices) {
    coo_.num_vertices = num_vertices;
  }

  GraphBuilder& AddEdge(vid_t u, vid_t v) {
    Grow(u, v);
    coo_.AddEdge(u, v);
    if (!coo_.weights.empty()) coo_.weights.push_back(weight_t{1});
    return *this;
  }

  GraphBuilder& AddEdge(vid_t u, vid_t v, weight_t w) {
    Grow(u, v);
    // Backfill default weights if earlier edges were unweighted.
    if (coo_.weights.size() < coo_.src.size()) {
      coo_.weights.resize(coo_.src.size(), weight_t{1});
    }
    coo_.AddEdge(u, v, w);
    return *this;
  }

  vid_t num_vertices() const { return coo_.num_vertices; }
  eid_t num_edges() const { return coo_.num_edges(); }
  const CooGraph& coo() const { return coo_; }

  /// The options Build() uses when none are given: sorted adjacency,
  /// duplicates collapsed keep-first, self loops kept — the documented
  /// policy above.
  static CsrBuildOptions DefaultBuildOptions() {
    CsrBuildOptions options;
    options.remove_duplicates = true;
    return options;
  }

  /// Finalizes into CSR under the documented duplicate/self-loop policy.
  /// The builder remains usable afterwards.
  Result<CsrGraph> Build() const { return Build(DefaultBuildOptions()); }

  /// Finalizes into CSR with explicit conversion options (overrides the
  /// default policy).
  Result<CsrGraph> Build(const CsrBuildOptions& options) const {
    return CsrGraph::FromCoo(coo_, options);
  }

 private:
  void Grow(vid_t u, vid_t v) {
    vid_t needed = std::max(u, v) + 1;
    if (needed > coo_.num_vertices) coo_.num_vertices = needed;
  }

  CooGraph coo_;
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_BUILDER_H_
