#ifndef ADGRAPH_GRAPH_DATASETS_H_
#define ADGRAPH_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/generate.h"
#include "util/status.h"

namespace adgraph::graph {

/// \brief Recipe for a *proxy* of one paper dataset (Table 4).
///
/// The original SNAP / Network Repository graphs (up to 1.96 B edges) are
/// neither downloadable in this offline environment nor tractable in a
/// functional simulator, so each is replaced by an R-MAT proxy that
/// preserves the properties the paper's analysis depends on:
///  * the edge-count *ordering* across the seven datasets,
///  * the average degree (vertices and edges shrink by the same divisor),
///  * the degree-skew character (web crawl vs social vs citation), which
///    drives intra-warp load imbalance and cache behaviour,
///  * id-locality (web graphs keep crawl-order locality; social graphs get
///    permuted ids).
///
/// `scale_divisor` shrinks the world uniformly: the paper-reproduction
/// benches also divide every GPU's RAM capacity by the same divisor, so
/// capacity phenomena (ESBV on twitter-mpi OOMs everywhere) survive
/// scaling.
struct DatasetSpec {
  std::string name;       ///< paper name, e.g. "soc-liveJournal1"
  std::string category;   ///< "web" / "social" / "citation"
  uint64_t paper_vertices = 0;
  uint64_t paper_edges = 0;
  uint64_t paper_max_degree = 0;
  double scale_divisor = 1;
  RmatParams recipe;      ///< scale/edge_factor filled by Materialize

  uint64_t proxy_vertices() const { return 1ull << ProxyScale(); }
  uint64_t proxy_edges() const {
    return static_cast<uint64_t>(
        static_cast<double>(paper_edges) / scale_divisor);
  }
  /// log2 of the proxy vertex count (nearest power of two to
  /// paper_vertices / scale_divisor).
  uint32_t ProxyScale() const;
};

/// The seven paper datasets in Table 4 row order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Look up a spec by paper name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the proxy graph for `spec` (directed, deduplicated,
/// neighbor-sorted CSR).  Deterministic per spec.  `extra_divisor`
/// optionally shrinks further (quick test runs).
Result<CsrGraph> Materialize(const DatasetSpec& spec,
                             double extra_divisor = 1.0);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_DATASETS_H_
