#ifndef ADGRAPH_GRAPH_COO_H_
#define ADGRAPH_GRAPH_COO_H_

#include <vector>

#include "graph/types.h"

namespace adgraph::graph {

/// \brief Edge-list (coordinate) representation: the interchange format
/// produced by generators and file readers and consumed by the CSR builder.
///
/// Plain data carrier; invariants (src/dst < num_vertices, parallel array
/// lengths) are validated by consumers, not enforced here.
struct CooGraph {
  vid_t num_vertices = 0;
  std::vector<vid_t> src;
  std::vector<vid_t> dst;
  /// Empty, or one weight per edge.
  std::vector<weight_t> weights;

  eid_t num_edges() const { return static_cast<eid_t>(src.size()); }
  bool has_weights() const { return !weights.empty(); }

  void AddEdge(vid_t u, vid_t v) {
    src.push_back(u);
    dst.push_back(v);
  }
  void AddEdge(vid_t u, vid_t v, weight_t w) {
    src.push_back(u);
    dst.push_back(v);
    weights.push_back(w);
  }
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_COO_H_
