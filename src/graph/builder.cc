#include "graph/builder.h"

// GraphBuilder is header-only today; this TU anchors the library target and
// reserves space for future out-of-line growth (e.g. streaming builders).
