#ifndef ADGRAPH_GRAPH_GENERATE_H_
#define ADGRAPH_GRAPH_GENERATE_H_

#include <cstdint>

#include "graph/coo.h"
#include "util/status.h"

namespace adgraph::graph {

/// Parameters of the R-MAT recursive generator (Chakrabarti et al.), the
/// standard synthetic source of power-law graphs (Graph500 uses it).
/// Probabilities must be positive and sum to ~1; a >> d yields the heavy
/// degree skew of social graphs.
struct RmatParams {
  uint32_t scale = 16;       ///< num_vertices = 2^scale
  double edge_factor = 16;   ///< num_edges = edge_factor * num_vertices
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 1;
  /// Shuffle vertex ids to break the generator's id-locality (real SNAP
  /// graphs have little of it).  Off for web-like graphs, which DO exhibit
  /// strong id-locality from crawl order.
  bool permute_vertices = true;
};

/// Generates a directed R-MAT edge list.  Like a raw crawl the COO may
/// contain duplicates and self loops; every CSR consumer in the repo
/// normalizes under the shared policy (GraphBuilder docs): duplicates
/// collapse keep-first via CsrBuildOptions::remove_duplicates, self loops
/// stay unless remove_self_loops is requested.  The lattice/attachment
/// generators below never emit duplicates in the first place.
Result<CooGraph> GenerateRmat(const RmatParams& params);

/// G(n, m) Erdős–Rényi: m directed edges sampled uniformly.
Result<CooGraph> GenerateErdosRenyi(vid_t num_vertices, eid_t num_edges,
                                    uint64_t seed);

/// Watts–Strogatz small world: ring lattice of degree k, rewired with
/// probability beta.  Undirected edges emitted in both directions.
Result<CooGraph> GenerateWattsStrogatz(vid_t num_vertices, uint32_t k,
                                       double beta, uint64_t seed);

/// Barabási–Albert preferential attachment with m edges per new vertex.
/// Undirected edges emitted in both directions.
Result<CooGraph> GenerateBarabasiAlbert(vid_t num_vertices,
                                        uint32_t edges_per_vertex,
                                        uint64_t seed);

/// Uniform-random weights in [lo, hi) attached in place.
void AttachRandomWeights(CooGraph* coo, double lo, double hi, uint64_t seed);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_GENERATE_H_
