#include "graph/reorder.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace adgraph::graph {

Permutation DegreeOrder(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](vid_t a, vid_t b) {
                     return g.degree(a) > g.degree(b);
                   });
  Permutation perm(n);
  for (vid_t rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

Permutation BfsOrder(const CsrGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  Permutation perm(n, kInvalidVertex);
  vid_t next = 0;
  if (n == 0) return perm;
  std::deque<vid_t> queue;
  auto visit = [&](vid_t v) {
    if (perm[v] == kInvalidVertex) {
      perm[v] = next++;
      queue.push_back(v);
    }
  };
  visit(source % n);
  while (!queue.empty()) {
    vid_t u = queue.front();
    queue.pop_front();
    for (vid_t v : g.neighbors(u)) visit(v);
  }
  // Unreachable vertices keep their relative order after the reached ones.
  for (vid_t v = 0; v < n; ++v) {
    if (perm[v] == kInvalidVertex) perm[v] = next++;
  }
  return perm;
}

Result<CsrGraph> ApplyPermutation(const CsrGraph& g, const Permutation& perm) {
  const vid_t n = g.num_vertices();
  if (perm.size() != n) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  std::vector<uint8_t> seen(n, 0);
  for (vid_t p : perm) {
    if (p >= n || seen[p]) {
      return Status::InvalidArgument("permutation is not a bijection");
    }
    seen[p] = 1;
  }
  CooGraph coo;
  coo.num_vertices = n;
  coo.src.reserve(g.num_edges());
  coo.dst.reserve(g.num_edges());
  if (g.has_weights()) coo.weights.reserve(g.num_edges());
  for (vid_t u = 0; u < n; ++u) {
    auto adj = g.neighbors(u);
    for (size_t i = 0; i < adj.size(); ++i) {
      if (g.has_weights()) {
        coo.AddEdge(perm[u], perm[adj[i]], g.edge_weights(u)[i]);
      } else {
        coo.AddEdge(perm[u], perm[adj[i]]);
      }
    }
  }
  CsrBuildOptions options;
  options.sort_neighbors = true;
  return CsrGraph::FromCoo(coo, options);
}

Permutation InvertPermutation(const Permutation& perm) {
  Permutation inverse(perm.size());
  for (vid_t old_id = 0; old_id < perm.size(); ++old_id) {
    inverse[perm[old_id]] = old_id;
  }
  return inverse;
}

}  // namespace adgraph::graph
