#include "graph/csr.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace adgraph::graph {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

template <typename T>
void FnvMix(uint64_t* h, const T* data, size_t count) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < count * sizeof(T); ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

}  // namespace

CsrGraph::CsrGraph(const CsrGraph& other)
    : num_vertices_(other.num_vertices_),
      row_offsets_(other.row_offsets_),
      col_indices_(other.col_indices_),
      weights_(other.weights_),
      fingerprint_memo_(
          other.fingerprint_memo_.load(std::memory_order_relaxed)),
      mutation_epoch_(other.mutation_epoch_) {}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this == &other) return *this;
  num_vertices_ = other.num_vertices_;
  row_offsets_ = other.row_offsets_;
  col_indices_ = other.col_indices_;
  weights_ = other.weights_;
  fingerprint_memo_.store(
      other.fingerprint_memo_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  mutation_epoch_ = other.mutation_epoch_;
  return *this;
}

CsrGraph::CsrGraph(CsrGraph&& other) noexcept
    : num_vertices_(other.num_vertices_),
      row_offsets_(std::move(other.row_offsets_)),
      col_indices_(std::move(other.col_indices_)),
      weights_(std::move(other.weights_)),
      fingerprint_memo_(
          other.fingerprint_memo_.load(std::memory_order_relaxed)),
      mutation_epoch_(other.mutation_epoch_) {}

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this == &other) return *this;
  num_vertices_ = other.num_vertices_;
  row_offsets_ = std::move(other.row_offsets_);
  col_indices_ = std::move(other.col_indices_);
  weights_ = std::move(other.weights_);
  fingerprint_memo_.store(
      other.fingerprint_memo_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  mutation_epoch_ = other.mutation_epoch_;
  return *this;
}

uint64_t CsrGraph::ContentFingerprint() const {
  uint64_t memo = fingerprint_memo_.load(std::memory_order_relaxed);
  if (memo != 0) return memo;
  uint64_t h = kFnvOffset;
  uint64_t n = num_vertices_;
  FnvMix(&h, &n, 1);
  FnvMix(&h, row_offsets_.data(), row_offsets_.size());
  FnvMix(&h, col_indices_.data(), col_indices_.size());
  FnvMix(&h, weights_.data(), weights_.size());
  if (h == 0) h = kFnvOffset;  // keep 0 as the unset sentinel
  fingerprint_memo_.store(h, std::memory_order_relaxed);
  return h;
}

Result<CsrGraph> CsrGraph::FromCoo(const CooGraph& coo,
                                   const CsrBuildOptions& options) {
  const eid_t m_in = coo.num_edges();
  if (coo.dst.size() != coo.src.size()) {
    return Status::InvalidArgument("COO src/dst length mismatch");
  }
  if (coo.has_weights() && coo.weights.size() != coo.src.size()) {
    return Status::InvalidArgument("COO weights length mismatch");
  }
  for (eid_t e = 0; e < m_in; ++e) {
    if (coo.src[e] >= coo.num_vertices || coo.dst[e] >= coo.num_vertices) {
      return Status::InvalidArgument(
          "edge " + std::to_string(e) + " references vertex out of range");
    }
  }

  // Materialize the working edge set (optionally symmetrized, minus loops).
  struct Edge {
    vid_t u, v;
    weight_t w;
  };
  std::vector<Edge> edges;
  edges.reserve(options.make_undirected ? 2 * m_in : m_in);
  for (eid_t e = 0; e < m_in; ++e) {
    vid_t u = coo.src[e];
    vid_t v = coo.dst[e];
    if (options.remove_self_loops && u == v) continue;
    weight_t w = coo.has_weights() ? coo.weights[e] : weight_t{1};
    edges.push_back({u, v, w});
    if (options.make_undirected && u != v) edges.push_back({v, u, w});
  }

  if (options.sort_neighbors) {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) {
                       return a.u != b.u ? a.u < b.u : a.v < b.v;
                     });
  } else {
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) { return a.u < b.u; });
  }
  if (options.remove_duplicates) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                edges.end());
  }

  CsrGraph g;
  g.num_vertices_ = coo.num_vertices;
  g.row_offsets_.assign(static_cast<size_t>(coo.num_vertices) + 1, 0);
  g.col_indices_.resize(edges.size());
  if (coo.has_weights()) g.weights_.resize(edges.size());
  for (const Edge& e : edges) g.row_offsets_[e.u + 1] += 1;
  std::partial_sum(g.row_offsets_.begin(), g.row_offsets_.end(),
                   g.row_offsets_.begin());
  for (size_t i = 0; i < edges.size(); ++i) {
    g.col_indices_[i] = edges[i].v;
    if (!g.weights_.empty()) g.weights_[i] = edges[i].w;
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromArrays(vid_t num_vertices,
                                      std::vector<eid_t> row_offsets,
                                      std::vector<vid_t> col_indices,
                                      std::vector<weight_t> weights) {
  if (row_offsets.size() != static_cast<size_t>(num_vertices) + 1) {
    return Status::InvalidArgument("row_offsets must have n+1 entries");
  }
  if (row_offsets.front() != 0 || row_offsets.back() != col_indices.size()) {
    return Status::InvalidArgument("row_offsets endpoints inconsistent");
  }
  for (size_t i = 1; i < row_offsets.size(); ++i) {
    if (row_offsets[i] < row_offsets[i - 1]) {
      return Status::InvalidArgument("row_offsets not monotone");
    }
  }
  for (vid_t v : col_indices) {
    if (v >= num_vertices) {
      return Status::InvalidArgument("col index out of range");
    }
  }
  if (!weights.empty() && weights.size() != col_indices.size()) {
    return Status::InvalidArgument("weights length mismatch");
  }
  CsrGraph g;
  g.num_vertices_ = num_vertices;
  g.row_offsets_ = std::move(row_offsets);
  g.col_indices_ = std::move(col_indices);
  g.weights_ = std::move(weights);
  return g;
}

CsrGraph CsrGraph::Transpose() const {
  CsrGraph t;
  t.num_vertices_ = num_vertices_;
  t.row_offsets_.assign(row_offsets_.size(), 0);
  t.col_indices_.resize(col_indices_.size());
  if (has_weights()) t.weights_.resize(weights_.size());
  for (vid_t v : col_indices_) t.row_offsets_[v + 1] += 1;
  std::partial_sum(t.row_offsets_.begin(), t.row_offsets_.end(),
                   t.row_offsets_.begin());
  std::vector<eid_t> cursor(t.row_offsets_.begin(), t.row_offsets_.end() - 1);
  for (vid_t u = 0; u < num_vertices_; ++u) {
    for (eid_t e = row_offsets_[u]; e < row_offsets_[u + 1]; ++e) {
      vid_t v = col_indices_[e];
      eid_t pos = cursor[v]++;
      t.col_indices_[pos] = u;
      if (has_weights()) t.weights_[pos] = weights_[e];
    }
  }
  return t;
}

CsrGraph CsrGraph::WithUniformWeights(weight_t w) const {
  CsrGraph g = *this;
  g.weights_.assign(col_indices_.size(), w);
  // Content changed relative to *this: drop the copied memo so the weighted
  // flavor hashes its own bytes.
  g.fingerprint_memo_.store(0, std::memory_order_relaxed);
  return g;
}

CooGraph CsrGraph::ToCoo() const {
  CooGraph coo;
  coo.num_vertices = num_vertices_;
  coo.src.reserve(col_indices_.size());
  coo.dst.reserve(col_indices_.size());
  if (has_weights()) coo.weights.reserve(weights_.size());
  for (vid_t u = 0; u < num_vertices_; ++u) {
    for (eid_t e = row_offsets_[u]; e < row_offsets_[u + 1]; ++e) {
      coo.src.push_back(u);
      coo.dst.push_back(col_indices_[e]);
      if (has_weights()) coo.weights.push_back(weights_[e]);
    }
  }
  return coo;
}

}  // namespace adgraph::graph
