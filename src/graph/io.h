#ifndef ADGRAPH_GRAPH_IO_H_
#define ADGRAPH_GRAPH_IO_H_

#include <string>

#include "graph/coo.h"
#include "graph/csr.h"
#include "util/status.h"

namespace adgraph::graph {

/// Reads a SNAP-style whitespace edge list: one `u v [w]` pair per line,
/// `#`- or `%`-prefixed comment lines ignored.  Vertex ids are used as-is;
/// num_vertices = max id + 1.
Result<CooGraph> ReadEdgeList(const std::string& path);

/// Writes `coo` as an edge list (with weights if present).
Status WriteEdgeList(const CooGraph& coo, const std::string& path);

/// Reads a MatrixMarket `coordinate` file (pattern / real, general /
/// symmetric).  Symmetric entries are mirrored.  1-based indices become
/// 0-based.
Result<CooGraph> ReadMatrixMarket(const std::string& path);

/// Writes a MatrixMarket coordinate file (general; real if weighted,
/// pattern otherwise).
Status WriteMatrixMarket(const CooGraph& coo, const std::string& path);

/// Compact binary CSR snapshot (magic + counts + arrays, little-endian).
/// Round-trips exactly; used to cache generated proxy datasets.
Status WriteBinaryCsr(const CsrGraph& graph, const std::string& path);
Result<CsrGraph> ReadBinaryCsr(const std::string& path);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_IO_H_
