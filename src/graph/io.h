#ifndef ADGRAPH_GRAPH_IO_H_
#define ADGRAPH_GRAPH_IO_H_

#include <cstdint>
#include <span>
#include <string>

#include "graph/coo.h"
#include "graph/csr.h"
#include "util/status.h"

namespace adgraph::graph {

/// Reads a SNAP-style whitespace edge list: one `u v [w]` pair per line,
/// `#`- or `%`-prefixed comment lines ignored.  Vertex ids are used as-is;
/// num_vertices = max id + 1.
Result<CooGraph> ReadEdgeList(const std::string& path);

/// Writes `coo` as an edge list (with weights if present).
Status WriteEdgeList(const CooGraph& coo, const std::string& path);

/// Reads a MatrixMarket `coordinate` file (pattern / real, general /
/// symmetric).  Symmetric entries are mirrored.  1-based indices become
/// 0-based.
Result<CooGraph> ReadMatrixMarket(const std::string& path);

/// Writes a MatrixMarket coordinate file (general; real if weighted,
/// pattern otherwise).
Status WriteMatrixMarket(const CooGraph& coo, const std::string& path);

/// Compact binary CSR snapshot (magic + counts + arrays, little-endian).
/// Round-trips exactly; used to cache generated proxy datasets and to spill
/// graphs for out-of-core streaming.  Format v2 orders the sections
/// row_offsets, weights, col_indices so that every section sits at an
/// 8-byte-aligned offset — a page-aligned mmap of the file can hand out
/// properly aligned eid_t/weight_t pointers directly.
Status WriteBinaryCsr(const CsrGraph& graph, const std::string& path);
Result<CsrGraph> ReadBinaryCsr(const std::string& path);

/// Read-only memory-mapped view of a binary CSR v2 file.  The backing pages
/// stay on disk and are faulted in on demand, so a graph much larger than
/// host RAM budget can be sliced into shards without materializing it.
/// All section extents are validated against the mapped file size at Open —
/// a truncated or length-corrupted file yields a structured IOError without
/// allocating anything.  Offsets are 64-bit throughout (>2^31-edge safe).
class MappedCsr {
 public:
  MappedCsr() = default;
  ~MappedCsr();
  MappedCsr(const MappedCsr&) = delete;
  MappedCsr& operator=(const MappedCsr&) = delete;
  MappedCsr(MappedCsr&& other) noexcept;
  MappedCsr& operator=(MappedCsr&& other) noexcept;

  /// Maps `path` and validates header, section bounds, row-offset
  /// monotonicity, and column-index range.
  static Result<MappedCsr> Open(const std::string& path);

  vid_t num_vertices() const { return num_vertices_; }
  eid_t num_edges() const { return num_edges_; }
  bool has_weights() const { return weights_count_ != 0; }

  std::span<const eid_t> row_offsets() const {
    return {row_offsets_, static_cast<size_t>(num_vertices_) + 1};
  }
  std::span<const vid_t> col_indices() const {
    return {col_indices_, static_cast<size_t>(num_edges_)};
  }
  std::span<const weight_t> weights() const {
    return {weights_, static_cast<size_t>(weights_count_)};
  }

 private:
  void Reset() noexcept;

  void* base_ = nullptr;
  uint64_t map_len_ = 0;
  vid_t num_vertices_ = 0;
  eid_t num_edges_ = 0;
  uint64_t weights_count_ = 0;
  const eid_t* row_offsets_ = nullptr;
  const vid_t* col_indices_ = nullptr;
  const weight_t* weights_ = nullptr;
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_IO_H_
