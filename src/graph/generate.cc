#include "graph/generate.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/random.h"

namespace adgraph::graph {

Result<CooGraph> GenerateRmat(const RmatParams& params) {
  if (params.scale == 0 || params.scale > 30) {
    return Status::InvalidArgument("R-MAT scale must be in [1, 30]");
  }
  double sum = params.a + params.b + params.c + params.d;
  if (params.a <= 0 || params.b <= 0 || params.c <= 0 || params.d <= 0 ||
      std::abs(sum - 1.0) > 0.01) {
    return Status::InvalidArgument(
        "R-MAT probabilities must be positive and sum to 1 (got " +
        std::to_string(sum) + ")");
  }
  const vid_t n = static_cast<vid_t>(1u) << params.scale;
  const eid_t m = static_cast<eid_t>(params.edge_factor * n);
  Rng rng(params.seed);

  CooGraph coo;
  coo.num_vertices = n;
  coo.src.reserve(m);
  coo.dst.reserve(m);
  for (eid_t e = 0; e < m; ++e) {
    vid_t u = 0;
    vid_t v = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    coo.AddEdge(u, v);
  }

  if (params.permute_vertices) {
    std::vector<vid_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (vid_t i = n - 1; i > 0; --i) {
      vid_t j = static_cast<vid_t>(rng.Uniform(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (eid_t e = 0; e < m; ++e) {
      coo.src[e] = perm[coo.src[e]];
      coo.dst[e] = perm[coo.dst[e]];
    }
  }
  return coo;
}

Result<CooGraph> GenerateErdosRenyi(vid_t num_vertices, eid_t num_edges,
                                    uint64_t seed) {
  if (num_vertices == 0) {
    return Status::InvalidArgument("Erdos-Renyi needs at least one vertex");
  }
  Rng rng(seed);
  CooGraph coo;
  coo.num_vertices = num_vertices;
  coo.src.reserve(num_edges);
  coo.dst.reserve(num_edges);
  for (eid_t e = 0; e < num_edges; ++e) {
    coo.AddEdge(static_cast<vid_t>(rng.Uniform(num_vertices)),
                static_cast<vid_t>(rng.Uniform(num_vertices)));
  }
  return coo;
}

Result<CooGraph> GenerateWattsStrogatz(vid_t num_vertices, uint32_t k,
                                       double beta, uint64_t seed) {
  if (num_vertices < 3) {
    return Status::InvalidArgument("Watts-Strogatz needs >= 3 vertices");
  }
  if (k % 2 != 0 || k == 0 || k >= num_vertices) {
    return Status::InvalidArgument(
        "Watts-Strogatz degree k must be even, positive and < n");
  }
  if (beta < 0 || beta > 1) {
    return Status::InvalidArgument("rewire probability must be in [0,1]");
  }
  Rng rng(seed);
  CooGraph coo;
  coo.num_vertices = num_vertices;
  // Undirected edges already emitted, keyed (min,max).  Rewiring must
  // reject duplicates as well as self loops: a rewire that lands on an
  // existing edge would silently collapse under CSR dedup, skewing the
  // degree distribution the model is supposed to preserve.
  std::unordered_set<uint64_t> present;
  present.reserve(static_cast<size_t>(num_vertices) * (k / 2));
  auto edge_key = [](vid_t a, vid_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (vid_t u = 0; u < num_vertices; ++u) {
    for (uint32_t hop = 1; hop <= k / 2; ++hop) {
      const vid_t lattice = static_cast<vid_t>((u + hop) % num_vertices);
      vid_t v = lattice;
      if (rng.Bernoulli(beta)) {
        // Rewire to a uniform random target that is neither u nor a
        // neighbor yet; bounded retries keep generation O(1) per edge even
        // on near-complete ring neighborhoods, falling back to the
        // original lattice edge when no free target turns up.
        for (int attempt = 0; attempt < 64; ++attempt) {
          const vid_t w = static_cast<vid_t>(rng.Uniform(num_vertices));
          if (w == u || present.count(edge_key(u, w)) != 0) continue;
          v = w;
          break;
        }
      }
      // The fallback lattice edge can itself already exist (an earlier
      // rewire may have landed on it); emitting it again would be the
      // exact duplicate this fix removes.
      if (present.count(edge_key(u, v)) != 0) continue;
      present.insert(edge_key(u, v));
      coo.AddEdge(u, v);
      coo.AddEdge(v, u);
    }
  }
  return coo;
}

Result<CooGraph> GenerateBarabasiAlbert(vid_t num_vertices,
                                        uint32_t edges_per_vertex,
                                        uint64_t seed) {
  if (edges_per_vertex == 0 || num_vertices <= edges_per_vertex) {
    return Status::InvalidArgument(
        "Barabasi-Albert needs 0 < m < num_vertices");
  }
  Rng rng(seed);
  CooGraph coo;
  coo.num_vertices = num_vertices;
  // Target multiset: picking a uniform element of `targets` is proportional
  // to degree (each endpoint appearance is one entry).
  std::vector<vid_t> targets;
  targets.reserve(2ull * num_vertices * edges_per_vertex);
  // Seed clique over the first m+1 vertices.
  for (vid_t u = 0; u <= edges_per_vertex; ++u) {
    for (vid_t v = u + 1; v <= edges_per_vertex; ++v) {
      coo.AddEdge(u, v);
      coo.AddEdge(v, u);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (vid_t u = edges_per_vertex + 1; u < num_vertices; ++u) {
    std::vector<vid_t> chosen;
    while (chosen.size() < edges_per_vertex) {
      vid_t v = targets[rng.Uniform(targets.size())];
      if (v != u &&
          std::find(chosen.begin(), chosen.end(), v) == chosen.end()) {
        chosen.push_back(v);
      }
    }
    for (vid_t v : chosen) {
      coo.AddEdge(u, v);
      coo.AddEdge(v, u);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return coo;
}

void AttachRandomWeights(CooGraph* coo, double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  coo->weights.resize(coo->src.size());
  for (auto& w : coo->weights) w = lo + (hi - lo) * rng.NextDouble();
}

}  // namespace adgraph::graph
