#ifndef ADGRAPH_GRAPH_REORDER_H_
#define ADGRAPH_GRAPH_REORDER_H_

#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::graph {

/// \brief Vertex-relabeling (data layout) optimizations.
///
/// The paper's §5.3 notes that optimized data layouts (RealGraphGPU-style)
/// could reduce the irregular-access penalty its conclusions rest on; this
/// module implements the classic relabelings so the effect can be measured
/// in the simulator (bench_ext_reordering).

/// A permutation: `perm[old_id] = new_id`.  Always a bijection over
/// [0, num_vertices).
using Permutation = std::vector<vid_t>;

/// Relabels by descending out-degree (hubs first): clusters the hot
/// vertices' metadata, improving cache behaviour on skewed graphs.
Permutation DegreeOrder(const CsrGraph& g);

/// Relabels in BFS discovery order from `source` (Cuthill-McKee flavor):
/// neighbors get nearby ids, improving locality of neighbor gathers.
/// Vertices unreachable from `source` keep relative order at the end.
Permutation BfsOrder(const CsrGraph& g, vid_t source);

/// Applies `perm` to `g`: vertex v becomes perm[v]; adjacency (and weights)
/// follow.  Fails if perm is not a bijection of the right size.
Result<CsrGraph> ApplyPermutation(const CsrGraph& g, const Permutation& perm);

/// Inverse permutation (new_id -> old_id).
Permutation InvertPermutation(const Permutation& perm);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_REORDER_H_
