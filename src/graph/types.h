#ifndef ADGRAPH_GRAPH_TYPES_H_
#define ADGRAPH_GRAPH_TYPES_H_

#include <cstdint>

namespace adgraph::graph {

/// Vertex id.  32 bits covers every proxy dataset (largest has < 2^31
/// vertices); the paper-scale twitter-mpi would need the same width.
using vid_t = uint32_t;

/// Edge id / CSR offset.  64 bits: edge counts exceed 2^32 at paper scale.
using eid_t = uint64_t;

/// Edge weight type.  The paper runs everything in FP64 ("all graph data
/// was presented in double-precision floating-point format").
using weight_t = double;

/// Sentinel for "no vertex" (e.g. unvisited BFS parent).
inline constexpr vid_t kInvalidVertex = static_cast<vid_t>(-1);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_TYPES_H_
