#include "graph/delta.h"

#include <algorithm>
#include <atomic>
#include <string>

namespace adgraph::graph {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix64(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// One salt per DeltaGraph ever created in this process: two families
/// mutated apart from the same base content get distinct fingerprints, so
/// (family, version) residency keys never collide across families.
uint64_t NextFamilySalt() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<DeltaGraph> DeltaGraph::Create(CsrGraph base) {
  return Create(std::make_shared<const CsrGraph>(std::move(base)));
}

Result<DeltaGraph> DeltaGraph::Create(std::shared_ptr<const CsrGraph> base) {
  if (!base) return Status::InvalidArgument("DeltaGraph base is null");
  for (vid_t u = 0; u < base->num_vertices(); ++u) {
    auto nbrs = base->neighbors(u);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      if (nbrs[i] <= nbrs[i - 1]) {
        return Status::InvalidArgument(
            "DeltaGraph base must have sorted, duplicate-free adjacency "
            "(vertex " + std::to_string(u) + " violates this)");
      }
    }
  }
  DeltaGraph d;
  uint64_t family = FnvMix64(
      FnvMix64(kFnvOffset, base->ContentFingerprint()), NextFamilySalt());
  if (family == 0) family = kFnvOffset;
  d.base_ = std::move(base);
  d.family_fingerprint_ = family;
  return d;
}

eid_t DeltaGraph::num_edges() const {
  return base_->num_edges() - deletes_.size() + inserts_.size();
}

bool DeltaGraph::BaseHasEdge(vid_t u, vid_t v) const {
  auto nbrs = base_->neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool DeltaGraph::EdgeLive(vid_t u, vid_t v) const {
  if (inserts_.count({u, v})) return true;
  if (deletes_.count({u, v})) return false;
  return BaseHasEdge(u, v);
}

Status DeltaGraph::CheckVertex(vid_t u, vid_t v) const {
  if (u >= base_->num_vertices() || v >= base_->num_vertices()) {
    return Status::OutOfRange(
        "edge (" + std::to_string(u) + "," + std::to_string(v) +
        ") outside the fixed vertex set [0," +
        std::to_string(base_->num_vertices()) + ")");
  }
  return Status::OK();
}

Result<bool> DeltaGraph::AddEdge(vid_t u, vid_t v, weight_t w) {
  ADGRAPH_RETURN_NOT_OK(CheckVertex(u, v));
  if (EdgeLive(u, v)) return false;  // keep-first: builder.h policy
  inserts_[{u, v}] = w;
  version_ += 1;
  history_.push_back({u, v, w, /*insert=*/true});
  return true;
}

Result<bool> DeltaGraph::RemoveEdge(vid_t u, vid_t v) {
  ADGRAPH_RETURN_NOT_OK(CheckVertex(u, v));
  if (!EdgeLive(u, v)) return false;
  auto it = inserts_.find({u, v});
  if (it != inserts_.end()) {
    // The live copy came from the insert log; dropping it restores the
    // delete marker's effect (if any) on the base copy.
    inserts_.erase(it);
  } else {
    deletes_.insert({u, v});
  }
  version_ += 1;
  history_.push_back({u, v, weight_t{0}, /*insert=*/false});
  return true;
}

Result<uint64_t> DeltaGraph::Apply(std::span<const EdgeUpdate> updates) {
  uint64_t applied = 0;
  for (const EdgeUpdate& up : updates) {
    Result<bool> r = up.insert ? AddEdge(up.u, up.v, up.w)
                               : RemoveEdge(up.u, up.v);
    ADGRAPH_RETURN_NOT_OK(r.status());
    if (r.value()) applied += 1;
  }
  return applied;
}

Result<CsrGraph> DeltaGraph::MaterializeInternal() const {
  const CsrGraph& base = *base_;
  const bool weighted = base.has_weights();
  const vid_t n = base.num_vertices();
  std::vector<eid_t> row_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<vid_t> col_indices;
  std::vector<weight_t> weights;
  col_indices.reserve(num_edges());
  if (weighted) weights.reserve(num_edges());

  auto ins_it = inserts_.begin();
  for (vid_t u = 0; u < n; ++u) {
    auto nbrs = base.neighbors(u);
    auto wts = weighted ? base.edge_weights(u) : std::span<const weight_t>{};
    size_t bi = 0;
    // Merge the (sorted) surviving base row with the (sorted) insert log
    // for u.  Both streams are duplicate-free and — because AddEdge refuses
    // already-live edges — mutually disjoint, so the merge is too.
    while (bi < nbrs.size() || (ins_it != inserts_.end() &&
                                ins_it->first.first == u)) {
      bool base_turn;
      if (bi >= nbrs.size()) {
        base_turn = false;
      } else if (ins_it == inserts_.end() || ins_it->first.first != u) {
        base_turn = true;
      } else {
        base_turn = nbrs[bi] < ins_it->first.second;
      }
      if (base_turn) {
        if (!deletes_.count({u, nbrs[bi]})) {
          col_indices.push_back(nbrs[bi]);
          if (weighted) weights.push_back(wts[bi]);
        }
        ++bi;
      } else {
        col_indices.push_back(ins_it->first.second);
        if (weighted) weights.push_back(ins_it->second);
        ++ins_it;
      }
    }
    row_offsets[u + 1] = col_indices.size();
  }
  return CsrGraph::FromArrays(n, std::move(row_offsets),
                              std::move(col_indices), std::move(weights));
}

Result<CsrGraph> DeltaGraph::Materialize() const {
  return MaterializeInternal();
}

Result<std::shared_ptr<const CsrGraph>> DeltaGraph::Snapshot() {
  if (snapshot_ && snapshot_version_ == version_) return snapshot_;
  ADGRAPH_ASSIGN_OR_RETURN(CsrGraph g, MaterializeInternal());
  g.fingerprint_memo_.store(family_fingerprint_, std::memory_order_relaxed);
  g.mutation_epoch_ = version_;
  snapshot_ = std::make_shared<const CsrGraph>(std::move(g));
  snapshot_version_ = version_;
  return snapshot_;
}

Status DeltaGraph::Compact() {
  if (inserts_.empty() && deletes_.empty()) return Status::OK();
  ADGRAPH_ASSIGN_OR_RETURN(CsrGraph merged, MaterializeInternal());
  base_ = std::make_shared<const CsrGraph>(std::move(merged));
  inserts_.clear();
  deletes_.clear();
  return Status::OK();
}

std::optional<std::vector<EdgeUpdate>> DeltaGraph::UpdatesSince(
    uint64_t since_version) const {
  if (since_version > version_) return std::nullopt;
  if (since_version < history_base_version_) return std::nullopt;
  size_t first = since_version - history_base_version_;
  return std::vector<EdgeUpdate>(history_.begin() + first, history_.end());
}

void DeltaGraph::TrimHistory(size_t keep) {
  if (history_.size() <= keep) return;
  size_t drop = history_.size() - keep;
  history_.erase(history_.begin(), history_.begin() + drop);
  history_base_version_ += drop;
}

}  // namespace adgraph::graph
