#include "graph/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace adgraph::graph {
namespace {

constexpr uint64_t kBinaryMagic = 0x4852474441ull;  // "ADGRH"
constexpr uint32_t kBinaryVersion = 1;

/// Largest raw vertex id a text loader may accept: ids are stored as vid_t
/// and the implied vertex count is max_id + 1, so the id itself must stay
/// strictly below the vid_t maximum.  Anything larger used to be silently
/// truncated by the vid_t cast — corrupting the graph instead of failing.
constexpr uint64_t kMaxVertexId =
    static_cast<uint64_t>(std::numeric_limits<vid_t>::max()) - 1;

}  // namespace

Result<CooGraph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CooGraph coo;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    uint64_t u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed edge line: '" + line + "'");
    }
    if (u > kMaxVertexId || v > kMaxVertexId) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": vertex id " +
          std::to_string(std::max(u, v)) + " exceeds the supported maximum " +
          std::to_string(kMaxVertexId));
    }
    double w;
    bool has_w = static_cast<bool>(ss >> w);
    if (!has_w) ss.clear();
    std::string junk;
    if (ss >> junk) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": trailing junk '" + junk +
                                     "' on edge line");
    }
    if (has_w && coo.weights.size() < coo.src.size()) {
      // Earlier lines were unweighted: backfill.
      coo.weights.resize(coo.src.size(), 1.0);
    }
    coo.src.push_back(static_cast<vid_t>(u));
    coo.dst.push_back(static_cast<vid_t>(v));
    if (!coo.weights.empty() || has_w) {
      coo.weights.push_back(has_w ? w : 1.0);
    }
    vid_t needed = static_cast<vid_t>(std::max(u, v)) + 1;
    if (needed > coo.num_vertices) coo.num_vertices = needed;
  }
  return coo;
}

Status WriteEdgeList(const CooGraph& coo, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# adgraph edge list: " << coo.num_vertices << " vertices, "
      << coo.num_edges() << " edges\n";
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    out << coo.src[e] << ' ' << coo.dst[e];
    if (coo.has_weights()) out << ' ' << coo.weights[e];
    out << '\n';
  }
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<CooGraph> ReadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("%%MatrixMarket", 0) != 0) {
    return Status::IOError(path + ": missing MatrixMarket banner");
  }
  bool pattern = header.find("pattern") != std::string::npos;
  bool symmetric = header.find("symmetric") != std::string::npos;
  if (header.find("coordinate") == std::string::npos) {
    return Status::Unimplemented("only coordinate MatrixMarket supported");
  }
  std::string line;
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  uint64_t rows, cols, nnz;
  if (!(dims >> rows >> cols >> nnz)) {
    return Status::InvalidArgument(path + ": malformed size line: '" + line +
                                   "'");
  }
  std::string junk;
  if (dims >> junk) {
    return Status::InvalidArgument(path + ": trailing junk '" + junk +
                                   "' on size line");
  }
  if (std::max(rows, cols) > kMaxVertexId + 1) {
    return Status::InvalidArgument(
        path + ": dimension " + std::to_string(std::max(rows, cols)) +
        " exceeds the supported maximum " + std::to_string(kMaxVertexId + 1));
  }
  CooGraph coo;
  coo.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  coo.src.reserve(nnz);
  coo.dst.reserve(nnz);
  if (!pattern) coo.weights.reserve(nnz);
  for (uint64_t i = 0; i < nnz; ++i) {
    uint64_t r, c;
    double w = 1.0;
    if (!(in >> r >> c)) {
      return Status::InvalidArgument(path + ": malformed or truncated entry " +
                                     std::to_string(i + 1) + " of " +
                                     std::to_string(nnz));
    }
    if (!pattern && !(in >> w)) {
      return Status::InvalidArgument(path + ": missing value in entry " +
                                     std::to_string(i + 1) +
                                     " of a real matrix");
    }
    if (r == 0 || c == 0 || r > rows || c > cols) {
      return Status::InvalidArgument(
          path + ": entry " + std::to_string(i + 1) + " index (" +
          std::to_string(r) + ", " + std::to_string(c) +
          ") out of bounds for " + std::to_string(rows) + " x " +
          std::to_string(cols));
    }
    coo.src.push_back(static_cast<vid_t>(r - 1));
    coo.dst.push_back(static_cast<vid_t>(c - 1));
    if (!pattern) coo.weights.push_back(w);
    if (symmetric && r != c) {
      coo.src.push_back(static_cast<vid_t>(c - 1));
      coo.dst.push_back(static_cast<vid_t>(r - 1));
      if (!pattern) coo.weights.push_back(w);
    }
  }
  return coo;
}

Status WriteMatrixMarket(const CooGraph& coo, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  bool pattern = !coo.has_weights();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_vertices << ' ' << coo.num_vertices << ' '
      << coo.num_edges() << '\n';
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    out << (coo.src[e] + 1) << ' ' << (coo.dst[e] + 1);
    if (!pattern) out << ' ' << coo.weights[e];
    out << '\n';
  }
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

namespace {

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVec(std::ofstream& out, const std::vector<T>& vec) {
  uint64_t count = vec.size();
  WritePod(out, count);
  out.write(reinterpret_cast<const char*>(vec.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* vec) {
  uint64_t count;
  if (!ReadPod(in, &count)) return false;
  vec->resize(count);
  in.read(reinterpret_cast<char*>(vec->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteBinaryCsr(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WritePod(out, kBinaryMagic);
  WritePod(out, kBinaryVersion);
  WritePod(out, graph.num_vertices());
  WriteVec(out, graph.row_offsets());
  WriteVec(out, graph.col_indices());
  WriteVec(out, graph.weights());
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<CsrGraph> ReadBinaryCsr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t magic;
  uint32_t version;
  vid_t n;
  if (!ReadPod(in, &magic) || magic != kBinaryMagic) {
    return Status::IOError(path + ": not an adgraph binary CSR file");
  }
  if (!ReadPod(in, &version) || version != kBinaryVersion) {
    return Status::IOError(path + ": unsupported version");
  }
  if (!ReadPod(in, &n)) return Status::IOError(path + ": truncated");
  std::vector<eid_t> row_offsets;
  std::vector<vid_t> col_indices;
  std::vector<weight_t> weights;
  if (!ReadVec(in, &row_offsets) || !ReadVec(in, &col_indices) ||
      !ReadVec(in, &weights)) {
    return Status::IOError(path + ": truncated arrays");
  }
  return CsrGraph::FromArrays(n, std::move(row_offsets),
                              std::move(col_indices), std::move(weights));
}

}  // namespace adgraph::graph
