#include "graph/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace adgraph::graph {
namespace {

constexpr uint64_t kBinaryMagic = 0x4852474441ull;  // "ADGRH"
/// v2 reorders the array sections to row_offsets, weights, col_indices so
/// every section (count + payload) starts 8-byte aligned for mmap use.
constexpr uint32_t kBinaryVersion = 2;
/// magic (8) + version (4) + num_vertices (4).
constexpr uint64_t kBinaryHeaderBytes = 16;

/// Largest raw vertex id a text loader may accept: ids are stored as vid_t
/// and the implied vertex count is max_id + 1, so the id itself must stay
/// strictly below the vid_t maximum.  Anything larger used to be silently
/// truncated by the vid_t cast — corrupting the graph instead of failing.
constexpr uint64_t kMaxVertexId =
    static_cast<uint64_t>(std::numeric_limits<vid_t>::max()) - 1;

}  // namespace

Result<CooGraph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CooGraph coo;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    uint64_t u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed edge line: '" + line + "'");
    }
    if (u > kMaxVertexId || v > kMaxVertexId) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": vertex id " +
          std::to_string(std::max(u, v)) + " exceeds the supported maximum " +
          std::to_string(kMaxVertexId));
    }
    double w;
    bool has_w = static_cast<bool>(ss >> w);
    if (!has_w) ss.clear();
    std::string junk;
    if (ss >> junk) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": trailing junk '" + junk +
                                     "' on edge line");
    }
    if (has_w && coo.weights.size() < coo.src.size()) {
      // Earlier lines were unweighted: backfill.
      coo.weights.resize(coo.src.size(), 1.0);
    }
    coo.src.push_back(static_cast<vid_t>(u));
    coo.dst.push_back(static_cast<vid_t>(v));
    if (!coo.weights.empty() || has_w) {
      coo.weights.push_back(has_w ? w : 1.0);
    }
    vid_t needed = static_cast<vid_t>(std::max(u, v)) + 1;
    if (needed > coo.num_vertices) coo.num_vertices = needed;
  }
  return coo;
}

Status WriteEdgeList(const CooGraph& coo, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# adgraph edge list: " << coo.num_vertices << " vertices, "
      << coo.num_edges() << " edges\n";
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    out << coo.src[e] << ' ' << coo.dst[e];
    if (coo.has_weights()) out << ' ' << coo.weights[e];
    out << '\n';
  }
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<CooGraph> ReadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("%%MatrixMarket", 0) != 0) {
    return Status::IOError(path + ": missing MatrixMarket banner");
  }
  bool pattern = header.find("pattern") != std::string::npos;
  bool symmetric = header.find("symmetric") != std::string::npos;
  if (header.find("coordinate") == std::string::npos) {
    return Status::Unimplemented("only coordinate MatrixMarket supported");
  }
  std::string line;
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  uint64_t rows, cols, nnz;
  if (!(dims >> rows >> cols >> nnz)) {
    return Status::InvalidArgument(path + ": malformed size line: '" + line +
                                   "'");
  }
  std::string junk;
  if (dims >> junk) {
    return Status::InvalidArgument(path + ": trailing junk '" + junk +
                                   "' on size line");
  }
  if (std::max(rows, cols) > kMaxVertexId + 1) {
    return Status::InvalidArgument(
        path + ": dimension " + std::to_string(std::max(rows, cols)) +
        " exceeds the supported maximum " + std::to_string(kMaxVertexId + 1));
  }
  CooGraph coo;
  coo.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  coo.src.reserve(nnz);
  coo.dst.reserve(nnz);
  if (!pattern) coo.weights.reserve(nnz);
  for (uint64_t i = 0; i < nnz; ++i) {
    uint64_t r, c;
    double w = 1.0;
    if (!(in >> r >> c)) {
      return Status::InvalidArgument(path + ": malformed or truncated entry " +
                                     std::to_string(i + 1) + " of " +
                                     std::to_string(nnz));
    }
    if (!pattern && !(in >> w)) {
      return Status::InvalidArgument(path + ": missing value in entry " +
                                     std::to_string(i + 1) +
                                     " of a real matrix");
    }
    if (r == 0 || c == 0 || r > rows || c > cols) {
      return Status::InvalidArgument(
          path + ": entry " + std::to_string(i + 1) + " index (" +
          std::to_string(r) + ", " + std::to_string(c) +
          ") out of bounds for " + std::to_string(rows) + " x " +
          std::to_string(cols));
    }
    coo.src.push_back(static_cast<vid_t>(r - 1));
    coo.dst.push_back(static_cast<vid_t>(c - 1));
    if (!pattern) coo.weights.push_back(w);
    if (symmetric && r != c) {
      coo.src.push_back(static_cast<vid_t>(c - 1));
      coo.dst.push_back(static_cast<vid_t>(r - 1));
      if (!pattern) coo.weights.push_back(w);
    }
  }
  return coo;
}

Status WriteMatrixMarket(const CooGraph& coo, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  bool pattern = !coo.has_weights();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << coo.num_vertices << ' ' << coo.num_vertices << ' '
      << coo.num_edges() << '\n';
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    out << (coo.src[e] + 1) << ' ' << (coo.dst[e] + 1);
    if (!pattern) out << ' ' << coo.weights[e];
    out << '\n';
  }
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

namespace {

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVec(std::ofstream& out, const std::vector<T>& vec) {
  uint64_t count = vec.size();
  WritePod(out, count);
  out.write(reinterpret_cast<const char*>(vec.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Reads a (count, payload) section.  The declared count is validated
/// against the bytes actually left in the file BEFORE resizing, so a
/// corrupt or truncated header yields a clean failure instead of a
/// multi-terabyte allocation attempt.
template <typename T>
bool ReadVec(std::ifstream& in, uint64_t file_size, std::vector<T>* vec) {
  uint64_t count;
  if (!ReadPod(in, &count)) return false;
  const auto pos = static_cast<uint64_t>(in.tellg());
  if (pos > file_size) return false;
  const uint64_t remaining = file_size - pos;
  if (count > remaining / sizeof(T)) return false;
  vec->resize(count);
  in.read(reinterpret_cast<char*>(vec->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

Status WriteBinaryCsr(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WritePod(out, kBinaryMagic);
  WritePod(out, kBinaryVersion);
  WritePod(out, graph.num_vertices());
  // v2 section order: 8-byte elements first so everything stays aligned.
  WriteVec(out, graph.row_offsets());
  WriteVec(out, graph.weights());
  WriteVec(out, graph.col_indices());
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<CsrGraph> ReadBinaryCsr(const std::string& path) {
  ADGRAPH_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t magic;
  uint32_t version;
  vid_t n;
  if (!ReadPod(in, &magic) || magic != kBinaryMagic) {
    return Status::IOError(path + ": not an adgraph binary CSR file");
  }
  if (!ReadPod(in, &version) || version != kBinaryVersion) {
    return Status::IOError(path + ": unsupported binary CSR version");
  }
  if (!ReadPod(in, &n)) return Status::IOError(path + ": truncated");
  std::vector<eid_t> row_offsets;
  std::vector<vid_t> col_indices;
  std::vector<weight_t> weights;
  if (!ReadVec(in, file_size, &row_offsets) ||
      !ReadVec(in, file_size, &weights) ||
      !ReadVec(in, file_size, &col_indices)) {
    return Status::IOError(path +
                           ": truncated or length-corrupted array section");
  }
  return CsrGraph::FromArrays(n, std::move(row_offsets),
                              std::move(col_indices), std::move(weights));
}

// --- MappedCsr --------------------------------------------------------------

void MappedCsr::Reset() noexcept {
  if (base_ != nullptr) ::munmap(base_, static_cast<size_t>(map_len_));
  base_ = nullptr;
  map_len_ = 0;
  num_vertices_ = 0;
  num_edges_ = 0;
  weights_count_ = 0;
  row_offsets_ = nullptr;
  col_indices_ = nullptr;
  weights_ = nullptr;
}

MappedCsr::~MappedCsr() { Reset(); }

MappedCsr::MappedCsr(MappedCsr&& other) noexcept
    : base_(other.base_),
      map_len_(other.map_len_),
      num_vertices_(other.num_vertices_),
      num_edges_(other.num_edges_),
      weights_count_(other.weights_count_),
      row_offsets_(other.row_offsets_),
      col_indices_(other.col_indices_),
      weights_(other.weights_) {
  other.base_ = nullptr;
  other.Reset();
}

MappedCsr& MappedCsr::operator=(MappedCsr&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  base_ = other.base_;
  map_len_ = other.map_len_;
  num_vertices_ = other.num_vertices_;
  num_edges_ = other.num_edges_;
  weights_count_ = other.weights_count_;
  row_offsets_ = other.row_offsets_;
  col_indices_ = other.col_indices_;
  weights_ = other.weights_;
  other.base_ = nullptr;
  other.Reset();
  return *this;
}

Result<MappedCsr> MappedCsr::Open(const std::string& path) {
  ADGRAPH_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(path));
  if (file_size < kBinaryHeaderBytes) {
    return Status::IOError(path + ": too small for a binary CSR header (" +
                           std::to_string(file_size) + " bytes)");
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  void* base = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }
  MappedCsr m;
  m.base_ = base;
  m.map_len_ = file_size;

  const auto* bytes = static_cast<const unsigned char*>(base);
  uint64_t magic;
  uint32_t version;
  std::memcpy(&magic, bytes, sizeof(magic));
  std::memcpy(&version, bytes + 8, sizeof(version));
  std::memcpy(&m.num_vertices_, bytes + 12, sizeof(m.num_vertices_));
  if (magic != kBinaryMagic) {
    return Status::IOError(path + ": not an adgraph binary CSR file");
  }
  if (version != kBinaryVersion) {
    return Status::IOError(path + ": unsupported binary CSR version " +
                           std::to_string(version) + " (mmap needs v" +
                           std::to_string(kBinaryVersion) + ")");
  }

  // Walks a (count, payload) section without ever dereferencing past the
  // mapped extent; `count` is bounds-checked before use.
  uint64_t off = kBinaryHeaderBytes;
  auto take = [&](size_t elem_size, uint64_t* count,
                  const void** data) -> bool {
    if (off + sizeof(uint64_t) > file_size) return false;
    std::memcpy(count, bytes + off, sizeof(uint64_t));
    off += sizeof(uint64_t);
    if (*count > (file_size - off) / elem_size) return false;
    *data = bytes + off;
    off += *count * elem_size;
    return true;
  };

  uint64_t row_count = 0, weight_count = 0, col_count = 0;
  const void* rows = nullptr;
  const void* weights = nullptr;
  const void* cols = nullptr;
  if (!take(sizeof(eid_t), &row_count, &rows) ||
      !take(sizeof(weight_t), &weight_count, &weights) ||
      !take(sizeof(vid_t), &col_count, &cols)) {
    return Status::IOError(path +
                           ": truncated or length-corrupted array section");
  }
  if (off != file_size) {
    return Status::IOError(path + ": trailing bytes after CSR sections");
  }
  if (row_count != static_cast<uint64_t>(m.num_vertices_) + 1) {
    return Status::IOError(path + ": row_offsets has " +
                           std::to_string(row_count) + " entries, expected " +
                           std::to_string(m.num_vertices_) + "+1");
  }
  m.row_offsets_ = static_cast<const eid_t*>(rows);
  if (m.row_offsets_[0] != 0) {
    return Status::IOError(path + ": row_offsets[0] != 0");
  }
  for (uint64_t i = 1; i < row_count; ++i) {
    if (m.row_offsets_[i] < m.row_offsets_[i - 1]) {
      return Status::IOError(path + ": row_offsets not monotone at index " +
                             std::to_string(i));
    }
  }
  m.num_edges_ = m.row_offsets_[row_count - 1];
  if (col_count != m.num_edges_) {
    return Status::IOError(path + ": col_indices has " +
                           std::to_string(col_count) + " entries, expected " +
                           std::to_string(m.num_edges_));
  }
  if (weight_count != 0 && weight_count != m.num_edges_) {
    return Status::IOError(path + ": weights has " +
                           std::to_string(weight_count) +
                           " entries, expected 0 or " +
                           std::to_string(m.num_edges_));
  }
  m.col_indices_ = static_cast<const vid_t*>(cols);
  for (uint64_t e = 0; e < col_count; ++e) {
    if (m.col_indices_[e] >= m.num_vertices_) {
      return Status::IOError(path + ": col index out of range at edge " +
                             std::to_string(e));
    }
  }
  m.weights_count_ = weight_count;
  m.weights_ = weight_count != 0 ? static_cast<const weight_t*>(weights)
                                 : nullptr;
  return m;
}

}  // namespace adgraph::graph
