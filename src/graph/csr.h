#ifndef ADGRAPH_GRAPH_CSR_H_
#define ADGRAPH_GRAPH_CSR_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/coo.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::graph {

class DeltaGraph;

/// Options controlling COO -> CSR conversion.
struct CsrBuildOptions {
  /// Sort each adjacency list ascending (required by set-intersection
  /// triangle counting and binary-search lookups).
  bool sort_neighbors = true;
  /// Drop duplicate (u,v) pairs after sorting (keeps the first weight).
  bool remove_duplicates = false;
  /// Drop u==u self loops.
  bool remove_self_loops = false;
  /// Also insert (v,u) for every (u,v) — symmetrize a directed input.
  bool make_undirected = false;
};

/// \brief Compressed Sparse Row adjacency structure — the storage format of
/// nvGRAPH/adGRAPH (paper §5.3 notes CSR/CSC is what such libraries use).
///
/// Immutable after construction.  `row_offsets` has num_vertices()+1
/// entries; neighbors of v are col_indices[row_offsets[v] ..
/// row_offsets[v+1]).  Weights are optional and parallel to col_indices.
class CsrGraph {
 public:
  CsrGraph() = default;
  // Copies/moves carry the fingerprint memo and mutation epoch along with
  // the arrays (the copy describes the same bytes); spelled out because the
  // memo is an atomic.
  CsrGraph(const CsrGraph& other);
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&& other) noexcept;
  CsrGraph& operator=(CsrGraph&& other) noexcept;

  /// Builds from an edge list.  Validates vertex bounds and (if present)
  /// the weights array length.
  static Result<CsrGraph> FromCoo(const CooGraph& coo,
                                  const CsrBuildOptions& options = {});

  /// Direct constructor from pre-built arrays (trusted callers: tests,
  /// file readers of the binary format).  Validates shape invariants.
  static Result<CsrGraph> FromArrays(vid_t num_vertices,
                                     std::vector<eid_t> row_offsets,
                                     std::vector<vid_t> col_indices,
                                     std::vector<weight_t> weights = {});

  vid_t num_vertices() const { return num_vertices_; }
  eid_t num_edges() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }
  bool has_weights() const { return !weights_.empty(); }

  /// 64-bit: a single adjacency list can exceed 2^32 edges on the
  /// out-of-core path, so degrees are edge counts, not vertex ids.
  eid_t degree(vid_t v) const {
    return row_offsets_[v + 1] - row_offsets_[v];
  }
  std::span<const vid_t> neighbors(vid_t v) const {
    return {col_indices_.data() + row_offsets_[v],
            col_indices_.data() + row_offsets_[v + 1]};
  }
  std::span<const weight_t> edge_weights(vid_t v) const {
    return {weights_.data() + row_offsets_[v],
            weights_.data() + row_offsets_[v + 1]};
  }

  const std::vector<eid_t>& row_offsets() const { return row_offsets_; }
  const std::vector<vid_t>& col_indices() const { return col_indices_; }
  const std::vector<weight_t>& weights() const { return weights_; }

  /// Reversed-edge graph (CSC of this one).  Weights follow their edge.
  CsrGraph Transpose() const;

  /// Returns a copy with uniform weights attached (used by ESBV, which the
  /// paper notes *requires* edge weight data).
  CsrGraph WithUniformWeights(weight_t w) const;

  /// Converts back to an edge list (testing / round-trips).
  CooGraph ToCoo() const;

  /// Device-memory footprint of this graph's arrays if uploaded as-is.
  uint64_t DeviceFootprintBytes() const {
    return row_offsets_.size() * sizeof(eid_t) +
           col_indices_.size() * sizeof(vid_t) +
           weights_.size() * sizeof(weight_t);
  }

  /// FNV-1a digest of (num_vertices, row_offsets, col_indices, weights),
  /// memoized on first call — identical arrays hash identically, so this is
  /// the content half of every residency-cache key (core::FingerprintCsr
  /// delegates here).  Snapshots published by DeltaGraph instead carry a
  /// pre-stamped *family* fingerprint: one identity per mutable graph that
  /// stays fixed across mutations, with `mutation_epoch()` distinguishing
  /// the versions.  Never 0 (0 is the unset-memo sentinel).
  uint64_t ContentFingerprint() const;

  /// DeltaGraph version this snapshot was taken at.  0 for every graph that
  /// did not come out of DeltaGraph::Snapshot() — static graphs are epoch 0
  /// forever, which keeps pre-dynamic cache keys byte-stable.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  friend class DeltaGraph;  // stamps fingerprint_memo_/mutation_epoch_

  vid_t num_vertices_ = 0;
  std::vector<eid_t> row_offsets_{0};
  std::vector<vid_t> col_indices_;
  std::vector<weight_t> weights_;
  /// 0 = not yet computed; racing recomputations store the same value.
  mutable std::atomic<uint64_t> fingerprint_memo_{0};
  uint64_t mutation_epoch_ = 0;
};

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_CSR_H_
