#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

namespace adgraph::graph {

uint32_t DatasetSpec::ProxyScale() const {
  double target =
      static_cast<double>(paper_vertices) / std::max(scale_divisor, 1.0);
  uint32_t k = static_cast<uint32_t>(std::lround(std::log2(target)));
  return std::max(k, 8u);  // at least 256 vertices
}

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec>* datasets = [] {
    auto* list = new std::vector<DatasetSpec>;
    auto add = [&](std::string name, std::string category, uint64_t v,
                   uint64_t e, uint64_t maxdeg, double divisor, double a,
                   double b, double c, double d, bool permute,
                   uint64_t seed) {
      DatasetSpec spec;
      spec.name = std::move(name);
      spec.category = std::move(category);
      spec.paper_vertices = v;
      spec.paper_edges = e;
      spec.paper_max_degree = maxdeg;
      spec.scale_divisor = divisor;
      spec.recipe.a = a;
      spec.recipe.b = b;
      spec.recipe.c = c;
      spec.recipe.d = d;
      spec.recipe.permute_vertices = permute;
      spec.recipe.seed = seed;
      list->push_back(std::move(spec));
    };
    // Table 4 rows.  Skew parameters are chosen per category: web crawls
    // (unpermuted ids, strong hubs), social networks (permuted ids,
    // heavy-tailed), citation (mild skew).  Divisors keep the edge-count
    // ordering of the paper and a uniform divisor across the three largest
    // graphs so their capacity ratios survive (see datasets.h).
    // Skew parameters are calibrated so each proxy's max degree lands near
    // paper_max_degree / scale_divisor, preserving the paper's max-degree
    // ordering (twitter >> stanford ~ sinaweibo > uk2002 > google ~ lj >
    // patents), which drives the TC hub-imbalance phenomena.
    add("web-Stanford", "web", 281903, 2312497, 38626, 16,
        0.62, 0.165, 0.165, 0.05, false, 101);
    add("web-Google", "web", 916428, 5105039, 6353, 16,
        0.40, 0.25, 0.25, 0.10, false, 102);
    add("cit-Patents", "citation", 6009554, 16518948, 739, 32,
        0.22, 0.34, 0.34, 0.10, true, 103);
    add("soc-liveJournal1", "social", 4847571, 68475391, 22887, 64,
        0.32, 0.29, 0.29, 0.10, true, 104);
    add("soc-sinaweibo", "social", 58655849, 261321071, 278489, 192,
        0.44, 0.23, 0.23, 0.10, true, 105);
    add("web-uk-2002-all", "web", 18520486, 298113762, 194955, 192,
        0.40, 0.25, 0.25, 0.10, false, 106);
    add("twitter-mpi", "social", 52579682, 1963263821, 3691240, 192,
        0.52, 0.215, 0.215, 0.05, true, 107);
    return list;
  }();
  return *datasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no paper dataset named '" + name + "'");
}

Result<CsrGraph> Materialize(const DatasetSpec& spec, double extra_divisor) {
  RmatParams params = spec.recipe;
  double divisor = spec.scale_divisor * std::max(extra_divisor, 1.0);
  double target_v =
      static_cast<double>(spec.paper_vertices) / std::max(divisor, 1.0);
  // Clamp before the uint32_t cast: a divisor larger than the paper's
  // vertex count makes target_v < 1, whose negative log2 would wrap the
  // cast into a gigantic scale.
  long k = std::lround(std::log2(std::max(target_v, 2.0)));
  params.scale = static_cast<uint32_t>(std::clamp(k, 8l, 30l));
  double target_e = static_cast<double>(spec.paper_edges) / divisor;
  // Overshoot ~6%: duplicate edges and self loops removed during CSR
  // cleanup would otherwise leave the proxy short of its edge target.
  params.edge_factor =
      1.06 * target_e / static_cast<double>(1ull << params.scale);
  ADGRAPH_ASSIGN_OR_RETURN(CooGraph coo, GenerateRmat(params));
  CsrBuildOptions options;
  options.sort_neighbors = true;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options);
}

}  // namespace adgraph::graph
