#ifndef ADGRAPH_GRAPH_STATS_H_
#define ADGRAPH_GRAPH_STATS_H_

#include "graph/csr.h"
#include "graph/types.h"

namespace adgraph::graph {

/// Degree-distribution summary of a graph (paper Table 4 columns plus the
/// skew indicators the paper's "sensitivity to graph properties" discussion
/// relies on).
struct DegreeStats {
  vid_t num_vertices = 0;
  eid_t num_edges = 0;
  eid_t max_degree = 0;  ///< 64-bit: a row can hold > 2^32 edges
  double avg_degree = 0;
  vid_t isolated_vertices = 0;  ///< out-degree 0
  /// Max degree / average degree: the intra-warp load-imbalance driver.
  double skew() const {
    return avg_degree > 0 ? max_degree / avg_degree : 0;
  }
};

/// Out-degree statistics of `g`.
DegreeStats ComputeDegreeStats(const CsrGraph& g);

/// Degree-distribution detail: percentiles and a log-binned histogram —
/// the power-law evidence Table 4's dataset selection is based on.
struct DegreeDistribution {
  /// degree value at the given out-degree percentile (0, 50, 90, 99, 100).
  eid_t p0 = 0, p50 = 0, p90 = 0, p99 = 0, p100 = 0;
  /// histogram over power-of-two degree bins: bins[i] counts vertices with
  /// degree in [2^i, 2^(i+1)); bins[0] also includes degree 0 and 1.
  std::vector<uint64_t> log2_bins;
  /// Hill estimator of the power-law tail exponent alpha over the top 10%
  /// of degrees (0 when the graph is too small to estimate).
  double powerlaw_alpha = 0;
};

DegreeDistribution ComputeDegreeDistribution(const CsrGraph& g);

}  // namespace adgraph::graph

#endif  // ADGRAPH_GRAPH_STATS_H_
