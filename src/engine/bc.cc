#include <string>

#include "core/bfs.h"
#include "core/residency.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;

/// Brandes forward step as a push-advance functor: the plain BFS claim,
/// plus shortest-path counting — every edge from the frontier into the
/// newly discovered level adds the source's sigma to the destination's.
/// Sigma values are integer-valued doubles (exact below 2^53), so the
/// atomic accumulation order cannot perturb them.
struct BcForwardOp {
  DevPtr<uint32_t> levels;
  DevPtr<double> sigma;
  uint32_t level;
  Lanes<double> su;

  void LoadSource(Ctx& c, const Lanes<vid_t>& u) { su = c.Load(sigma, u); }
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>&,
                 const Lanes<vid_t>& v) {
    auto old = c.AtomicCas(levels, v, c.Splat(core::kUnreachedLevel),
                           c.Splat(level));
    auto fresh = c.Eq(old, core::kUnreachedLevel);
    auto lv = c.Load(levels, v);
    c.If(c.Eq(lv, level), [&](Ctx& c) { c.AtomicAdd(sigma, v, su); });
    return fresh;
  }
  void OnEnqueue(Ctx&, const Lanes<vid_t>&, const Lanes<vid_t>&) {}
};

/// Filter predicate for the backward sweep's per-level queue rebuild.
struct LevelEqPred {
  DevPtr<uint32_t> levels;
  uint32_t level;
  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    return c.Eq(c.Load(levels, v), level);
  }
};

/// One backward (dependency-accumulation) level: each vertex w on `level`
/// scans its neighbors and sums sigma[w]/sigma[v] * (1 + delta[v]) over
/// those on level+1.  Each thread owns one w and adds in edge order, so
/// the floating-point sum is deterministic.
KernelTask BcBackwardKernel(Ctx& c, CsrView view, DevPtr<vid_t> queue,
                            uint32_t size, DevPtr<uint32_t> levels,
                            DevPtr<double> sigma, DevPtr<double> delta,
                            uint32_t level) {
  auto i = c.GlobalThreadId();
  c.If(c.Lt(i, size), [&](Ctx& c) {
    auto w = c.Load(queue, i);
    auto begin = c.Load(view.row, w);
    auto end = c.Load(view.row, c.Add(w, 1u));
    auto sw = c.Load(sigma, w);
    auto acc = c.Splat(0.0);
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(view.col, e);
      auto lv = c.Load(levels, v);
      c.If(c.Eq(lv, level + 1), [&](Ctx& c) {
        auto sv = c.Load(sigma, v);
        auto dv = c.Load(delta, v);
        auto contrib = c.Mul(c.Div(sw, sv), c.Add(dv, 1.0));
        c.Assign(&acc, c.Add(acc, contrib));
      });
    });
    c.Store(delta, w, acc);
  });
  co_return;
}

}  // namespace

Result<core::BcResult> RunBetweenness(vgpu::Device* device,
                                      const graph::CsrGraph& g,
                                      const core::BcOptions& options,
                                      core::GraphResidency* residency,
                                      const EngineOptions& engine,
                                      EngineReport* report) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("betweenness on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("betweenness source " +
                                   std::to_string(options.source) +
                                   " out of range");
  }

  trace::Span algo_span(device->trace_track(), "algo:bc", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  // Brandes needs the predecessor relation both ways: symmetric adjacency.
  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kSymSimple));
  const core::DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto levels,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto sigma,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto delta,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(core::primitives::Fill<uint32_t>(
      device, levels.ptr(), n, core::kUnreachedLevel));
  ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
      device, levels.ptr(), options.source, 0));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<double>(device, sigma.ptr(), n, 0.0));
  ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<double>(
      device, sigma.ptr(), options.source, 1.0));
  ADGRAPH_RETURN_NOT_OK(cur.InitSource(options.source, options.block_size));

  CsrView view = MakeView(d);
  DirectionEngine director(device, engine.direction, DirectionHeuristic{},
                           /*can_pull=*/false);
  const LoadBalance lb = ResolveLoadBalance(
      engine.load_balance, d.num_edges, n, device->arch().warp_width);

  core::BcResult result;
  uint32_t frontier_size = 1;
  uint32_t level = 1;
  while (frontier_size > 0) {
    trace::Span sweep(device->trace_track(), "bc.forward", "phase");
    sweep.ArgNum("level", static_cast<uint64_t>(level));
    sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
    ADGRAPH_RETURN_NOT_OK(next.Clear(options.block_size));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir,
                             director.Choose(frontier_size, n, level));
    (void)dir;  // the counting forward pass is push-only

    BcForwardOp op{levels.ptr(), sigma.ptr(), level, {}};
    if (lb == LoadBalance::kWarpPerVertex) {
      const uint64_t warp_threads =
          static_cast<uint64_t>(frontier_size) * device->arch().warp_width;
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("bc_forward_warp",
                       rt::CoverThreads(warp_threads, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceWarpKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    } else {
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("bc_forward",
                       rt::CoverThreads(frontier_size, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceSparseKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    }

    ADGRAPH_RETURN_NOT_OK(next.RefreshCount());
    const uint32_t produced = next.size();
    if (produced > 0) result.depth = level;
    swap(cur, next);
    frontier_size = produced;
    ++level;
  }

  // Backward dependency accumulation, deepest level first.  Level 0 is the
  // source; its dependency is excluded by Brandes' definition.
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<double>(device, delta.ptr(), n, 0.0));
  for (uint32_t lvl = result.depth; lvl >= 1; --lvl) {
    trace::Span sweep(device->trace_track(), "bc.backward", "phase");
    sweep.ArgNum("level", static_cast<uint64_t>(lvl));
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<uint32_t>(device, cur.count(), 0, 0));
    LevelEqPred pred{levels.ptr(), lvl};
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("bc_levels_to_queue",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return FilterToQueueKernel(c, n, cur.queue(),
                                                  cur.count(), pred);
                     })
            .status());
    ADGRAPH_RETURN_NOT_OK(cur.RefreshCount());
    const uint32_t size = cur.size();
    if (size == 0) continue;
    // Skip the deepest level's neighbor scan?  No: its vertices still need
    // delta stored (it is 0 — no level+1 neighbors exist), and the scan
    // keeps the kernel uniform.
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("bc_backward", rt::CoverThreads(size, options.block_size),
                     [&](Ctx& c) {
                       return BcBackwardKernel(c, view, cur.queue(), size,
                                               levels.ptr(), sigma.ptr(),
                                               delta.ptr(), lvl);
                     })
            .status());
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.centrality, delta.ToHost());
  ADGRAPH_ASSIGN_OR_RETURN(result.sigma, sigma.ToHost());
  algo_span.ArgNum("depth", static_cast<uint64_t>(result.depth));
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
