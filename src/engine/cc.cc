#include "core/conn_components.h"
#include "core/residency.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;

KernelTask IotaLabelsKernel(Ctx& c, DevPtr<vid_t> labels, uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) { c.Store(labels, v, v); });
  co_return;
}

/// Min-label propagation as a push-advance functor.  A destination enters
/// the next frontier when its label shrank and this lane won the claim
/// flag — so each changed vertex is staged exactly once per round.
struct CcPushOp {
  DevPtr<vid_t> labels;
  DevPtr<uint32_t> out_flags;
  Lanes<vid_t> lu;

  void LoadSource(Ctx& c, const Lanes<vid_t>& u) { lu = c.Load(labels, u); }
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>&,
                 const Lanes<vid_t>& v) {
    auto old = c.AtomicMin(labels, v, lu);
    auto improved = c.Gt(old, lu);
    LaneMask fresh = 0;
    c.If(improved, [&](Ctx& c) {
      auto prev = c.AtomicExch(out_flags, v, c.Splat<uint32_t>(1));
      fresh = c.Eq(prev, 0u);
    });
    return fresh;
  }
  void OnEnqueue(Ctx&, const Lanes<vid_t>&, const Lanes<vid_t>&) {}
};

/// Dense-round eligibility: the vertex changed last round.
struct FlagSetPred {
  DevPtr<uint32_t> flags;
  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    return c.Eq(c.Load(flags, v), 1u);
  }
};

}  // namespace

Result<core::CcResult> RunConnectedComponents(vgpu::Device* device,
                                              const graph::CsrGraph& g,
                                              const core::CcOptions& options,
                                              core::GraphResidency* residency,
                                              const EngineOptions& engine,
                                              EngineReport* report) {
  const vid_t n = g.num_vertices();
  if (n == 0) {
    return Status::InvalidArgument("connected components on empty graph");
  }

  trace::Span algo_span(device->trace_track(), "algo:cc", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kSymSimple));
  const core::DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto labels,
                           rt::DeviceBuffer<vid_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));

  rt::DeviceTimer timer(device);
  {
    auto labels_ptr = labels.ptr();
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("cc_iota", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) { return IotaLabelsKernel(c, labels_ptr, n); })
            .status());
  }
  ADGRAPH_RETURN_NOT_OK(cur.InitAllVertices(options.block_size));

  CsrView view = MakeView(d);
  DirectionEngine director(device, engine.direction, DirectionHeuristic{},
                           /*can_pull=*/false);
  const LoadBalance lb = ResolveLoadBalance(
      engine.load_balance, d.num_edges, n, device->arch().warp_width);

  core::CcResult result;
  uint32_t frontier_size = n;
  // Min-label propagation converges within the graph diameter; n rounds is
  // the safe ceiling (matches the seed's bound).
  for (uint32_t round = 0; round < n; ++round) {
    trace::Span sweep(device->trace_track(), "cc.propagate_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(round + 1));
    sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
    ADGRAPH_RETURN_NOT_OK(next.Clear(options.block_size));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir,
                             director.Choose(frontier_size, n, round + 1));
    (void)dir;  // push-only; Choose validates policy and keeps stats

    CcPushOp op{labels.ptr(), next.flags(), {}};
    if (cur.rep() == Frontier::Rep::kDense) {
      FlagSetPred pred{cur.flags()};
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("cc_propagate_dense",
                       rt::CoverThreads(n, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceDenseKernel(c, view, next.queue(),
                                                       next.count(), pred, op);
                       })
              .status());
    } else if (lb == LoadBalance::kWarpPerVertex) {
      const uint64_t warp_threads =
          static_cast<uint64_t>(frontier_size) * device->arch().warp_width;
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("cc_propagate_warp",
                       rt::CoverThreads(warp_threads, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceWarpKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    } else {
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("cc_propagate",
                       rt::CoverThreads(frontier_size, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceSparseKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    }

    result.iterations = round + 1;
    ADGRAPH_RETURN_NOT_OK(next.RefreshCount());
    const uint32_t produced = next.size();
    if (produced == 0) break;

    next.set_rep(Frontier::Rep::kSparse);
    const DirectionHeuristic& h = director.heuristic();
    if (produced > h.min_pull_frontier &&
        static_cast<double>(produced) > n / h.alpha) {
      director.RecordConversion(Frontier::Rep::kSparse, Frontier::Rep::kDense);
      next.set_rep(Frontier::Rep::kDense);
    } else if (cur.rep() == Frontier::Rep::kDense) {
      director.RecordConversion(Frontier::Rep::kDense, Frontier::Rep::kSparse);
    }
    frontier_size = produced;
    swap(cur, next);
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.labels, labels.ToHost());
  // At the fixpoint each component is labeled by its smallest member, so
  // the component count is the number of self-labeled vertices.
  for (vid_t v = 0; v < n; ++v) {
    if (result.labels[v] == v) result.num_components += 1;
  }
  algo_span.ArgNum("num_components", result.num_components);
  algo_span.ArgNum("iterations", static_cast<uint64_t>(result.iterations));
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
