#include <utility>

#include "core/pagerank.h"
#include "core/pagerank_kernels.h"
#include "core/residency.h"
#include "core/spmv.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;

}  // namespace

// PageRank is floating-point-order sensitive, so the engine port does not
// re-derive the iteration from advance functors: it drives the seed's exact
// kernel sequence (dangling sum -> pull SpMV over the normalized transpose
// -> damping) as one dense pull advance per round.  Ranks, iteration count,
// and l1_delta are bitwise identical to core::RunPageRank; the engine's
// contribution is the direction arbitration and per-round decision record.
Result<core::PageRankResult> RunPageRank(vgpu::Device* device,
                                         const graph::CsrGraph& g,
                                         const core::PageRankOptions& options,
                                         core::GraphResidency* residency,
                                         const EngineOptions& engine,
                                         EngineReport* report) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("PageRank on empty graph");
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("damping factor must be in (0,1)");
  }
  if (engine.direction == DirectionPolicy::kPushOnly) {
    return Status::FailedPrecondition(
        "push-only direction policy, but PageRank has no push formulation "
        "(it is a pull/SpMV algorithm)");
  }

  trace::Span algo_span(device->trace_track(), "algo:pagerank", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("max_iterations",
                   static_cast<uint64_t>(options.max_iterations));

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kPullTranspose));
  const core::DeviceCsr& d_gt = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto d_row, rt::DeviceBuffer<eid_t>::FromHost(device, g.row_offsets()));
  ADGRAPH_ASSIGN_OR_RETURN(auto ranks,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto next,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto scalars,
                           rt::DeviceBuffer<double>::Create(device, 2));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<double>(device, ranks.ptr(), n, 1.0 / n));

  // Every vertex pulls every round: the frontier is dense and full-width
  // for the entire run, and the direction engine records a pull per round.
  DirectionEngine director(device, engine.direction, DirectionHeuristic{},
                           /*can_pull=*/true);

  core::PageRankResult result;
  core::SpmvOptions spmv_options;
  spmv_options.semiring = core::Semiring::kPlusTimes;
  spmv_options.block_size = options.block_size;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    trace::Span sweep(device->trace_track(), "pagerank.iteration", "phase");
    sweep.ArgNum("iteration", static_cast<uint64_t>(iter + 1));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir, director.Choose(n, n, iter + 1));
    (void)dir;  // kPushOnly was rejected above; kAuto/kPullOnly both pull

    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<double>(device, scalars.ptr(), 0, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_dangling",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return core::detail::DanglingSumKernel(
                           c, d_row.ptr(), ranks.ptr(), scalars.ptr(), n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        double dangling,
        core::primitives::GetElement<double>(device, scalars.ptr(), 0));

    ADGRAPH_RETURN_NOT_OK(core::RunSpmvOnDevice(device, d_gt, ranks.ptr(),
                                                next.ptr(), spmv_options));

    double base = (1.0 - options.alpha) / n +
                  options.alpha * dangling / static_cast<double>(n);
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<double>(device, scalars.ptr(), 1, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_damping",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return core::detail::ApplyDampingKernel(
                           c, next.ptr(), ranks.ptr(), scalars.ptr() + 1, base,
                           options.alpha, n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        result.l1_delta,
        core::primitives::GetElement<double>(device, scalars.ptr(), 1));

    std::swap(ranks, next);
    result.iterations = iter + 1;
    if (options.tolerance > 0 && result.l1_delta < options.tolerance) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.ranks, ranks.ToHost());
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
