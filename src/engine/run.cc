#include <string>
#include <variant>

#include "core/api.h"
#include "engine/algorithms.h"
#include "engine/engine.h"

// core::Run lives in the engine library (not adgraph_core) because six of
// the algorithms dispatch into the frontier/operator engine; core/api.h
// documents the layering.

namespace adgraph::core {

Result<AlgoResult> Run(vgpu::Device* device, const AlgoSpec& spec,
                       const graph::CsrGraph& g, const Params& params,
                       GraphResidency* residency) {
  if (static_cast<size_t>(spec.algo) != params.index()) {
    return Status::InvalidArgument(
        "algorithm/params mismatch: spec selects " +
        std::string(AlgorithmName(spec.algo)) + " but params carry " +
        std::string(AlgorithmName(static_cast<Algo>(params.index()))) +
        " options");
  }

  switch (spec.algo) {
    case Algo::kBfs: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunBfs(device, g, std::get<BfsOptions>(params),
                                 residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kSssp: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunSssp(device, g, std::get<SsspOptions>(params),
                                  residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kPageRank: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunPageRank(device, g,
                                      std::get<PageRankOptions>(params),
                                      residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kTriangleCount: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r,
          RunTriangleCount(device, g, std::get<TcOptions>(params), residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kConnectedComponents: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunConnectedComponents(
                      device, g, std::get<CcOptions>(params), residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kKCore: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, RunKCore(device, g, std::get<KCoreOptions>(params),
                           residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kJaccard: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, RunJaccard(device, g, std::get<JaccardOptions>(params),
                             residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kWidestPath: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunWidestPath(device, g,
                                        std::get<WidestPathOptions>(params),
                                        residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kColoring: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, RunGraphColoring(device, g, std::get<ColoringOptions>(params),
                                   residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kEsbv: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, ExtractSubgraphByVertex(device, g,
                                          std::get<EsbvOptions>(params),
                                          residency));
      return AlgoResult(std::move(r));
    }
    case Algo::kBetweenness: {
      ADGRAPH_ASSIGN_OR_RETURN(
          auto r, engine::RunBetweenness(device, g, std::get<BcOptions>(params),
                                         residency));
      return AlgoResult(std::move(r));
    }
  }
  return Status::InvalidArgument("unknown algorithm id " +
                                 std::to_string(static_cast<int>(spec.algo)));
}

}  // namespace adgraph::core
