#ifndef ADGRAPH_ENGINE_FRONTIER_H_
#define ADGRAPH_ENGINE_FRONTIER_H_

#include <cstdint>
#include <span>
#include <utility>

#include "graph/types.h"
#include "runtime/runtime.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::engine {

/// \brief The engine's unit of traversal state: the set of active vertices
/// of one round (DESIGN.md §2.11).
///
/// A frontier keeps two device representations of the same set:
///
///  * **sparse** — a compact queue of vertex ids (`queue`, `count` valid).
///    Work launched over it is proportional to the frontier, the win when
///    the set is small.
///  * **dense** — a per-vertex 0/1 flag array (`flags`).  Constant-size
///    kernels, sequential memory traffic, and the only representation a
///    pull (bottom-up) advance can consume — the win when the set is a
///    large fraction of all vertices.
///
/// `EnsureSparse`/`EnsureDense` convert between them on demand with one
/// kernel launch; `Advance` picks the launch shape from the current
/// representation and the direction engine's density heuristic.  The
/// conversion kernels use thread-ordered atomic ticketing, so on the
/// deterministic vgpu simulator every conversion is reproducible.
class Frontier {
 public:
  enum class Rep { kSparse, kDense };

  Frontier() = default;

  /// Allocates queue (n entries), flags (n entries), and the count cell.
  static Result<Frontier> Create(vgpu::Device* device, graph::vid_t n);

  /// Resets to the singleton set {source}: queue=[source], flag set,
  /// count=1, representation sparse.
  Status InitSource(graph::vid_t source, uint32_t block_size = 256);

  /// Resets to the full vertex set 0..n-1: all flags set, queue=iota,
  /// count=n, representation dense.
  Status InitAllVertices(uint32_t block_size = 256);

  /// Resets to an arbitrary host-side seed set (duplicate-free, ids < n):
  /// queue=seeds, flags scattered, count=|seeds|, representation sparse.
  /// The incremental-recompute entry point (DESIGN.md §2.12) uses this to
  /// re-expand only the vertices a delta touched.
  Status InitFromHost(std::span<const graph::vid_t> seeds,
                      uint32_t block_size = 256);

  /// Resets to the empty set (flags cleared, count 0, sparse).
  Status Clear(uint32_t block_size = 256);

  /// Materializes the queue from the flags (no-op when already sparse).
  Status EnsureSparse(uint32_t block_size = 256);

  /// Materializes the flags from the queue (no-op when already dense).
  Status EnsureDense(uint32_t block_size = 256);

  /// Re-reads the device count cell into the host mirror.
  Status RefreshCount();

  Rep rep() const { return rep_; }
  /// Host mirror of the set size (valid after Init*/RefreshCount).
  uint32_t size() const { return size_; }
  graph::vid_t num_vertices() const { return n_; }
  /// size / n in [0, 1]; the direction/representation heuristic input.
  double density() const { return n_ == 0 ? 0.0 : double(size_) / n_; }
  bool empty() const { return size_ == 0; }

  vgpu::DevPtr<graph::vid_t> queue() { return queue_.ptr(); }
  vgpu::DevPtr<uint32_t> flags() { return flags_.ptr(); }
  vgpu::DevPtr<uint32_t> count() { return count_.ptr(); }

  /// Marks the host mirror after an advance wrote the device count.
  void set_size(uint32_t size) { size_ = size; }
  void set_rep(Rep rep) { rep_ = rep; }

  /// Swaps device buffers and host state (double-buffering).
  friend void swap(Frontier& a, Frontier& b) noexcept {
    using std::swap;
    swap(a.device_, b.device_);
    swap(a.queue_, b.queue_);
    swap(a.flags_, b.flags_);
    swap(a.count_, b.count_);
    swap(a.n_, b.n_);
    swap(a.size_, b.size_);
    swap(a.rep_, b.rep_);
  }

 private:
  vgpu::Device* device_ = nullptr;
  rt::DeviceBuffer<graph::vid_t> queue_;
  rt::DeviceBuffer<uint32_t> flags_;
  rt::DeviceBuffer<uint32_t> count_;
  graph::vid_t n_ = 0;
  uint32_t size_ = 0;
  Rep rep_ = Rep::kSparse;
};

}  // namespace adgraph::engine

#endif  // ADGRAPH_ENGINE_FRONTIER_H_
