#include <limits>
#include <string>

#include "core/residency.h"
#include "core/widest_path.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::LaneMask;
using vgpu::Lanes;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Max-min (bottleneck) relaxation as a push-advance functor: the
/// candidate width through u is min(width[u], capacity(u,v)); v keeps the
/// maximum seen.  Claim-flag dedup as in SSSP.
struct WidestPushOp {
  DevPtr<double> weights;  // null when unweighted (edges have capacity 1)
  DevPtr<double> width;
  DevPtr<uint32_t> out_flags;
  Lanes<double> wu;

  void LoadSource(Ctx& c, const Lanes<vid_t>& u) { wu = c.Load(width, u); }
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>& e,
                 const Lanes<vid_t>& v) {
    auto cap = weights.is_null() ? c.Splat(1.0) : c.Load(weights, e);
    auto candidate = c.Min(wu, cap);
    auto old = c.AtomicMax(width, v, candidate);
    auto improved = c.Lt(old, candidate);
    LaneMask fresh = 0;
    c.If(improved, [&](Ctx& c) {
      auto prev = c.AtomicExch(out_flags, v, c.Splat<uint32_t>(1));
      fresh = c.Eq(prev, 0u);
    });
    return fresh;
  }
  void OnEnqueue(Ctx&, const Lanes<vid_t>&, const Lanes<vid_t>&) {}
};

struct FlagSetPred {
  DevPtr<uint32_t> flags;
  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    return c.Eq(c.Load(flags, v), 1u);
  }
};

}  // namespace

Result<core::WidestPathResult> RunWidestPath(
    vgpu::Device* device, const graph::CsrGraph& g,
    const core::WidestPathOptions& options, core::GraphResidency* residency,
    const EngineOptions& engine, EngineReport* report) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("widest path on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("widest-path source out of range");
  }
  if (g.has_weights()) {
    for (double w : g.weights()) {
      if (w < 0) {
        return Status::InvalidArgument(
            "widest path requires non-negative capacities (got " +
            std::to_string(w) + ")");
      }
    }
  }

  trace::Span algo_span(device->trace_track(), "algo:widest", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kAsIs));
  const core::DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto width,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<double>(device, width.ptr(), n, 0.0));
  ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<double>(
      device, width.ptr(), options.source, kInf));
  ADGRAPH_RETURN_NOT_OK(cur.InitSource(options.source, options.block_size));

  CsrView view = MakeView(d);
  DirectionEngine director(device, engine.direction, DirectionHeuristic{},
                           /*can_pull=*/false);
  const LoadBalance lb = ResolveLoadBalance(
      engine.load_balance, d.num_edges, n, device->arch().warp_width);

  core::WidestPathResult result;
  const uint32_t max_rounds =
      options.max_rounds > 0 ? options.max_rounds : (n > 1 ? n - 1 : 1);
  uint32_t frontier_size = 1;
  for (uint32_t round = 0; round < max_rounds; ++round) {
    trace::Span sweep(device->trace_track(), "widest.relax_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(round + 1));
    sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
    ADGRAPH_RETURN_NOT_OK(next.Clear(options.block_size));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir,
                             director.Choose(frontier_size, n, round + 1));
    (void)dir;  // push-only; Choose validates policy and keeps stats

    WidestPushOp op{view.weights, width.ptr(), next.flags(), {}};
    if (cur.rep() == Frontier::Rep::kDense) {
      FlagSetPred pred{cur.flags()};
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("widest_relax_dense",
                       rt::CoverThreads(n, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceDenseKernel(c, view, next.queue(),
                                                       next.count(), pred, op);
                       })
              .status());
    } else if (lb == LoadBalance::kWarpPerVertex) {
      const uint64_t warp_threads =
          static_cast<uint64_t>(frontier_size) * device->arch().warp_width;
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("widest_relax_warp",
                       rt::CoverThreads(warp_threads, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceWarpKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    } else {
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("widest_relax",
                       rt::CoverThreads(frontier_size, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceSparseKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    }

    result.rounds = round + 1;
    ADGRAPH_RETURN_NOT_OK(next.RefreshCount());
    const uint32_t produced = next.size();
    if (produced == 0) break;

    next.set_rep(Frontier::Rep::kSparse);
    const DirectionHeuristic& h = director.heuristic();
    if (produced > h.min_pull_frontier &&
        static_cast<double>(produced) > n / h.alpha) {
      director.RecordConversion(Frontier::Rep::kSparse, Frontier::Rep::kDense);
      next.set_rep(Frontier::Rep::kDense);
    } else if (cur.rep() == Frontier::Rep::kDense) {
      director.RecordConversion(Frontier::Rep::kDense, Frontier::Rep::kSparse);
    }
    frontier_size = produced;
    swap(cur, next);
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.widths, width.ToHost());
  algo_span.ArgNum("rounds", static_cast<uint64_t>(result.rounds));
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
