#include "core/incremental.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/bfs.h"
#include "core/conn_components.h"
#include "core/pagerank.h"
#include "core/pagerank_kernels.h"
#include "core/residency.h"
#include "core/spmv.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::LaneMask;
using vgpu::Lanes;

/// Push relaxation over a monotone per-vertex value array: AtomicMin the
/// candidate into the destination, claim the output flag when it improved.
/// With values = BFS levels and candidate = level[u] + 1 this converges to
/// shortest-path distances; with values = CC labels and candidate =
/// label[u] it converges to min-label components.  Both are the unique
/// fixpoints the full algorithms land on, which is what makes warm-started
/// re-expansion byte-identical (DESIGN.md §2.12).
struct DeltaMinPushOp {
  DevPtr<uint32_t> values;
  DevPtr<uint32_t> out_flags;
  uint32_t candidate_bump;  ///< 1 for BFS levels, 0 for CC labels
  Lanes<uint32_t> cand;

  void LoadSource(Ctx& c, const Lanes<vid_t>& u) {
    cand = c.Add(c.Load(values, u), candidate_bump);
  }
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>&,
                 const Lanes<vid_t>& v) {
    auto old = c.AtomicMin(values, v, cand);
    auto improved = c.Gt(old, cand);
    LaneMask fresh = 0;
    c.If(improved, [&](Ctx& c) {
      auto prev = c.AtomicExch(out_flags, v, c.Splat<uint32_t>(1));
      fresh = c.Eq(prev, 0u);
    });
    return fresh;
  }
  void OnEnqueue(Ctx&, const Lanes<vid_t>&, const Lanes<vid_t>&) {}
};

/// Runs seeded min-value push relaxation to convergence.  `values` already
/// holds the warm-started array on the device; `seeds` are the vertices
/// whose outgoing edges may improve a neighbor.  Returns the round count.
Result<uint32_t> RelaxToFixpoint(vgpu::Device* device, const core::DeviceCsr& d,
                                 rt::DeviceBuffer<uint32_t>* values,
                                 const std::vector<vid_t>& seeds,
                                 uint32_t candidate_bump, uint32_t block_size,
                                 const char* kernel_name) {
  const vid_t n = static_cast<vid_t>(values->size());
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));
  ADGRAPH_RETURN_NOT_OK(cur.InitFromHost(seeds, block_size));

  CsrView view = MakeView(d);
  const LoadBalance lb = ResolveLoadBalance(LoadBalance::kAuto, d.num_edges, n,
                                            device->arch().warp_width);
  uint32_t rounds = 0;
  uint32_t frontier_size = cur.size();
  while (frontier_size > 0 && rounds < n) {
    trace::Span sweep(device->trace_track(), "incremental.relax_round",
                      "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(rounds + 1));
    sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
    ADGRAPH_RETURN_NOT_OK(next.Clear(block_size));
    DeltaMinPushOp op{values->ptr(), next.flags(), candidate_bump, {}};
    if (lb == LoadBalance::kWarpPerVertex) {
      const uint64_t warp_threads =
          static_cast<uint64_t>(frontier_size) * device->arch().warp_width;
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch(kernel_name,
                       rt::CoverThreads(warp_threads, block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceWarpKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    } else {
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch(kernel_name,
                       rt::CoverThreads(frontier_size, block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceSparseKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    }
    rounds += 1;
    ADGRAPH_RETURN_NOT_OK(next.RefreshCount());
    frontier_size = next.size();
    next.set_rep(Frontier::Rep::kSparse);
    swap(cur, next);
  }
  return rounds;
}

Result<core::BfsResult> RunBfsDelta(vgpu::Device* device,
                                    const graph::CsrGraph& g,
                                    const core::BfsOptions& options,
                                    const core::BfsResult& previous,
                                    const std::vector<graph::EdgeUpdate>& ups,
                                    const core::IncrementalOptions& inc,
                                    core::GraphResidency* residency,
                                    core::IncrementalInfo* info) {
  const vid_t n = g.num_vertices();
  trace::Span algo_span(device->trace_track(), "algo:bfs_delta", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("delta_edges", static_cast<uint64_t>(ups.size()));

  // A new edge (u,v) can only improve distances when its source is reached
  // and relaxing it would shorten v; those sources seed the re-expansion.
  std::set<vid_t> seed_set;
  for (const auto& up : ups) {
    if (previous.levels[up.u] != core::kUnreachedLevel &&
        previous.levels[up.v] > previous.levels[up.u] + 1) {
      seed_set.insert(up.u);
    }
  }
  std::vector<vid_t> seeds(seed_set.begin(), seed_set.end());
  if (info != nullptr) info->seed_vertices = seeds.size();

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kAsIs));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto levels, rt::DeviceBuffer<uint32_t>::FromHost(device,
                                                        previous.levels));
  rt::DeviceTimer timer(device);
  ADGRAPH_ASSIGN_OR_RETURN(
      uint32_t rounds,
      RelaxToFixpoint(device, *staged, &levels, seeds, /*candidate_bump=*/1,
                      inc.block_size, "bfs_delta_relax"));

  core::BfsResult result;
  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.levels, levels.ToHost());
  // Depth and visit count are functions of the (unique) level fixpoint, so
  // recomputing them host-side keeps them equal to a full recompute.
  for (uint32_t level : result.levels) {
    if (level == core::kUnreachedLevel) continue;
    result.vertices_visited += 1;
    result.depth = std::max(result.depth, level);
  }
  result.top_down_iterations = rounds;
  result.bottom_up_iterations = 0;
  algo_span.ArgNum("rounds", static_cast<uint64_t>(rounds));
  (void)options;
  return result;
}

Result<core::CcResult> RunCcDelta(vgpu::Device* device,
                                  const graph::CsrGraph& g,
                                  const core::CcOptions& options,
                                  const core::CcResult& previous,
                                  const std::vector<graph::EdgeUpdate>& ups,
                                  const core::IncrementalOptions& inc,
                                  core::GraphResidency* residency,
                                  core::IncrementalInfo* info) {
  const vid_t n = g.num_vertices();
  trace::Span algo_span(device->trace_track(), "algo:cc_delta", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("delta_edges", static_cast<uint64_t>(ups.size()));

  // An insert only matters when it bridges two differently-labeled
  // components; both endpoints seed so the smaller label can flow either
  // way across the new (symmetrized) edge.
  std::set<vid_t> seed_set;
  for (const auto& up : ups) {
    if (previous.labels[up.u] != previous.labels[up.v]) {
      seed_set.insert(up.u);
      seed_set.insert(up.v);
    }
  }
  std::vector<vid_t> seeds(seed_set.begin(), seed_set.end());
  if (info != nullptr) info->seed_vertices = seeds.size();

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kSymSimple));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto labels, rt::DeviceBuffer<vid_t>::FromHost(device, previous.labels));
  rt::DeviceTimer timer(device);
  ADGRAPH_ASSIGN_OR_RETURN(
      uint32_t rounds,
      RelaxToFixpoint(device, *staged, &labels, seeds, /*candidate_bump=*/0,
                      inc.block_size, "cc_delta_relax"));

  core::CcResult result;
  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.labels, labels.ToHost());
  for (vid_t v = 0; v < n; ++v) {
    if (result.labels[v] == v) result.num_components += 1;
  }
  result.iterations = rounds;
  algo_span.ArgNum("num_components", result.num_components);
  (void)options;
  return result;
}

// Delta-PageRank: the exact full-recompute kernel sequence (dangling sum ->
// pull SpMV over the normalized transpose -> damping; engine/pagerank.cc),
// warm-started from the previous rank vector instead of 1/n.  Small deltas
// leave the previous ranks near the new fixpoint, so the tolerance check
// trips after far fewer iterations (cf. katana's PagerankDelta).
Result<core::PageRankResult> RunPageRankDelta(
    vgpu::Device* device, const graph::CsrGraph& g,
    const core::PageRankOptions& options,
    const core::PageRankResult& previous,
    core::GraphResidency* residency) {
  const vid_t n = g.num_vertices();
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("damping factor must be in (0,1)");
  }
  trace::Span algo_span(device->trace_track(), "algo:pagerank_delta", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kPullTranspose));
  const core::DeviceCsr& d_gt = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto d_row, rt::DeviceBuffer<eid_t>::FromHost(device, g.row_offsets()));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto ranks, rt::DeviceBuffer<double>::FromHost(device, previous.ranks));
  ADGRAPH_ASSIGN_OR_RETURN(auto next,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto scalars,
                           rt::DeviceBuffer<double>::Create(device, 2));

  rt::DeviceTimer timer(device);
  core::PageRankResult result;
  core::SpmvOptions spmv_options;
  spmv_options.semiring = core::Semiring::kPlusTimes;
  spmv_options.block_size = options.block_size;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    trace::Span sweep(device->trace_track(), "pagerank_delta.iteration",
                      "phase");
    sweep.ArgNum("iteration", static_cast<uint64_t>(iter + 1));
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<double>(device, scalars.ptr(), 0, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_dangling",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return core::detail::DanglingSumKernel(
                           c, d_row.ptr(), ranks.ptr(), scalars.ptr(), n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        double dangling,
        core::primitives::GetElement<double>(device, scalars.ptr(), 0));

    ADGRAPH_RETURN_NOT_OK(core::RunSpmvOnDevice(device, d_gt, ranks.ptr(),
                                                next.ptr(), spmv_options));

    double base = (1.0 - options.alpha) / n +
                  options.alpha * dangling / static_cast<double>(n);
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<double>(device, scalars.ptr(), 1, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_damping",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return core::detail::ApplyDampingKernel(
                           c, next.ptr(), ranks.ptr(), scalars.ptr() + 1, base,
                           options.alpha, n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        result.l1_delta,
        core::primitives::GetElement<double>(device, scalars.ptr(), 1));
    // Convergence trajectory on the span tree: an inspected warm-start job
    // shows how close the previous ranks already were.
    sweep.ArgNum("l1_delta", result.l1_delta);

    std::swap(ranks, next);
    result.iterations = iter + 1;
    if (options.tolerance > 0 && result.l1_delta < options.tolerance) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.ranks, ranks.ToHost());
  algo_span.ArgNum("iterations", static_cast<uint64_t>(result.iterations));
  return result;
}

bool HasDeletion(const std::vector<graph::EdgeUpdate>& ups) {
  return std::any_of(ups.begin(), ups.end(),
                     [](const graph::EdgeUpdate& up) { return !up.insert; });
}

}  // namespace
}  // namespace adgraph::engine

namespace adgraph::core {

Result<AlgoResult> RunIncremental(vgpu::Device* device, const AlgoSpec& spec,
                                  graph::DeltaGraph& delta,
                                  const Params& params,
                                  const AlgoResult& previous,
                                  uint64_t previous_version,
                                  const IncrementalOptions& options,
                                  GraphResidency* residency,
                                  IncrementalInfo* info) {
  if (device == nullptr) {
    return Status::InvalidArgument("RunIncremental requires a device");
  }
  if (static_cast<size_t>(spec.algo) != params.index()) {
    return Status::InvalidArgument(
        "params variant does not match the requested algorithm");
  }
  ADGRAPH_ASSIGN_OR_RETURN(auto snapshot, delta.Snapshot());
  const graph::CsrGraph& g = *snapshot;

  IncrementalInfo local;
  IncrementalInfo* out = info != nullptr ? info : &local;
  *out = IncrementalInfo{};

  auto fallback = [&](std::string reason) -> Result<AlgoResult> {
    out->incremental = false;
    out->fallback_reason = std::move(reason);
    return Run(device, spec, g, params, residency);
  };

  if (options.force_full) return fallback("forced full recompute");
  if (g.num_vertices() == 0) return fallback("empty graph");
  if (previous.index() != params.index()) {
    return fallback("previous result is from a different algorithm");
  }
  auto updates = delta.UpdatesSince(previous_version);
  if (!updates.has_value()) {
    return fallback("update history unavailable for the previous version");
  }
  out->updates_applied = updates->size();
  const double m =
      static_cast<double>(std::max<graph::eid_t>(1, g.num_edges()));
  if (static_cast<double>(updates->size()) > options.full_threshold * m) {
    return fallback("delta exceeds the full-recompute threshold");
  }

  switch (spec.algo) {
    case Algo::kBfs: {
      const auto& bfs_options = std::get<BfsOptions>(params);
      const auto& prev = std::get<BfsResult>(previous);
      if (bfs_options.compute_parents) {
        return fallback("parents requested (no incremental maintenance)");
      }
      if (prev.levels.size() != g.num_vertices()) {
        return fallback("previous levels do not match the vertex count");
      }
      if (engine::HasDeletion(*updates)) {
        return fallback("deletion in delta (BFS re-expansion is insert-only)");
      }
      out->incremental = true;
      ADGRAPH_ASSIGN_OR_RETURN(
          BfsResult r,
          engine::RunBfsDelta(device, g, bfs_options, prev, *updates, options,
                              residency, out));
      return AlgoResult{std::move(r)};
    }
    case Algo::kConnectedComponents: {
      const auto& cc_options = std::get<CcOptions>(params);
      const auto& prev = std::get<CcResult>(previous);
      if (prev.labels.size() != g.num_vertices()) {
        return fallback("previous labels do not match the vertex count");
      }
      if (engine::HasDeletion(*updates)) {
        return fallback("deletion in delta (CC re-expansion is insert-only)");
      }
      out->incremental = true;
      ADGRAPH_ASSIGN_OR_RETURN(
          CcResult r,
          engine::RunCcDelta(device, g, cc_options, prev, *updates, options,
                             residency, out));
      return AlgoResult{std::move(r)};
    }
    case Algo::kPageRank: {
      const auto& pr_options = std::get<PageRankOptions>(params);
      const auto& prev = std::get<PageRankResult>(previous);
      if (prev.ranks.size() != g.num_vertices()) {
        return fallback("previous ranks do not match the vertex count");
      }
      out->incremental = true;
      ADGRAPH_ASSIGN_OR_RETURN(
          PageRankResult r,
          engine::RunPageRankDelta(device, g, pr_options, prev, residency));
      return AlgoResult{std::move(r)};
    }
    default:
      return fallback("no incremental path for this algorithm");
  }
}

}  // namespace adgraph::core
