#include <string>

#include "core/bfs.h"
#include "core/residency.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::LaneMask;
using vgpu::Lanes;

/// The BFS visit as a push-advance functor: claim v's level with a CAS;
/// freshly claimed vertices enter the next frontier (and record their
/// parent).  Identical instruction stream to the seed TopDownKernel body.
struct BfsPushOp {
  DevPtr<uint32_t> levels;
  DevPtr<vid_t> parents;
  uint32_t level;

  void LoadSource(Ctx&, const Lanes<vid_t>&) {}
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>&,
                 const Lanes<vid_t>& v) {
    auto old = c.AtomicCas(levels, v, c.Splat(core::kUnreachedLevel),
                           c.Splat(level));
    return c.Eq(old, core::kUnreachedLevel);
  }
  void OnEnqueue(Ctx& c, const Lanes<vid_t>& u, const Lanes<vid_t>& v) {
    if (!parents.is_null()) c.Store(parents, v, u);
  }
};

/// The BFS bottom-up step as a pull-advance functor: an unreached vertex
/// adopts the first neighbor found on the previous level.  Identical
/// instruction stream to the seed BottomUpKernel body.
struct BfsPullOp {
  DevPtr<uint32_t> levels;
  DevPtr<vid_t> parents;
  uint32_t level;

  LaneMask Eligible(Ctx& c, const Lanes<vid_t>& v) {
    auto my_level = c.Load(levels, v);
    return c.Eq(my_level, core::kUnreachedLevel);
  }
  LaneMask Admit(Ctx& c, const Lanes<vid_t>&, const Lanes<vid_t>& nbr) {
    auto nbr_level = c.Load(levels, nbr);
    return c.Eq(nbr_level, level - 1);
  }
  void OnAdmit(Ctx& c, const Lanes<vid_t>& v, const Lanes<vid_t>& nbr) {
    c.Store(levels, v, c.Splat(level));
    if (!parents.is_null()) c.Store(parents, v, nbr);
  }
};

/// Filter predicate: vertex sits on `level` (queue rebuild after pull).
struct LevelEqPred {
  DevPtr<uint32_t> levels;
  uint32_t level;

  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    auto my_level = c.Load(levels, v);
    return c.Eq(my_level, level);
  }
};

}  // namespace

Result<core::BfsResult> RunBfs(vgpu::Device* device, const graph::CsrGraph& g,
                               const core::BfsOptions& options,
                               core::GraphResidency* residency,
                               const EngineOptions& engine,
                               EngineReport* report) {
  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kAsIs));
  const core::DeviceCsr& d = *staged;
  const vid_t n = d.num_vertices;
  if (n == 0) return Status::InvalidArgument("BFS on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("BFS source " +
                                   std::to_string(options.source) +
                                   " out of range");
  }

  trace::Span algo_span(device->trace_track(), "algo:bfs", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(auto levels,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  rt::DeviceBuffer<vid_t> parents;
  if (options.compute_parents) {
    ADGRAPH_ASSIGN_OR_RETURN(parents,
                             rt::DeviceBuffer<vid_t>::Create(device, n));
  }
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));

  rt::DeviceTimer timer(device);

  ADGRAPH_RETURN_NOT_OK(core::primitives::Fill<uint32_t>(
      device, levels.ptr(), n, core::kUnreachedLevel));
  ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
      device, levels.ptr(), options.source, 0));
  if (options.compute_parents) {
    ADGRAPH_RETURN_NOT_OK(core::primitives::Fill<vid_t>(
        device, parents.ptr(), n, graph::kInvalidVertex));
  }
  ADGRAPH_RETURN_NOT_OK(cur.InitSource(options.source, options.block_size));

  CsrView view = MakeView(d);
  DevPtr<vid_t> parents_ptr =
      options.compute_parents ? parents.ptr() : DevPtr<vid_t>{};

  // BFS byte-identity pins the gather to thread-per-vertex (the seed's
  // codegen); kAuto resolves there, an explicit kWarpPerVertex is honored.
  const bool warp_gather = engine.load_balance == LoadBalance::kWarpPerVertex;

  DirectionHeuristic heuristic;
  heuristic.alpha = options.alpha;
  heuristic.beta = options.beta;
  const bool can_pull =
      options.direction_optimizing && options.assume_symmetric;
  DirectionEngine director(device, engine.direction, heuristic, can_pull);

  core::BfsResult result;
  uint32_t frontier_size = 1;
  bool frontier_is_queue = true;  // else implicit in levels (pull mode)
  uint32_t level = 1;

  while (frontier_size > 0) {
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::SetElement<uint32_t>(device, next.count(), 0, 0));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir,
                             director.Choose(frontier_size, n, level));

    if (dir == Direction::kPull) {
      trace::Span sweep(device->trace_track(), "bfs.bottom_up", "phase");
      sweep.ArgNum("level", static_cast<uint64_t>(level));
      sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
      BfsPullOp op{levels.ptr(), parents_ptr, level};
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("bfs_bottom_up",
                       rt::CoverThreads(n, options.block_size),
                       [&](Ctx& c) {
                         return PullAdvanceKernel(c, view, next.count(), op);
                       })
              .status());
      result.bottom_up_iterations += 1;
      frontier_is_queue = false;
    } else {
      trace::Span sweep(device->trace_track(), "bfs.top_down", "phase");
      sweep.ArgNum("level", static_cast<uint64_t>(level));
      sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
      if (!frontier_is_queue) {
        // Returning from pull: Filter the level-1 vertices into a queue.
        ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
            device, next.count(), 0, 0));
        LevelEqPred pred{levels.ptr(), level - 1};
        ADGRAPH_RETURN_NOT_OK(
            device
                ->Launch("bfs_levels_to_queue",
                         rt::CoverThreads(n, options.block_size),
                         [&](Ctx& c) {
                           return FilterToQueueKernel(c, n, cur.queue(),
                                                      next.count(), pred);
                         })
                .status());
        ADGRAPH_ASSIGN_OR_RETURN(frontier_size,
                                 core::primitives::GetElement<uint32_t>(
                                     device, next.count(), 0));
        ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
            device, next.count(), 0, 0));
        frontier_is_queue = true;
        director.RecordConversion(Frontier::Rep::kDense,
                                  Frontier::Rep::kSparse);
        if (frontier_size == 0) break;
      }
      BfsPushOp op{levels.ptr(), parents_ptr, level};
      if (warp_gather) {
        const uint64_t warp_threads = static_cast<uint64_t>(frontier_size) *
                                      device->arch().warp_width;
        ADGRAPH_RETURN_NOT_OK(
            device
                ->Launch("bfs_top_down_warp",
                         rt::CoverThreads(warp_threads, options.block_size,
                                          StageSharedBytes()),
                         [&](Ctx& c) {
                           return PushAdvanceWarpKernel(
                               c, view, cur.queue(), frontier_size,
                               next.queue(), next.count(), op);
                         })
                .status());
      } else {
        ADGRAPH_RETURN_NOT_OK(
            device
                ->Launch("bfs_top_down",
                         rt::CoverThreads(frontier_size, options.block_size,
                                          StageSharedBytes()),
                         [&](Ctx& c) {
                           return PushAdvanceSparseKernel(
                               c, view, cur.queue(), frontier_size,
                               next.queue(), next.count(), op);
                         })
                .status());
      }
      result.top_down_iterations += 1;
    }

    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t produced,
        core::primitives::GetElement<uint32_t>(device, next.count(), 0));
    if (dir == Direction::kPull) {
      // Stay implicit; `produced` counts newly visited vertices.
      frontier_size = produced;
    } else {
      swap(cur, next);
      frontier_size = produced;
      frontier_is_queue = true;
    }
    if (produced > 0) {
      result.depth = level;
    }
    ++level;
  }

  result.time_ms = timer.ElapsedMs();

  ADGRAPH_ASSIGN_OR_RETURN(result.levels, levels.ToHost());
  if (options.compute_parents) {
    ADGRAPH_ASSIGN_OR_RETURN(result.parents, parents.ToHost());
  }
  for (uint32_t lvl : result.levels) {
    if (lvl != core::kUnreachedLevel) result.vertices_visited += 1;
  }
  algo_span.ArgNum("depth", static_cast<uint64_t>(result.depth));
  algo_span.ArgNum("top_down_iterations",
                   static_cast<uint64_t>(result.top_down_iterations));
  algo_span.ArgNum("bottom_up_iterations",
                   static_cast<uint64_t>(result.bottom_up_iterations));
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
