#include "engine/engine.h"

#include "trace/trace.h"

namespace adgraph::engine {

Result<Direction> DirectionEngine::Choose(uint32_t frontier_size,
                                          uint32_t num_vertices,
                                          uint32_t round) {
  Direction dir;
  switch (policy_) {
    case DirectionPolicy::kPushOnly:
      dir = Direction::kPush;
      break;
    case DirectionPolicy::kPullOnly:
      if (!can_pull_) {
        return Status::FailedPrecondition(
            "pull-only direction policy, but the algorithm has no pull "
            "formulation on this input (needs a symmetric adjacency)");
      }
      dir = Direction::kPull;
      break;
    case DirectionPolicy::kAuto: {
      // The seed BFS switch, verbatim: bottom-up while the frontier holds
      // more than n/alpha vertices (and clears the absolute floor).
      const bool pull =
          can_pull_ && frontier_size > heuristic_.min_pull_frontier &&
          static_cast<double>(frontier_size) > num_vertices / heuristic_.alpha;
      dir = pull ? Direction::kPull : Direction::kPush;
      break;
    }
  }

  if (dir == Direction::kPull) {
    stats_.pull_rounds += 1;
  } else {
    stats_.push_rounds += 1;
  }
  if (has_prior_ && dir != prior_) stats_.direction_flips += 1;
  prior_ = dir;
  has_prior_ = true;

  trace::Span span(device_->trace_track(), "engine.direction", "engine");
  span.ArgNum("round", static_cast<uint64_t>(round));
  span.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
  span.ArgNum("num_vertices", static_cast<uint64_t>(num_vertices));
  span.ArgNum("pull", static_cast<uint64_t>(dir == Direction::kPull ? 1 : 0));
  return dir;
}

void DirectionEngine::RecordConversion(Frontier::Rep from, Frontier::Rep to) {
  if (from == to) return;
  if (to == Frontier::Rep::kDense) {
    stats_.sparse_to_dense += 1;
  } else {
    stats_.dense_to_sparse += 1;
  }
}

}  // namespace adgraph::engine
