#ifndef ADGRAPH_ENGINE_ENGINE_H_
#define ADGRAPH_ENGINE_ENGINE_H_

#include <cstdint>

#include "engine/frontier.h"
#include "engine/operators.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::engine {

/// Traversal direction of one engine round.
enum class Direction {
  kPush,  ///< frontier expands over its out-edges (top-down)
  kPull,  ///< candidate vertices scan for an active neighbor (bottom-up)
};

/// Caller policy for the per-round direction choice.
enum class DirectionPolicy {
  kAuto,      ///< density heuristic picks per round (GraphBLAST-style)
  kPushOnly,  ///< never pull (the classic push-only baseline)
  kPullOnly,  ///< always pull; fails when the algorithm cannot pull
};

/// The frontier-density switch thresholds.  Defaults equal the seed BFS
/// (BfsOptions alpha/beta and its hard-coded 64-entry floor), so an
/// engine-ported traversal makes the identical mode decision every round.
struct DirectionHeuristic {
  /// Pull when frontier_size > n / alpha.
  double alpha = 16.0;
  /// Return-to-push threshold (newly visited < n / beta).  Recorded for
  /// parity with BfsOptions; like the seed, the switch back is decided by
  /// re-evaluating the alpha condition on the shrunken frontier.
  double beta = 64.0;
  /// Never pull below this frontier size (seed BFS's `frontier_size > 64`).
  uint32_t min_pull_frontier = 64;
};

/// Counters of every decision the engine made during one algorithm run —
/// the observable record of the direction optimization.
struct DirectionStats {
  uint32_t push_rounds = 0;
  uint32_t pull_rounds = 0;
  uint32_t direction_flips = 0;    ///< rounds whose mode differs from prior
  uint32_t sparse_to_dense = 0;    ///< frontier representation conversions
  uint32_t dense_to_sparse = 0;
};

/// \brief Per-run direction chooser: applies the density heuristic each
/// round, traces the decision, and keeps the stats.
class DirectionEngine {
 public:
  /// `can_pull`: whether the algorithm has a pull formulation available on
  /// this input (e.g. BFS bottom-up needs a symmetric adjacency).
  DirectionEngine(vgpu::Device* device, DirectionPolicy policy,
                  DirectionHeuristic heuristic, bool can_pull)
      : device_(device),
        policy_(policy),
        heuristic_(heuristic),
        can_pull_(can_pull) {}

  /// Picks the round's direction from the frontier density.  Emits an
  /// "engine.direction" trace span carrying round, frontier size, and the
  /// decision.  kFailedPrecondition when policy is kPullOnly but the
  /// algorithm cannot pull here.
  Result<Direction> Choose(uint32_t frontier_size, uint32_t num_vertices,
                           uint32_t round);

  /// Records a frontier representation conversion.
  void RecordConversion(Frontier::Rep from, Frontier::Rep to);

  const DirectionStats& stats() const { return stats_; }
  DirectionPolicy policy() const { return policy_; }
  const DirectionHeuristic& heuristic() const { return heuristic_; }
  bool can_pull() const { return can_pull_; }

 private:
  vgpu::Device* device_;
  DirectionPolicy policy_;
  DirectionHeuristic heuristic_;
  bool can_pull_;
  DirectionStats stats_;
  bool has_prior_ = false;
  Direction prior_ = Direction::kPush;
};

/// Cross-algorithm engine knobs, threaded from benches and tests.
struct EngineOptions {
  DirectionPolicy direction = DirectionPolicy::kAuto;
  LoadBalance load_balance = LoadBalance::kAuto;
};

/// Per-run observability report filled by the engine algorithm drivers.
struct EngineReport {
  DirectionStats direction;
};

}  // namespace adgraph::engine

#endif  // ADGRAPH_ENGINE_ENGINE_H_
