#ifndef ADGRAPH_ENGINE_ALGORITHMS_H_
#define ADGRAPH_ENGINE_ALGORITHMS_H_

#include "core/api.h"
#include "engine/engine.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::engine {

/// \brief The engine-ported algorithms (DESIGN.md §2.11).
///
/// Each is a short driver over the shared Frontier/Advance/Filter
/// operators; `core::Run` dispatches here.  Outputs are byte-identical to
/// the seed `core::Run*` implementations wherever the paper's comparisons
/// depend on them (golden_test):
///
///  * BFS replays the seed's kernel codegen and direction heuristic
///    operation for operation — levels, parents, depth, and iteration
///    counts all match.
///  * SSSP / CC / widest-path converge to the unique semiring fixpoint
///    (min-plus, min-label, max-min), so the result arrays are bitwise
///    equal even though the engine schedules work frontier-first; round
///    counts may differ.
///  * PageRank is floating-point-order sensitive, so the engine keeps the
///    seed's exact kernel sequence (dangling sum, pull SpMV, damping) as a
///    dense pull advance — ranks and iteration count match bitwise.
///
/// `report`, when non-null, receives the per-run direction statistics.

Result<core::BfsResult> RunBfs(vgpu::Device* device, const graph::CsrGraph& g,
                               const core::BfsOptions& options,
                               core::GraphResidency* residency = nullptr,
                               const EngineOptions& engine = {},
                               EngineReport* report = nullptr);

Result<core::SsspResult> RunSssp(vgpu::Device* device,
                                 const graph::CsrGraph& g,
                                 const core::SsspOptions& options,
                                 core::GraphResidency* residency = nullptr,
                                 const EngineOptions& engine = {},
                                 EngineReport* report = nullptr);

Result<core::PageRankResult> RunPageRank(
    vgpu::Device* device, const graph::CsrGraph& g,
    const core::PageRankOptions& options,
    core::GraphResidency* residency = nullptr, const EngineOptions& engine = {},
    EngineReport* report = nullptr);

Result<core::CcResult> RunConnectedComponents(
    vgpu::Device* device, const graph::CsrGraph& g,
    const core::CcOptions& options, core::GraphResidency* residency = nullptr,
    const EngineOptions& engine = {}, EngineReport* report = nullptr);

Result<core::WidestPathResult> RunWidestPath(
    vgpu::Device* device, const graph::CsrGraph& g,
    const core::WidestPathOptions& options,
    core::GraphResidency* residency = nullptr, const EngineOptions& engine = {},
    EngineReport* report = nullptr);

/// Brandes single-source betweenness: an engine BFS forward pass that also
/// accumulates shortest-path counts, then a level-synchronous backward
/// dependency sweep — the "new algorithm in a few dozen lines" the engine
/// refactor exists to enable.
Result<core::BcResult> RunBetweenness(vgpu::Device* device,
                                      const graph::CsrGraph& g,
                                      const core::BcOptions& options,
                                      core::GraphResidency* residency = nullptr,
                                      const EngineOptions& engine = {},
                                      EngineReport* report = nullptr);

}  // namespace adgraph::engine

#endif  // ADGRAPH_ENGINE_ALGORITHMS_H_
