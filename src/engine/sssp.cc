#include <limits>
#include <string>

#include "core/residency.h"
#include "core/sssp.h"
#include "engine/algorithms.h"
#include "engine/frontier.h"
#include "engine/operators.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::LaneMask;
using vgpu::Lanes;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Min-plus relaxation as a push-advance functor.  A destination enters
/// the next frontier when this lane both improved it *and* won the
/// claim-flag exchange — the dedup that keeps the output queue a set.
struct SsspPushOp {
  DevPtr<double> weights;  // null when unweighted (edges count as 1)
  DevPtr<double> dist;
  DevPtr<uint32_t> out_flags;
  Lanes<double> du;

  void LoadSource(Ctx& c, const Lanes<vid_t>& u) { du = c.Load(dist, u); }
  LaneMask Relax(Ctx& c, const Lanes<vid_t>&, const Lanes<eid_t>& e,
                 const Lanes<vid_t>& v) {
    auto w = weights.is_null() ? c.Splat(1.0) : c.Load(weights, e);
    auto candidate = c.Add(du, w);
    auto old = c.AtomicMin(dist, v, candidate);
    auto improved = c.Gt(old, candidate);
    LaneMask fresh = 0;
    c.If(improved, [&](Ctx& c) {
      auto prev = c.AtomicExch(out_flags, v, c.Splat<uint32_t>(1));
      fresh = c.Eq(prev, 0u);
    });
    return fresh;
  }
  void OnEnqueue(Ctx&, const Lanes<vid_t>&, const Lanes<vid_t>&) {}
};

/// Dense-round eligibility: the vertex's frontier flag is set.
struct FlagSetPred {
  DevPtr<uint32_t> flags;
  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    return c.Eq(c.Load(flags, v), 1u);
  }
};

/// use_frontier=false: every vertex with a finite distance expands
/// (the seed's non-frontier Bellman-Ford sweep).
struct FiniteDistPred {
  DevPtr<double> dist;
  LaneMask operator()(Ctx& c, const Lanes<vid_t>& v) {
    return c.Lt(c.Load(dist, v), kInf);
  }
};

}  // namespace

Result<core::SsspResult> RunSssp(vgpu::Device* device,
                                 const graph::CsrGraph& g,
                                 const core::SsspOptions& options,
                                 core::GraphResidency* residency,
                                 const EngineOptions& engine,
                                 EngineReport* report) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("SSSP on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("SSSP source out of range");
  }
  if (g.has_weights()) {
    for (double w : g.weights()) {
      if (w < 0) {
        return Status::InvalidArgument(
            "SSSP requires non-negative weights (got " + std::to_string(w) +
            ")");
      }
    }
  }

  trace::Span algo_span(device->trace_track(), "algo:sssp", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(
      core::ResidentCsr staged,
      core::Stage(residency, device, g, core::GraphVariant::kAsIs));
  const core::DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto dist,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier cur, Frontier::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(Frontier next, Frontier::Create(device, n));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<double>(device, dist.ptr(), n, kInf));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<double>(device, dist.ptr(), options.source,
                                           0.0));
  ADGRAPH_RETURN_NOT_OK(cur.InitSource(options.source, options.block_size));

  CsrView view = MakeView(d);
  // Relaxation has no pull formulation here; the direction engine still
  // arbitrates (kPullOnly fails fast, kAuto records push rounds).
  DirectionEngine director(device, engine.direction, DirectionHeuristic{},
                           /*can_pull=*/false);
  const LoadBalance lb = ResolveLoadBalance(
      engine.load_balance, d.num_edges, n, device->arch().warp_width);

  core::SsspResult result;
  const uint32_t max_rounds =
      options.max_rounds > 0 ? options.max_rounds : (n > 1 ? n - 1 : 1);
  uint32_t frontier_size = 1;
  for (uint32_t round = 0; round < max_rounds; ++round) {
    trace::Span sweep(device->trace_track(), "sssp.relax_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(round + 1));
    sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
    ADGRAPH_RETURN_NOT_OK(next.Clear(options.block_size));
    ADGRAPH_ASSIGN_OR_RETURN(Direction dir,
                             director.Choose(frontier_size, n, round + 1));
    (void)dir;  // always push; Choose validates policy and keeps stats

    SsspPushOp op{view.weights, dist.ptr(), next.flags(), {}};
    if (!options.use_frontier) {
      FiniteDistPred pred{dist.ptr()};
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("sssp_relax_dense",
                       rt::CoverThreads(n, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceDenseKernel(c, view, next.queue(),
                                                       next.count(), pred, op);
                       })
              .status());
    } else if (cur.rep() == Frontier::Rep::kDense) {
      FlagSetPred pred{cur.flags()};
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("sssp_relax_dense",
                       rt::CoverThreads(n, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceDenseKernel(c, view, next.queue(),
                                                       next.count(), pred, op);
                       })
              .status());
    } else if (lb == LoadBalance::kWarpPerVertex) {
      const uint64_t warp_threads =
          static_cast<uint64_t>(frontier_size) * device->arch().warp_width;
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("sssp_relax_warp",
                       rt::CoverThreads(warp_threads, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceWarpKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    } else {
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("sssp_relax",
                       rt::CoverThreads(frontier_size, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return PushAdvanceSparseKernel(
                             c, view, cur.queue(), frontier_size, next.queue(),
                             next.count(), op);
                       })
              .status());
    }

    result.rounds = round + 1;
    ADGRAPH_RETURN_NOT_OK(next.RefreshCount());
    const uint32_t produced = next.size();
    if (produced == 0) break;

    // Density-based representation choice for the next round's launch
    // shape (the advance maintains queue and flags together, so the
    // "conversion" is a relabel, recorded like one).
    next.set_rep(Frontier::Rep::kSparse);
    const DirectionHeuristic& h = director.heuristic();
    if (produced > h.min_pull_frontier &&
        static_cast<double>(produced) > n / h.alpha) {
      director.RecordConversion(Frontier::Rep::kSparse, Frontier::Rep::kDense);
      next.set_rep(Frontier::Rep::kDense);
    } else if (cur.rep() == Frontier::Rep::kDense) {
      director.RecordConversion(Frontier::Rep::kDense, Frontier::Rep::kSparse);
    }
    frontier_size = produced;
    swap(cur, next);
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.distances, dist.ToHost());
  if (report != nullptr) report->direction = director.stats();
  return result;
}

}  // namespace adgraph::engine
