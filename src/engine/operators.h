#ifndef ADGRAPH_ENGINE_OPERATORS_H_
#define ADGRAPH_ENGINE_OPERATORS_H_

#include <cstdint>

#include "core/device_graph.h"
#include "graph/types.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {

/// \brief The engine's generic data-parallel operators (DESIGN.md §2.11).
///
/// Gunrock-style decomposition: every frontier algorithm is a loop of
///
///   * **Advance** — expand the frontier over its out-edges (push) or let
///     candidate vertices scan their in-edges for an active neighbor
///     (pull), applying a per-edge functor;
///   * **Filter** — compact a predicate over the vertex set into a queue.
///
/// The push kernels replicate the seed BFS top-down codegen operation for
/// operation (shared-memory staging, one flush atomic per block), so an
/// algorithm whose functor issues the same per-edge instructions as its
/// hand-rolled predecessor produces bit-identical outputs on the
/// deterministic vgpu simulator — the golden-suite gate.
///
/// Functor concepts:
///
///   EdgeOp (push advance):
///     void LoadSource(Ctx&, const Lanes<vid_t>& u);
///         per-source setup after u's row is loaded (may be empty)
///     LaneMask Relax(Ctx&, u, const Lanes<eid_t>& e, const Lanes<vid_t>& v);
///         applies the edge update; returns the lanes whose v must enter
///         the output frontier (deduplicated by the op itself)
///     void OnEnqueue(Ctx&, u, v);
///         runs under the Relax mask before v is staged (e.g. parent store)
///
///   SourcePred (dense push advance): LaneMask operator()(Ctx&, u) —
///     whether vertex u expands this round.
///
///   PullOp (pull advance):
///     LaneMask Eligible(Ctx&, v) — should v look for an active neighbor?
///     LaneMask Admit(Ctx&, v, nbr) — does nbr activate v?
///     void OnAdmit(Ctx&, v, nbr) — state update when it does.
///
///   Pred (filter): LaneMask operator()(Ctx&, v).

/// Raw device view of a resident CSR (weights null when unweighted).
struct CsrView {
  vgpu::DevPtr<graph::eid_t> row;
  vgpu::DevPtr<graph::vid_t> col;
  vgpu::DevPtr<double> weights;
  uint32_t n = 0;
};

inline CsrView MakeView(const core::DeviceCsr& d) {
  CsrView v;
  v.row = d.row_offsets.ptr();
  v.col = d.col_indices.ptr();
  v.weights = d.has_weights() ? d.weights.ptr() : vgpu::DevPtr<double>{};
  v.n = d.num_vertices;
  return v;
}

/// How a push advance maps frontier entries to execution resources.
enum class LoadBalance {
  kAuto,             ///< warp-per-vertex when mean degree >= 2*warp width
  kThreadPerVertex,  ///< one thread per frontier entry (seed BFS codegen)
  kWarpPerVertex,    ///< one warp per entry; lanes stride the adjacency
};

/// Shared-memory staging queue capacity (entries per block); same value as
/// the seed BFS so the staged/overflow split — and therefore the output
/// queue order — is preserved.
inline constexpr uint32_t kStageCapacity = 2048;
/// Shared layout: [0] staging counter, [1] flush base, [2..] staged ids.
inline constexpr uint32_t kStageHeaderWords = 2;

inline uint32_t StageSharedBytes() {
  return (kStageCapacity + kStageHeaderWords) * sizeof(uint32_t);
}

namespace detail {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;
using vgpu::SmemPtr;

/// Stages v into shared memory, overflowing to the global output queue —
/// byte-for-byte the seed top-down enqueue path.
template <typename EdgeOp>
void StageEnqueue(Ctx& c, SmemPtr<vid_t> stage, SmemPtr<uint32_t> counter,
                  const Lanes<uint32_t>& zero_idx,
                  vgpu::DevPtr<vid_t> out_queue,
                  vgpu::DevPtr<uint32_t> out_count, const Lanes<vid_t>& u,
                  const Lanes<vid_t>& v, LaneMask fresh, EdgeOp& op) {
  c.If(fresh, [&](Ctx& c) {
    op.OnEnqueue(c, u, v);
    auto pos = c.SharedAtomicAdd(counter, zero_idx, c.Splat<uint32_t>(1));
    c.IfElse(
        c.Lt(pos, kStageCapacity),
        [&](Ctx& c) { c.SharedStore(stage, pos, v); },
        [&](Ctx& c) {
          // Staging overflow: write through to the global queue.
          auto gpos =
              c.AtomicAdd(out_count, zero_idx, c.Splat<uint32_t>(1));
          c.Store(out_queue, gpos, v);
        });
  });
}

// The staging prologue/epilogue around the per-source expansion contains
// block barriers (co_await), which cannot be factored into a helper
// coroutine — KernelTask is not awaitable — so the three push kernels
// below share it textually, exactly as the seed BFS wrote it.

}  // namespace detail

/// Push advance over a sparse (queue) frontier, one thread per entry.
/// Instruction-for-instruction the seed BFS TopDownKernel with the BFS
/// visit inlined as `op`.
template <typename EdgeOp>
vgpu::KernelTask PushAdvanceSparseKernel(vgpu::Ctx& c, CsrView g,
                                         vgpu::DevPtr<graph::vid_t> in_queue,
                                         uint32_t frontier_size,
                                         vgpu::DevPtr<graph::vid_t> out_queue,
                                         vgpu::DevPtr<uint32_t> out_count,
                                         EdgeOp op) {
  using detail::StageEnqueue;
  using vgpu::Ctx;
  using vgpu::LaneMask;
  using vgpu::Lanes;
  using vgpu::SmemPtr;
  using graph::eid_t;
  using graph::vid_t;

  SmemPtr<uint32_t> counter{0};
  SmemPtr<uint32_t> flush_base{sizeof(uint32_t)};
  SmemPtr<vid_t> stage{kStageHeaderWords * sizeof(uint32_t)};

  auto local = c.BlockThreadId();
  auto zero_idx = c.Splat<uint32_t>(0);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    c.SharedStore(counter, zero_idx, c.Splat<uint32_t>(0));
  });
  co_await c.Sync();

  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, frontier_size), [&](Ctx& c) {
    auto u = c.Load(in_queue, tid);
    auto begin = c.Load(g.row, u);
    auto end = c.Load(g.row, c.Add(u, 1u));
    op.LoadSource(c, u);
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(g.col, e);
      LaneMask fresh = op.Relax(c, u, e, v);
      StageEnqueue(c, stage, counter, zero_idx, out_queue, out_count, u, v,
                   fresh, op);
    });
  });
  co_await c.Sync();

  // Flush the staged entries: one global atomic for the whole block.
  auto staged_raw = c.SharedLoad(counter, zero_idx);
  auto staged = c.Min(staged_raw, kStageCapacity);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    auto base = c.AtomicAdd(out_count, zero_idx, staged);
    c.SharedStore(flush_base, zero_idx, base);
  });
  co_await c.Sync();
  auto base = c.SharedLoad(flush_base, zero_idx);
  auto cursor = local;
  auto block_dim = c.Splat(c.block_dim());
  c.While(
      [&](Ctx& c) { return c.Lt(cursor, staged); },
      [&](Ctx& c) {
        auto v = c.SharedLoad(stage, cursor);
        c.Store(out_queue, c.Add(base, cursor), v);
        c.Assign(&cursor, c.Add(cursor, block_dim));
      });
  co_return;
}

/// Push advance over a dense (flag) frontier: one thread per *vertex*,
/// expanding those that pass `pred` — constant launch shape, no queue read.
template <typename SourcePred, typename EdgeOp>
vgpu::KernelTask PushAdvanceDenseKernel(vgpu::Ctx& c, CsrView g,
                                        vgpu::DevPtr<graph::vid_t> out_queue,
                                        vgpu::DevPtr<uint32_t> out_count,
                                        SourcePred pred, EdgeOp op) {
  using detail::StageEnqueue;
  using vgpu::Ctx;
  using vgpu::LaneMask;
  using vgpu::Lanes;
  using vgpu::SmemPtr;
  using graph::eid_t;
  using graph::vid_t;

  SmemPtr<uint32_t> counter{0};
  SmemPtr<uint32_t> flush_base{sizeof(uint32_t)};
  SmemPtr<vid_t> stage{kStageHeaderWords * sizeof(uint32_t)};

  auto local = c.BlockThreadId();
  auto zero_idx = c.Splat<uint32_t>(0);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    c.SharedStore(counter, zero_idx, c.Splat<uint32_t>(0));
  });
  co_await c.Sync();

  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, g.n), [&](Ctx& c) {
    c.If(pred(c, u), [&](Ctx& c) {
      auto begin = c.Load(g.row, u);
      auto end = c.Load(g.row, c.Add(u, 1u));
      op.LoadSource(c, u);
      c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
        auto v = c.Load(g.col, e);
        LaneMask fresh = op.Relax(c, u, e, v);
        StageEnqueue(c, stage, counter, zero_idx, out_queue, out_count, u, v,
                     fresh, op);
      });
    });
  });
  co_await c.Sync();

  auto staged_raw = c.SharedLoad(counter, zero_idx);
  auto staged = c.Min(staged_raw, kStageCapacity);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    auto base = c.AtomicAdd(out_count, zero_idx, staged);
    c.SharedStore(flush_base, zero_idx, base);
  });
  co_await c.Sync();
  auto base = c.SharedLoad(flush_base, zero_idx);
  auto cursor = local;
  auto block_dim = c.Splat(c.block_dim());
  c.While(
      [&](Ctx& c) { return c.Lt(cursor, staged); },
      [&](Ctx& c) {
        auto v = c.SharedLoad(stage, cursor);
        c.Store(out_queue, c.Add(base, cursor), v);
        c.Assign(&cursor, c.Add(cursor, block_dim));
      });
  co_return;
}

/// Push advance with one *warp* per frontier entry: the lanes stride the
/// entry's adjacency cooperatively.  The load-balanced gather for
/// high-degree frontiers (hubs of a power-law graph), where
/// thread-per-vertex serializes whole adjacency lists in single lanes.
template <typename EdgeOp>
vgpu::KernelTask PushAdvanceWarpKernel(vgpu::Ctx& c, CsrView g,
                                       vgpu::DevPtr<graph::vid_t> in_queue,
                                       uint32_t frontier_size,
                                       vgpu::DevPtr<graph::vid_t> out_queue,
                                       vgpu::DevPtr<uint32_t> out_count,
                                       EdgeOp op) {
  using detail::StageEnqueue;
  using vgpu::Ctx;
  using vgpu::LaneMask;
  using vgpu::Lanes;
  using vgpu::SmemPtr;
  using graph::eid_t;
  using graph::vid_t;

  SmemPtr<uint32_t> counter{0};
  SmemPtr<uint32_t> flush_base{sizeof(uint32_t)};
  SmemPtr<vid_t> stage{kStageHeaderWords * sizeof(uint32_t)};

  auto local = c.BlockThreadId();
  auto zero_idx = c.Splat<uint32_t>(0);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    c.SharedStore(counter, zero_idx, c.Splat<uint32_t>(0));
  });
  co_await c.Sync();

  // Warp-uniform frontier index; the guard is uniform across the warp, so
  // plain host control flow (no divergence accounting) is correct.
  const uint32_t warp =
      c.block_id() * (c.block_dim() / c.width()) + c.warp_in_block();
  if (warp < frontier_size) {
    auto widx = c.Splat<uint32_t>(warp);
    auto u = c.Load(in_queue, widx);
    auto begin = c.Load(g.row, u);
    auto end = c.Load(g.row, c.Add(u, 1u));
    op.LoadSource(c, u);
    auto cursor = c.Add(begin, c.Cast<eid_t>(c.LaneId()));
    auto stride = c.Splat<eid_t>(c.width());
    c.While(
        [&](Ctx& c) { return c.Lt(cursor, end); },
        [&](Ctx& c) {
          auto v = c.Load(g.col, cursor);
          LaneMask fresh = op.Relax(c, u, cursor, v);
          StageEnqueue(c, stage, counter, zero_idx, out_queue, out_count, u,
                       v, fresh, op);
          c.Assign(&cursor, c.Add(cursor, stride));
        });
  }
  co_await c.Sync();

  auto staged_raw = c.SharedLoad(counter, zero_idx);
  auto staged = c.Min(staged_raw, kStageCapacity);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    auto base = c.AtomicAdd(out_count, zero_idx, staged);
    c.SharedStore(flush_base, zero_idx, base);
  });
  co_await c.Sync();
  auto base = c.SharedLoad(flush_base, zero_idx);
  auto cursor = local;
  auto block_dim = c.Splat(c.block_dim());
  c.While(
      [&](Ctx& c) { return c.Lt(cursor, staged); },
      [&](Ctx& c) {
        auto v = c.SharedLoad(stage, cursor);
        c.Store(out_queue, c.Add(base, cursor), v);
        c.Assign(&cursor, c.Add(cursor, block_dim));
      });
  co_return;
}

/// Pull (bottom-up) advance: every vertex passing `Eligible` scans its
/// adjacency for an admitting neighbor, early-exiting on the first hit;
/// newly admitted vertices are tallied into `out_count` with one warp
/// reduction + atomic.  Instruction-for-instruction the seed BFS
/// BottomUpKernel with the level test inlined as `op`.
template <typename PullOp>
vgpu::KernelTask PullAdvanceKernel(vgpu::Ctx& c, CsrView g,
                                   vgpu::DevPtr<uint32_t> out_count,
                                   PullOp op) {
  using vgpu::Ctx;
  using vgpu::LaneMask;
  using graph::eid_t;

  auto tid = c.GlobalThreadId();
  LaneMask found = 0;
  c.If(c.Lt(tid, g.n), [&](Ctx& c) {
    c.If(op.Eligible(c, tid), [&](Ctx& c) {
      auto cursor = c.Load(g.row, tid);
      auto end = c.Load(g.row, c.Add(tid, 1u));
      c.While(
          [&](Ctx& c) { return c.Lt(cursor, end) & ~found; },
          [&](Ctx& c) {
            auto v = c.Load(g.col, cursor);
            LaneMask hit = op.Admit(c, tid, v);
            c.If(hit, [&](Ctx& c) { op.OnAdmit(c, tid, v); });
            found |= hit;
            c.Assign(&cursor, c.Add(cursor, eid_t{1}));
          });
    });
  });
  // Tally admitted vertices: warp reduction + one atomic per warp.
  auto ones = c.Select(found, c.Splat<uint32_t>(1), c.Splat<uint32_t>(0));
  uint32_t sum = c.ReduceAdd(ones);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(out_count, c.Splat<uint32_t>(0), c.Splat(sum));
  });
  co_return;
}

/// Filter: compacts the vertices passing `pred` into `out_queue` with
/// thread-ordered atomic ticketing.  Instruction-for-instruction the seed
/// BFS LevelsToQueueKernel with the level test inlined as `pred`.
template <typename Pred>
vgpu::KernelTask FilterToQueueKernel(vgpu::Ctx& c, uint32_t n,
                                     vgpu::DevPtr<graph::vid_t> out_queue,
                                     vgpu::DevPtr<uint32_t> out_count,
                                     Pred pred) {
  using vgpu::Ctx;

  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, n), [&](Ctx& c) {
    c.If(pred(c, tid), [&](Ctx& c) {
      auto pos =
          c.AtomicAdd(out_count, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
      c.Store(out_queue, pos, tid);
    });
  });
  co_return;
}

/// Resolves kAuto from the graph's mean degree: warp-per-vertex pays off
/// when an average adjacency spans multiple warp-widths.
inline LoadBalance ResolveLoadBalance(LoadBalance lb, uint64_t num_edges,
                                      uint32_t num_vertices,
                                      uint32_t warp_width) {
  if (lb != LoadBalance::kAuto) return lb;
  if (num_vertices == 0) return LoadBalance::kThreadPerVertex;
  const double mean_degree = static_cast<double>(num_edges) / num_vertices;
  return mean_degree >= 2.0 * warp_width ? LoadBalance::kWarpPerVertex
                                         : LoadBalance::kThreadPerVertex;
}

}  // namespace adgraph::engine

#endif  // ADGRAPH_ENGINE_OPERATORS_H_
