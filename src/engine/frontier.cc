#include "engine/frontier.h"

#include <string>

#include "core/device_graph.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::engine {
namespace {

using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;

/// Compacts set flags into a queue.  Positions come from an atomic ticket,
/// which the simulator serves in thread order — reproducible.
KernelTask FlagsToQueueKernel(Ctx& c, DevPtr<uint32_t> flags,
                              DevPtr<vid_t> queue, DevPtr<uint32_t> count,
                              uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) {
    auto set = c.Load(flags, v);
    c.If(c.Eq(set, 1u), [&](Ctx& c) {
      auto pos =
          c.AtomicAdd(count, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
      c.Store(queue, pos, v);
    });
  });
  co_return;
}

/// Scatters queue entries into the flag array.
KernelTask QueueToFlagsKernel(Ctx& c, DevPtr<vid_t> queue,
                              DevPtr<uint32_t> flags, uint32_t size) {
  auto i = c.GlobalThreadId();
  c.If(c.Lt(i, size), [&](Ctx& c) {
    auto v = c.Load(queue, i);
    c.Store(flags, v, c.Splat<uint32_t>(1));
  });
  co_return;
}

KernelTask IotaQueueKernel(Ctx& c, DevPtr<vid_t> queue, uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) { c.Store(queue, v, v); });
  co_return;
}

}  // namespace

Result<Frontier> Frontier::Create(vgpu::Device* device, vid_t n) {
  if (n == 0) return Status::InvalidArgument("frontier over empty vertex set");
  Frontier f;
  f.device_ = device;
  f.n_ = n;
  ADGRAPH_ASSIGN_OR_RETURN(f.queue_, rt::DeviceBuffer<vid_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(f.flags_,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(f.count_,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));
  return f;
}

Status Frontier::InitSource(vid_t source, uint32_t block_size) {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  if (source >= n_) {
    return Status::InvalidArgument("frontier source " + std::to_string(source) +
                                   " out of range");
  }
  ADGRAPH_RETURN_NOT_OK(Clear(block_size));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<vid_t>(device_, queue_.ptr(), 0, source));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, flags_.ptr(), source, 1));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, count_.ptr(), 0, 1));
  size_ = 1;
  rep_ = Rep::kSparse;
  return Status::OK();
}

Status Frontier::InitAllVertices(uint32_t block_size) {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<uint32_t>(device_, flags_.ptr(), n_, 1));
  const uint32_t n = n_;
  auto queue = queue_.ptr();
  ADGRAPH_RETURN_NOT_OK(
      device_
          ->Launch("frontier_iota", rt::CoverThreads(n, block_size),
                   [&](Ctx& c) { return IotaQueueKernel(c, queue, n); })
          .status());
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, count_.ptr(), 0, n_));
  size_ = n_;
  rep_ = Rep::kDense;
  return Status::OK();
}

Status Frontier::InitFromHost(std::span<const vid_t> seeds,
                              uint32_t block_size) {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  for (vid_t v : seeds) {
    if (v >= n_) {
      return Status::InvalidArgument("frontier seed " + std::to_string(v) +
                                     " out of range");
    }
  }
  ADGRAPH_RETURN_NOT_OK(Clear(block_size));
  if (seeds.empty()) return Status::OK();
  const uint32_t size = static_cast<uint32_t>(seeds.size());
  ADGRAPH_RETURN_NOT_OK(queue_.Upload(seeds.data(), size));
  auto queue = queue_.ptr();
  auto flags = flags_.ptr();
  ADGRAPH_RETURN_NOT_OK(
      device_
          ->Launch("frontier_seed_scatter", rt::CoverThreads(size, block_size),
                   [&](Ctx& c) {
                     return QueueToFlagsKernel(c, queue, flags, size);
                   })
          .status());
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, count_.ptr(), 0, size));
  size_ = size;
  rep_ = Rep::kSparse;
  return Status::OK();
}

Status Frontier::Clear(uint32_t block_size) {
  (void)block_size;
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<uint32_t>(device_, flags_.ptr(), n_, 0));
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, count_.ptr(), 0, 0));
  size_ = 0;
  rep_ = Rep::kSparse;
  return Status::OK();
}

Status Frontier::EnsureSparse(uint32_t block_size) {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  if (rep_ == Rep::kSparse) return Status::OK();
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::SetElement<uint32_t>(device_, count_.ptr(), 0, 0));
  const uint32_t n = n_;
  auto flags = flags_.ptr();
  auto queue = queue_.ptr();
  auto count = count_.ptr();
  ADGRAPH_RETURN_NOT_OK(
      device_
          ->Launch("frontier_flags_to_queue", rt::CoverThreads(n, block_size),
                   [&](Ctx& c) {
                     return FlagsToQueueKernel(c, flags, queue, count, n);
                   })
          .status());
  ADGRAPH_RETURN_NOT_OK(RefreshCount());
  rep_ = Rep::kSparse;
  return Status::OK();
}

Status Frontier::EnsureDense(uint32_t block_size) {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  if (rep_ == Rep::kDense) return Status::OK();
  // The flags are maintained alongside the queue by every producer
  // (advance ops dedup through them), so densifying is a rescatter: clear
  // then replay the queue.
  ADGRAPH_RETURN_NOT_OK(
      core::primitives::Fill<uint32_t>(device_, flags_.ptr(), n_, 0));
  const uint32_t size = size_;
  if (size > 0) {
    auto queue = queue_.ptr();
    auto flags = flags_.ptr();
    ADGRAPH_RETURN_NOT_OK(
        device_
            ->Launch("frontier_queue_to_flags",
                     rt::CoverThreads(size, block_size),
                     [&](Ctx& c) {
                       return QueueToFlagsKernel(c, queue, flags, size);
                     })
            .status());
  }
  rep_ = Rep::kDense;
  return Status::OK();
}

Status Frontier::RefreshCount() {
  if (device_ == nullptr) {
    return Status::FailedPrecondition("frontier not created");
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      size_, core::primitives::GetElement<uint32_t>(device_, count_.ptr(), 0));
  return Status::OK();
}

}  // namespace adgraph::engine
