#include "part/part_bfs.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/bfs.h"
#include "core/bfs_kernels.h"
#include "core/device_graph.h"
#include "runtime/runtime.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::part {
namespace {

using core::detail::BfsDeviceState;
using core::detail::StageSharedBytes;
using core::kUnreachedLevel;
using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;
using vgpu::SmemPtr;

/// Shared staging mirror of core::detail::TopDownKernel's layout (same
/// capacity, same header) — see core/bfs.cc.
constexpr uint32_t kStageCapacity = 2048;
constexpr uint32_t kStageHeaderWords = 2;

/// Fused top-down expansion + owner routing: the single per-round compute
/// launch of each shard.  Identical discovery semantics to the
/// single-device TopDownKernel (same CAS, same level assignment — that is
/// what keeps partitioned levels byte-identical); the only difference is
/// where a winner is appended: owned ids ([lo, hi)) go through the
/// shared-memory staging queue into the local next frontier, remote ids
/// append to the remote queue for host routing.  Fusing the routing into
/// the expansion keeps the per-round launch count (and the modeled fixed
/// launch overhead with it) at parity with the single-device driver, which
/// is what lets strong scaling show through on the Table 4 proxies.
KernelTask ExpandKernel(Ctx& c, BfsDeviceState s, uint32_t frontier_size,
                        uint32_t level, vid_t lo, vid_t hi,
                        DevPtr<vid_t> remote, DevPtr<uint32_t> remote_size) {
  SmemPtr<uint32_t> counter{0};
  SmemPtr<uint32_t> flush_base{sizeof(uint32_t)};
  SmemPtr<vid_t> stage{kStageHeaderWords * sizeof(uint32_t)};

  auto local = c.BlockThreadId();
  auto zero_idx = c.Splat<uint32_t>(0);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    c.SharedStore(counter, zero_idx, c.Splat<uint32_t>(0));
  });
  co_await c.Sync();

  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, frontier_size), [&](Ctx& c) {
    auto u = c.Load(s.frontier, tid);
    auto begin = c.Load(s.row, u);
    auto end = c.Load(s.row, c.Add(u, 1u));
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(s.col, e);
      auto old = c.AtomicCas(s.levels, v, c.Splat(kUnreachedLevel),
                             c.Splat(level));
      c.If(c.Eq(old, kUnreachedLevel), [&](Ctx& c) {
        c.IfElse(
            c.Ge(v, lo) & c.Lt(v, hi),
            [&](Ctx& c) {
              auto pos =
                  c.SharedAtomicAdd(counter, zero_idx, c.Splat<uint32_t>(1));
              c.IfElse(
                  c.Lt(pos, kStageCapacity),
                  [&](Ctx& c) { c.SharedStore(stage, pos, v); },
                  [&](Ctx& c) {
                    auto gpos = c.AtomicAdd(s.next_size, zero_idx,
                                            c.Splat<uint32_t>(1));
                    c.Store(s.next_frontier, gpos, v);
                  });
            },
            [&](Ctx& c) {
              auto rpos =
                  c.AtomicAdd(remote_size, zero_idx, c.Splat<uint32_t>(1));
              c.Store(remote, rpos, v);
            });
      });
    });
  });
  co_await c.Sync();

  // Flush the staged owned entries: one global atomic per block.
  auto staged_raw = c.SharedLoad(counter, zero_idx);
  auto staged = c.Min(staged_raw, kStageCapacity);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    auto base = c.AtomicAdd(s.next_size, zero_idx, staged);
    c.SharedStore(flush_base, zero_idx, base);
  });
  co_await c.Sync();
  auto base = c.SharedLoad(flush_base, zero_idx);
  auto cursor = local;
  auto block_dim = c.Splat(c.block_dim());
  c.While(
      [&](Ctx& c) { return c.Lt(cursor, staged); },
      [&](Ctx& c) {
        auto v = c.SharedLoad(stage, cursor);
        c.Store(s.next_frontier, c.Add(base, cursor), v);
        c.Assign(&cursor, c.Add(cursor, block_dim));
      });
  co_return;
}

/// Counter-slot layout in the per-device `counters` buffer.
constexpr uint64_t kOwnedSize = 0;
constexpr uint64_t kRemoteSize = 1;
constexpr uint64_t kNumCounters = 2;

/// Everything one device contributes to the BSP loop.
struct ShardState {
  core::DeviceCsr csr;                      ///< shard adjacency, global ids
  rt::DeviceBuffer<uint32_t> levels;        ///< full [0, n) — CAS dedup hint
                                            ///< off-shard, authoritative on
                                            ///< the owned range
  rt::DeviceBuffer<vid_t> frontier;
  rt::DeviceBuffer<vid_t> owned_queue;
  rt::DeviceBuffer<vid_t> remote_queue;
  rt::DeviceBuffer<uint32_t> counters;      ///< kOwnedSize / kRemoteSize
  uint32_t frontier_size = 0;
};

}  // namespace

Result<PartBfsResult> RunPartitionedBfs(PartitionedEngine* engine,
                                        const graph::CsrGraph& g,
                                        const PartitionPlan& plan,
                                        const PartBfsOptions& options) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("BFS on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("BFS source " +
                                   std::to_string(options.source) +
                                   " out of range");
  }
  const uint32_t P = engine->num_devices();
  if (plan.num_shards() != P) {
    return Status::InvalidArgument(
        "partition plan is " + std::to_string(plan.num_shards()) +
        "-way but the engine has " + std::to_string(P) + " devices");
  }
  if (plan.boundaries.back() != n) {
    return Status::InvalidArgument(
        "partition plan does not cover this graph's vertex range");
  }

  vgpu::Interconnect& ic = engine->interconnect();
  trace::Span algo_span(ic.trace_track(), "algo:part_bfs", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("num_devices", static_cast<uint64_t>(P));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  const uint64_t ic_bytes_before = ic.total_bytes();

  // ---- Per-device setup (graph staging excluded from timing, as the
  // single-device drivers exclude upload). -------------------------------
  std::vector<ShardState> shards(P);
  for (uint32_t d = 0; d < P; ++d) {
    vgpu::Device* dev = engine->device(d);
    ShardState& s = shards[d];
    ADGRAPH_ASSIGN_OR_RETURN(graph::CsrGraph shard_graph,
                             BuildShardGraph(g, plan, d));
    ADGRAPH_ASSIGN_OR_RETURN(s.csr, core::DeviceCsr::Upload(dev, shard_graph));
    ADGRAPH_ASSIGN_OR_RETURN(s.levels,
                             rt::DeviceBuffer<uint32_t>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(s.frontier,
                             rt::DeviceBuffer<vid_t>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(s.owned_queue,
                             rt::DeviceBuffer<vid_t>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(s.remote_queue,
                             rt::DeviceBuffer<vid_t>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(
        s.counters, rt::DeviceBuffer<uint32_t>::Create(dev, kNumCounters));
    ADGRAPH_RETURN_NOT_OK(core::primitives::Fill<uint32_t>(
        dev, s.levels.ptr(), n, kUnreachedLevel));
    // Every replica knows the source's level: no device ever "discovers"
    // the source, so it is never re-enqueued or shipped.
    ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
        dev, s.levels.ptr(), options.source, 0));
  }
  {
    // The source's owner seeds its frontier.
    const uint32_t owner = plan.OwnerOf(options.source);
    ShardState& s = shards[owner];
    ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
        engine->device(owner), s.frontier.ptr(), 0, options.source));
    s.frontier_size = 1;
  }

  PartBfsResult result;
  // Reset the modeled clocks so round deltas start from zero regardless of
  // earlier work on these devices.
  std::vector<double> clock_base = engine->ElapsedSnapshot();

  uint32_t level = 1;
  uint64_t total_frontier = 1;
  std::vector<std::vector<std::vector<vid_t>>> outboxes(
      P, std::vector<std::vector<vid_t>>(P));
  std::vector<std::vector<vid_t>> winners(P);
  const uint32_t zeros[kNumCounters] = {0, 0};

  while (total_frontier > 0) {
    trace::Span round_span(ic.trace_track(), "part_bfs.round", "phase");
    round_span.ArgNum("level", static_cast<uint64_t>(level));
    round_span.ArgNum("frontier", total_frontier);

    // --- Local expansion + owner routing, one fused launch per device
    // (modeled as concurrent across devices).
    for (uint32_t d = 0; d < P; ++d) {
      ShardState& s = shards[d];
      vgpu::Device* dev = engine->device(d);
      ADGRAPH_RETURN_NOT_OK(s.counters.Upload(zeros, kNumCounters));
      if (s.frontier_size == 0) continue;

      BfsDeviceState state;
      state.row = s.csr.row_offsets.ptr();
      state.col = s.csr.col_indices.ptr();
      state.levels = s.levels.ptr();
      state.parents = DevPtr<vid_t>{};
      state.frontier = s.frontier.ptr();
      state.next_frontier = s.owned_queue.ptr();
      state.next_size = s.counters.ptr() + kOwnedSize;
      const uint32_t frontier_size = s.frontier_size;
      ADGRAPH_RETURN_NOT_OK(
          dev->Launch("part_bfs_expand",
                      rt::CoverThreads(frontier_size, options.block_size,
                                       StageSharedBytes()),
                      [&](Ctx& c) {
                        return ExpandKernel(c, state, frontier_size, level,
                                            plan.lo(d), plan.hi(d),
                                            s.remote_queue.ptr(),
                                            s.counters.ptr() + kRemoteSize);
                      })
              .status());
    }

    // --- Host routing: download each device's remote queue and bucket the
    // vertices by owner.
    for (uint32_t src = 0; src < P; ++src) {
      ShardState& s = shards[src];
      vgpu::Device* dev = engine->device(src);
      for (auto& bucket : outboxes[src]) bucket.clear();
      if (s.frontier_size == 0) continue;
      ADGRAPH_ASSIGN_OR_RETURN(
          uint32_t remote_count,
          core::primitives::GetElement<uint32_t>(dev, s.counters.ptr(),
                                                 kRemoteSize));
      if (remote_count == 0) continue;
      std::vector<vid_t> remote(remote_count);
      ADGRAPH_RETURN_NOT_OK(s.remote_queue.Download(remote.data(),
                                                    remote_count));
      for (vid_t v : remote) outboxes[src][plan.OwnerOf(v)].push_back(v);
    }

    // --- Exchange: ship each (src, dst) message over the interconnect
    // (byte accounting per link) and apply the arrivals on the owner during
    // routing — first arrival (or an earlier local discovery) wins, exactly
    // the CAS-ingest order a device kernel would resolve, applied in fixed
    // ascending (src, payload) order so the owner's frontier append order
    // is deterministic.  The claim writes ride the host-routed exchange, so
    // their cost is part of the modeled exchange phase (EndRound latency +
    // busiest-link bytes), not device compute — the BSP round stays at one
    // kernel launch per device, same as the single-device driver.
    for (uint32_t dst = 0; dst < P; ++dst) {
      ShardState& t = shards[dst];
      vgpu::Device* dst_dev = engine->device(dst);
      winners[dst].clear();
      for (uint32_t src = 0; src < P; ++src) {
        const std::vector<vid_t>& payload = outboxes[src][dst];
        if (payload.empty()) continue;
        ic.AccountTransfer(src, dst, payload.size() * sizeof(vid_t));
        for (vid_t v : payload) {
          ADGRAPH_ASSIGN_OR_RETURN(
              uint32_t current,
              core::primitives::GetElement<uint32_t>(dst_dev, t.levels.ptr(),
                                                     v));
          if (current != kUnreachedLevel) continue;  // duplicate arrival
          ADGRAPH_RETURN_NOT_OK(core::primitives::SetElement<uint32_t>(
              dst_dev, t.levels.ptr(), v, level));
          winners[dst].push_back(v);
        }
      }
    }

    // --- Close the round: new frontiers (locally discovered owned vertices
    // + ingested arrivals), modeled round time.
    total_frontier = 0;
    for (uint32_t d = 0; d < P; ++d) {
      ShardState& s = shards[d];
      ADGRAPH_ASSIGN_OR_RETURN(
          uint32_t owned,
          core::primitives::GetElement<uint32_t>(engine->device(d),
                                                 s.counters.ptr(), kOwnedSize));
      std::swap(s.frontier, s.owned_queue);
      if (!winners[d].empty()) {
        ADGRAPH_RETURN_NOT_OK(s.frontier.Upload(
            winners[d].data(), winners[d].size(), /*dst_offset=*/owned));
      }
      s.frontier_size = owned + static_cast<uint32_t>(winners[d].size());
      total_frontier += s.frontier_size;
    }

    double round_compute = 0;
    std::vector<double> clock_now = engine->ElapsedSnapshot();
    for (uint32_t d = 0; d < P; ++d) {
      round_compute = std::max(round_compute, clock_now[d] - clock_base[d]);
    }
    clock_base = std::move(clock_now);

    vgpu::Interconnect::RoundStats exchange =
        ic.EndRound("bfs:level=" + std::to_string(level));
    result.compute_ms += round_compute;
    result.exchange_ms += exchange.modeled_ms;
    result.time_ms += round_compute + exchange.modeled_ms;
    result.round_exchange_bytes.push_back(exchange.bytes);
    result.rounds += 1;
    if (total_frontier > 0) result.depth = level;
    ++level;
  }

  result.exchange_bytes = ic.total_bytes() - ic_bytes_before;

  // --- Owner gather: each shard's owned range is authoritative.
  result.levels.assign(n, kUnreachedLevel);
  for (uint32_t d = 0; d < P; ++d) {
    const vid_t lo = plan.lo(d);
    const vid_t count = plan.shard_size(d);
    if (count == 0) continue;
    ADGRAPH_RETURN_NOT_OK(
        shards[d].levels.Download(result.levels.data() + lo, count, lo));
  }
  for (uint32_t lvl : result.levels) {
    if (lvl != kUnreachedLevel) result.vertices_visited += 1;
  }
  algo_span.ArgNum("depth", static_cast<uint64_t>(result.depth));
  algo_span.ArgNum("rounds", static_cast<uint64_t>(result.rounds));
  algo_span.ArgNum("exchange_bytes", result.exchange_bytes);
  return result;
}

}  // namespace adgraph::part
