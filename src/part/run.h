#ifndef ADGRAPH_PART_RUN_H_
#define ADGRAPH_PART_RUN_H_

#include <cstdint>

#include "core/api.h"
#include "graph/csr.h"
#include "part/engine.h"
#include "part/partition.h"
#include "util/status.h"

namespace adgraph::part {

/// Outcome of a uniform partitioned run: the single-device-shaped payload
/// (so callers consume it exactly like a `core::Run` result) plus the
/// interconnect accounting only a multi-device run has.
struct PartRunResult {
  core::AlgoResult payload;
  uint64_t exchange_bytes = 0;   ///< peer bytes moved over the interconnect
  uint64_t exchange_rounds = 0;  ///< bulk-synchronous exchange rounds
  double exchange_ms = 0;        ///< modeled interconnect time
  double time_ms = 0;            ///< modeled end-to-end gang time
};

/// \brief The partitioned mirror of `core::Run`: dispatches `spec.algo`
/// with the matching `params` alternative over the gang.
///
/// Only the algorithms with a partitioned formulation are supported — BFS
/// (levels only, no parents) and PageRank; anything else fails with
/// kInvalidArgument.  kFailedPrecondition when `spec.algo` and the params
/// alternative disagree would lie — that is a malformed request, so it is
/// kInvalidArgument too, matching core::Run.
Result<PartRunResult> RunPartitioned(PartitionedEngine* engine,
                                     const graph::CsrGraph& g,
                                     const PartitionPlan& plan,
                                     const core::AlgoSpec& spec,
                                     const core::Params& params);

}  // namespace adgraph::part

#endif  // ADGRAPH_PART_RUN_H_
