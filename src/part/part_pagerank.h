#ifndef ADGRAPH_PART_PART_PAGERANK_H_
#define ADGRAPH_PART_PART_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "part/engine.h"
#include "part/partition.h"
#include "util/status.h"

namespace adgraph::part {

struct PartPageRankOptions {
  double alpha = 0.85;       ///< damping factor
  uint32_t max_iterations = 50;
  double tolerance = 1e-7;   ///< L1 convergence threshold (0 = run all)
  uint32_t block_size = 256;
};

/// Outcome of a partitioned PageRank.  Ranks match the single-device pull
/// formulation to floating-point re-association error (the reduce-scatter
/// sums shard contributions in a different order than one big SpMV; the
/// property tests bound the difference at 1e-10).
struct PartPageRankResult {
  std::vector<double> ranks;
  uint32_t iterations = 0;
  double l1_delta = 0;
  double time_ms = 0;            ///< sum over iterations of
                                 ///< max-device-compute + exchange
  double compute_ms = 0;
  double exchange_ms = 0;
  uint64_t exchange_bytes = 0;   ///< boundary rank contributions moved
};

/// \brief Pull-SpMV PageRank over a vertex-range-partitioned graph.
///
/// Each device holds the pull-transpose of its shard (edges from owned
/// sources only) and a full replica of the rank vector.  Per iteration:
/// local dangling partial sums (combined on the host, P*(P-1) scalar
/// hops), one local SpMV producing this shard's contribution to every
/// vertex, a reduce-scatter of boundary contributions to owners, the
/// damping update on owned ranges, and an all-gather of the updated
/// segments — all boundary traffic billed to the engine's interconnect.
Result<PartPageRankResult> RunPartitionedPageRank(
    PartitionedEngine* engine, const graph::CsrGraph& g,
    const PartitionPlan& plan, const PartPageRankOptions& options);

}  // namespace adgraph::part

#endif  // ADGRAPH_PART_PART_PAGERANK_H_
