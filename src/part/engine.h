#ifndef ADGRAPH_PART_ENGINE_H_
#define ADGRAPH_PART_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "part/partition.h"
#include "util/status.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"
#include "vgpu/interconnect.h"

namespace adgraph::part {

/// \brief A pool of N identical simulated devices plus the interconnect
/// that joins them — the execution substrate of the partitioned drivers
/// (DESIGN.md §2.7).
///
/// All devices are driven by ONE host thread in bulk-synchronous rounds;
/// "parallelism" across devices is modeled, not executed: a round's time is
/// the maximum per-device kernel time plus the interconnect's exchange
/// time.  Like vgpu::Device, an engine is single-threaded.
class PartitionedEngine {
 public:
  struct Options {
    uint32_t num_devices = 2;
    vgpu::Device::Options device_options;
    /// Link model joining the pool (NVLink-class by default — the
    /// multi-GPU topology the paper's scale-out discussion assumes).
    vgpu::InterconnectConfig interconnect = vgpu::NvlinkPreset();
    PartitionStrategy strategy = PartitionStrategy::kUniform;
  };

  /// Validates the arch (vgpu::ValidateArchConfig) and interconnect
  /// configs, then constructs the pool.
  static Result<std::unique_ptr<PartitionedEngine>> Create(
      const vgpu::ArchConfig& arch, Options options);

  PartitionedEngine(const PartitionedEngine&) = delete;
  PartitionedEngine& operator=(const PartitionedEngine&) = delete;

  uint32_t num_devices() const {
    return static_cast<uint32_t>(devices_.size());
  }
  vgpu::Device* device(uint32_t i) { return devices_[i].get(); }
  vgpu::Interconnect& interconnect() { return *interconnect_; }
  const vgpu::Interconnect& interconnect() const { return *interconnect_; }
  const Options& options() const { return options_; }

  /// Sum of elapsed_ms over the pool minus nothing — snapshot of each
  /// device's modeled kernel clock, used by the drivers to compute a
  /// round's max-over-devices compute time.
  std::vector<double> ElapsedSnapshot() const;

 private:
  PartitionedEngine(Options options,
                    std::vector<std::unique_ptr<vgpu::Device>> devices,
                    std::unique_ptr<vgpu::Interconnect> interconnect)
      : options_(std::move(options)),
        devices_(std::move(devices)),
        interconnect_(std::move(interconnect)) {}

  Options options_;
  std::vector<std::unique_ptr<vgpu::Device>> devices_;
  std::unique_ptr<vgpu::Interconnect> interconnect_;
};

}  // namespace adgraph::part

#endif  // ADGRAPH_PART_ENGINE_H_
