#ifndef ADGRAPH_PART_PARTITION_H_
#define ADGRAPH_PART_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace adgraph::part {

/// How MakePartitionPlan places the shard boundaries.
enum class PartitionStrategy : uint8_t {
  /// Equal vertex counts per shard (n / P each).
  kUniform = 0,
  /// Equal *edge* counts per shard: boundaries split the cumulative degree
  /// (row-offset) curve at m / P steps, the standard 1-D load-balancing fix
  /// for power-law degree skew.
  kDegreeBalanced,
};

/// Stable lower-case name ("uniform" / "degree-balanced").
const char* PartitionStrategyName(PartitionStrategy strategy);

/// \brief A 1-D vertex-range partition of [0, n) into P contiguous shards.
///
/// Shard s owns the half-open vertex range [boundaries[s], boundaries[s+1]).
/// Empty shards (equal consecutive boundaries) are legal — a plan for more
/// devices than vertices simply leaves trailing shards empty.
struct PartitionPlan {
  /// P+1 non-decreasing values; front() == 0, back() == num_vertices.
  std::vector<graph::vid_t> boundaries;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(boundaries.size()) - 1;
  }
  graph::vid_t lo(uint32_t shard) const { return boundaries[shard]; }
  graph::vid_t hi(uint32_t shard) const { return boundaries[shard + 1]; }
  graph::vid_t shard_size(uint32_t shard) const {
    return hi(shard) - lo(shard);
  }

  /// The shard owning vertex `v` (v must be < back()).
  uint32_t OwnerOf(graph::vid_t v) const;
};

/// Builds a P-way plan over `g`.  Fails on num_shards == 0.
Result<PartitionPlan> MakePartitionPlan(const graph::CsrGraph& g,
                                        uint32_t num_shards,
                                        PartitionStrategy strategy);

/// \brief Byte-bounded vertex-range plan — the shard-count-free dual of
/// MakePartitionPlan used by the out-of-core streamer (DESIGN.md §2.13).
///
/// Walks the row-offset curve greedily, closing a shard as soon as adding
/// the next vertex would push its device footprint — a rebased row slice
/// ((rows+1) * sizeof(eid_t)) plus columns (and weights when `weighted`) —
/// past `shard_bytes`.  Every shard holds at least one vertex, so a single
/// hub row larger than the budget still gets a (single-row, oversized)
/// shard rather than failing; callers size their staging buffers from the
/// resulting maximum, not from `shard_bytes`.  Takes the offsets as a span
/// so a memory-mapped CSR can be planned without copying its arrays.
Result<PartitionPlan> MakeByteBoundedPlan(
    std::span<const graph::eid_t> row_offsets, bool weighted,
    uint64_t shard_bytes);

/// Device bytes of the vertex range [lo, hi) staged as a shard: rebased
/// rows, columns, optional weights.  The unit MakeByteBoundedPlan bounds.
uint64_t ShardDeviceBytes(std::span<const graph::eid_t> row_offsets,
                          graph::vid_t lo, graph::vid_t hi, bool weighted);

/// \brief Materializes one shard's graph.
///
/// The shard keeps the *full* vertex id space [0, n) — column indices stay
/// global and the single-device kernels run unchanged — but adjacency is
/// copied only for owned rows; every non-owned row is empty.  Weights, when
/// present, follow their edges.
Result<graph::CsrGraph> BuildShardGraph(const graph::CsrGraph& g,
                                        const PartitionPlan& plan,
                                        uint32_t shard);

}  // namespace adgraph::part

#endif  // ADGRAPH_PART_PARTITION_H_
