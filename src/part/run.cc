#include "part/run.h"

#include <string>
#include <utility>
#include <variant>

#include "part/part_bfs.h"
#include "part/part_pagerank.h"

namespace adgraph::part {

Result<PartRunResult> RunPartitioned(PartitionedEngine* engine,
                                     const graph::CsrGraph& g,
                                     const PartitionPlan& plan,
                                     const core::AlgoSpec& spec,
                                     const core::Params& params) {
  if (static_cast<size_t>(spec.algo) != params.index()) {
    return Status::InvalidArgument(
        "algorithm/params mismatch: spec selects " +
        std::string(core::AlgorithmName(spec.algo)) + " but params carry " +
        std::string(
            core::AlgorithmName(static_cast<core::Algo>(params.index()))) +
        " options");
  }

  switch (spec.algo) {
    case core::Algo::kBfs: {
      const auto& o = std::get<core::BfsOptions>(params);
      if (o.compute_parents) {
        return Status::InvalidArgument(
            "partitioned bfs does not produce parents (partitioned "
            "traversal reports levels only)");
      }
      PartBfsOptions part_options;
      part_options.source = o.source;
      part_options.block_size = o.block_size;
      ADGRAPH_ASSIGN_OR_RETURN(
          PartBfsResult r, RunPartitionedBfs(engine, g, plan, part_options));
      PartRunResult out;
      out.exchange_bytes = r.exchange_bytes;
      out.exchange_rounds = r.rounds;
      out.exchange_ms = r.exchange_ms;
      out.time_ms = r.time_ms;
      core::BfsResult payload;
      payload.levels = std::move(r.levels);
      payload.depth = r.depth;
      payload.vertices_visited = r.vertices_visited;
      payload.top_down_iterations = r.rounds;
      payload.time_ms = r.time_ms;
      out.payload = core::AlgoResult(std::move(payload));
      return out;
    }
    case core::Algo::kPageRank: {
      const auto& o = std::get<core::PageRankOptions>(params);
      PartPageRankOptions part_options;
      part_options.alpha = o.alpha;
      part_options.max_iterations = o.max_iterations;
      part_options.tolerance = o.tolerance;
      part_options.block_size = o.block_size;
      ADGRAPH_ASSIGN_OR_RETURN(
          PartPageRankResult r,
          RunPartitionedPageRank(engine, g, plan, part_options));
      PartRunResult out;
      out.exchange_bytes = r.exchange_bytes;
      out.exchange_rounds = r.iterations;
      out.exchange_ms = r.exchange_ms;
      out.time_ms = r.time_ms;
      core::PageRankResult payload;
      payload.ranks = std::move(r.ranks);
      payload.iterations = r.iterations;
      payload.l1_delta = r.l1_delta;
      payload.time_ms = r.time_ms;
      out.payload = core::AlgoResult(std::move(payload));
      return out;
    }
    default:
      return Status::InvalidArgument(
          "no partitioned formulation of " +
          std::string(core::AlgorithmName(spec.algo)) +
          " (gang execution supports bfs and pagerank)");
  }
}

}  // namespace adgraph::part
