#include "part/partition.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace adgraph::part {

using graph::eid_t;
using graph::vid_t;

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kUniform:
      return "uniform";
    case PartitionStrategy::kDegreeBalanced:
      return "degree-balanced";
  }
  return "unknown";
}

uint32_t PartitionPlan::OwnerOf(graph::vid_t v) const {
  ADGRAPH_CHECK(!boundaries.empty() && v < boundaries.back())
      << "vertex outside the partitioned range";
  // First boundary strictly greater than v, among boundaries[1..P], is the
  // owner's upper edge.  Empty shards have no (lo <= v < hi) range, so no
  // vertex ever maps to them.
  auto it = std::upper_bound(boundaries.begin() + 1, boundaries.end(), v);
  return static_cast<uint32_t>(it - (boundaries.begin() + 1));
}

Result<PartitionPlan> MakePartitionPlan(const graph::CsrGraph& g,
                                        uint32_t num_shards,
                                        PartitionStrategy strategy) {
  if (num_shards == 0) {
    return Status::InvalidArgument("partition into zero shards");
  }
  const vid_t n = g.num_vertices();
  PartitionPlan plan;
  plan.boundaries.assign(num_shards + 1, 0);
  plan.boundaries[num_shards] = n;

  switch (strategy) {
    case PartitionStrategy::kUniform:
      for (uint32_t s = 1; s < num_shards; ++s) {
        plan.boundaries[s] = static_cast<vid_t>(
            static_cast<uint64_t>(n) * s / num_shards);
      }
      break;
    case PartitionStrategy::kDegreeBalanced: {
      const std::vector<eid_t>& row = g.row_offsets();
      const eid_t m = g.num_edges();
      vid_t cursor = 0;
      for (uint32_t s = 1; s < num_shards; ++s) {
        const eid_t target = m * s / num_shards;
        // row is non-decreasing; the first vertex whose prefix degree
        // reaches the target closes shard s-1.  Searching from `cursor`
        // keeps the boundaries non-decreasing by construction.
        auto it = std::lower_bound(row.begin() + cursor, row.end(), target);
        plan.boundaries[s] =
            std::min(n, static_cast<vid_t>(it - row.begin()));
        cursor = plan.boundaries[s];
      }
      break;
    }
  }
  return plan;
}

uint64_t ShardDeviceBytes(std::span<const graph::eid_t> row_offsets,
                          graph::vid_t lo, graph::vid_t hi, bool weighted) {
  const uint64_t rows = static_cast<uint64_t>(hi - lo) + 1;
  const uint64_t edges = row_offsets[hi] - row_offsets[lo];
  return rows * sizeof(eid_t) + edges * sizeof(vid_t) +
         (weighted ? edges * sizeof(graph::weight_t) : 0);
}

Result<PartitionPlan> MakeByteBoundedPlan(
    std::span<const graph::eid_t> row_offsets, bool weighted,
    uint64_t shard_bytes) {
  if (row_offsets.empty()) {
    return Status::InvalidArgument("row_offsets must have n+1 entries");
  }
  if (shard_bytes == 0) {
    return Status::InvalidArgument("shard byte budget must be positive");
  }
  const vid_t n = static_cast<vid_t>(row_offsets.size() - 1);
  const uint64_t edge_bytes =
      sizeof(vid_t) + (weighted ? sizeof(graph::weight_t) : 0);
  PartitionPlan plan;
  plan.boundaries.push_back(0);
  vid_t lo = 0;
  while (lo < n) {
    // Grow [lo, hi) while the footprint fits; always take at least one row.
    vid_t hi = lo + 1;
    uint64_t bytes = 2 * sizeof(eid_t) +
                     (row_offsets[hi] - row_offsets[lo]) * edge_bytes;
    while (hi < n) {
      const uint64_t next = bytes + sizeof(eid_t) +
                            (row_offsets[hi + 1] - row_offsets[hi]) *
                                edge_bytes;
      if (next > shard_bytes) break;
      bytes = next;
      ++hi;
    }
    plan.boundaries.push_back(hi);
    lo = hi;
  }
  if (n == 0) plan.boundaries.push_back(0);
  return plan;
}

Result<graph::CsrGraph> BuildShardGraph(const graph::CsrGraph& g,
                                        const PartitionPlan& plan,
                                        uint32_t shard) {
  if (shard >= plan.num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range for a " +
                                   std::to_string(plan.num_shards()) +
                                   "-way plan");
  }
  if (plan.boundaries.back() != g.num_vertices()) {
    return Status::InvalidArgument(
        "partition plan does not cover this graph's vertex range");
  }
  const vid_t n = g.num_vertices();
  const vid_t lo = plan.lo(shard);
  const vid_t hi = plan.hi(shard);
  const std::vector<eid_t>& row = g.row_offsets();
  const eid_t base = row[lo];
  const eid_t owned_edges = row[hi] - base;

  std::vector<eid_t> shard_row(static_cast<size_t>(n) + 1, 0);
  for (vid_t v = lo; v <= hi; ++v) shard_row[v] = row[v] - base;
  for (vid_t v = hi + 1; v <= n; ++v) shard_row[v] = owned_edges;

  const std::vector<vid_t>& col = g.col_indices();
  std::vector<vid_t> shard_col(col.begin() + base,
                               col.begin() + (base + owned_edges));
  std::vector<graph::weight_t> shard_weights;
  if (g.has_weights()) {
    shard_weights.assign(g.weights().begin() + base,
                         g.weights().begin() + (base + owned_edges));
  }
  return graph::CsrGraph::FromArrays(n, std::move(shard_row),
                                     std::move(shard_col),
                                     std::move(shard_weights));
}

}  // namespace adgraph::part
