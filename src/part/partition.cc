#include "part/partition.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace adgraph::part {

using graph::eid_t;
using graph::vid_t;

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kUniform:
      return "uniform";
    case PartitionStrategy::kDegreeBalanced:
      return "degree-balanced";
  }
  return "unknown";
}

uint32_t PartitionPlan::OwnerOf(graph::vid_t v) const {
  ADGRAPH_CHECK(!boundaries.empty() && v < boundaries.back())
      << "vertex outside the partitioned range";
  // First boundary strictly greater than v, among boundaries[1..P], is the
  // owner's upper edge.  Empty shards have no (lo <= v < hi) range, so no
  // vertex ever maps to them.
  auto it = std::upper_bound(boundaries.begin() + 1, boundaries.end(), v);
  return static_cast<uint32_t>(it - (boundaries.begin() + 1));
}

Result<PartitionPlan> MakePartitionPlan(const graph::CsrGraph& g,
                                        uint32_t num_shards,
                                        PartitionStrategy strategy) {
  if (num_shards == 0) {
    return Status::InvalidArgument("partition into zero shards");
  }
  const vid_t n = g.num_vertices();
  PartitionPlan plan;
  plan.boundaries.assign(num_shards + 1, 0);
  plan.boundaries[num_shards] = n;

  switch (strategy) {
    case PartitionStrategy::kUniform:
      for (uint32_t s = 1; s < num_shards; ++s) {
        plan.boundaries[s] = static_cast<vid_t>(
            static_cast<uint64_t>(n) * s / num_shards);
      }
      break;
    case PartitionStrategy::kDegreeBalanced: {
      const std::vector<eid_t>& row = g.row_offsets();
      const eid_t m = g.num_edges();
      vid_t cursor = 0;
      for (uint32_t s = 1; s < num_shards; ++s) {
        const eid_t target = m * s / num_shards;
        // row is non-decreasing; the first vertex whose prefix degree
        // reaches the target closes shard s-1.  Searching from `cursor`
        // keeps the boundaries non-decreasing by construction.
        auto it = std::lower_bound(row.begin() + cursor, row.end(), target);
        plan.boundaries[s] =
            std::min(n, static_cast<vid_t>(it - row.begin()));
        cursor = plan.boundaries[s];
      }
      break;
    }
  }
  return plan;
}

Result<graph::CsrGraph> BuildShardGraph(const graph::CsrGraph& g,
                                        const PartitionPlan& plan,
                                        uint32_t shard) {
  if (shard >= plan.num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range for a " +
                                   std::to_string(plan.num_shards()) +
                                   "-way plan");
  }
  if (plan.boundaries.back() != g.num_vertices()) {
    return Status::InvalidArgument(
        "partition plan does not cover this graph's vertex range");
  }
  const vid_t n = g.num_vertices();
  const vid_t lo = plan.lo(shard);
  const vid_t hi = plan.hi(shard);
  const std::vector<eid_t>& row = g.row_offsets();
  const eid_t base = row[lo];
  const eid_t owned_edges = row[hi] - base;

  std::vector<eid_t> shard_row(static_cast<size_t>(n) + 1, 0);
  for (vid_t v = lo; v <= hi; ++v) shard_row[v] = row[v] - base;
  for (vid_t v = hi + 1; v <= n; ++v) shard_row[v] = owned_edges;

  const std::vector<vid_t>& col = g.col_indices();
  std::vector<vid_t> shard_col(col.begin() + base,
                               col.begin() + (base + owned_edges));
  std::vector<graph::weight_t> shard_weights;
  if (g.has_weights()) {
    shard_weights.assign(g.weights().begin() + base,
                         g.weights().begin() + (base + owned_edges));
  }
  return graph::CsrGraph::FromArrays(n, std::move(shard_row),
                                     std::move(shard_col),
                                     std::move(shard_weights));
}

}  // namespace adgraph::part
