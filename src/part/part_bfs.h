#ifndef ADGRAPH_PART_PART_BFS_H_
#define ADGRAPH_PART_PART_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "part/engine.h"
#include "part/partition.h"
#include "util/status.h"

namespace adgraph::part {

struct PartBfsOptions {
  graph::vid_t source = 0;
  uint32_t block_size = 256;
};

/// Outcome of a partitioned BFS.  `levels` is byte-identical to a
/// single-device top-down RunBfs of the same graph and source: the
/// bulk-synchronous rounds coincide exactly with BFS levels, so splitting
/// the frontier across shards cannot change any vertex's level.
struct PartBfsResult {
  std::vector<uint32_t> levels;     ///< per-vertex level (kUnreachedLevel
                                    ///< if unreachable), owner-gathered
  uint32_t depth = 0;
  uint64_t vertices_visited = 0;
  uint32_t rounds = 0;              ///< BSP rounds == traversal depth
  double time_ms = 0;               ///< sum over rounds of
                                    ///< max-device-compute + exchange
  double compute_ms = 0;            ///< the max-device-compute part
  double exchange_ms = 0;           ///< the modeled interconnect part
  uint64_t exchange_bytes = 0;      ///< total remote-frontier bytes moved
  std::vector<uint64_t> round_exchange_bytes;  ///< per round
};

/// \brief Top-down BFS over a vertex-range-partitioned graph.
///
/// Each round: every device runs ONE fused kernel launch (the
/// single-device TopDownKernel's CAS discovery plus owner routing — owned
/// discoveries to the local next frontier, remote ones to a per-device
/// outbox), then the host routes outboxes to their owners over the
/// interconnect and applies the arrivals — first arrival wins, duplicates
/// (local or remote) are dropped.  The arrival claims ride the host-routed
/// exchange, so their cost is modeled in the interconnect's round time
/// (latency + busiest link), keeping the per-round launch count — and the
/// modeled fixed launch overhead — identical to the single-device driver.
/// Direction-optimizing mode is intentionally not offered here:
/// bottom-up sweeps read remote levels, which a 1-D partition cannot serve
/// without replicating the frontier every round.
Result<PartBfsResult> RunPartitionedBfs(PartitionedEngine* engine,
                                        const graph::CsrGraph& g,
                                        const PartitionPlan& plan,
                                        const PartBfsOptions& options);

}  // namespace adgraph::part

#endif  // ADGRAPH_PART_PART_BFS_H_
