#include "part/part_pagerank.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/device_graph.h"
#include "core/pagerank_kernels.h"
#include "core/residency.h"
#include "core/spmv.h"
#include "runtime/peer_copy.h"
#include "runtime/runtime.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::part {
namespace {

using core::detail::ApplyDampingKernel;
using core::detail::DanglingSumKernel;
using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;

/// acc[i] += sum_j inbox[j * count + i] — folds every peer's boundary
/// contribution for the owned range in ONE launch over the stacked inbox,
/// summing in fixed ascending-src order so the result is bit-identical to
/// applying the peers one at a time.  A single launch (instead of P-1)
/// keeps the per-iteration fixed launch overhead independent of the device
/// count, which is what lets the modeled strong scaling show through.
KernelTask CombineStackedKernel(Ctx& c, DevPtr<double> acc,
                                DevPtr<double> inbox, uint32_t count,
                                uint32_t num_boxes) {
  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, count), [&](Ctx& c) {
    auto sum = c.Load(acc, tid);
    for (uint32_t j = 0; j < num_boxes; ++j) {
      c.Assign(&sum,
               c.Add(sum, c.Load(inbox + static_cast<uint64_t>(j) * count,
                                 tid)));
    }
    c.Store(acc, tid, sum);
  });
  co_return;
}

struct ShardState {
  core::DeviceCsr pull;                 ///< pull-transpose of the shard
  rt::DeviceBuffer<eid_t> row;          ///< shard row offsets (dangling scan)
  rt::DeviceBuffer<double> ranks;       ///< full replica of the rank vector
  rt::DeviceBuffer<double> partial;     ///< this shard's contribution to all
  rt::DeviceBuffer<double> inbox;       ///< (P-1) stacked peer contributions
  rt::DeviceBuffer<double> scalars;     ///< [0] dangling partial, [1] delta
};

}  // namespace

Result<PartPageRankResult> RunPartitionedPageRank(
    PartitionedEngine* engine, const graph::CsrGraph& g,
    const PartitionPlan& plan, const PartPageRankOptions& options) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("PageRank on empty graph");
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("damping factor must be in (0,1)");
  }
  const uint32_t P = engine->num_devices();
  if (plan.num_shards() != P) {
    return Status::InvalidArgument(
        "partition plan is " + std::to_string(plan.num_shards()) +
        "-way but the engine has " + std::to_string(P) + " devices");
  }
  if (plan.boundaries.back() != n) {
    return Status::InvalidArgument(
        "partition plan does not cover this graph's vertex range");
  }

  vgpu::Interconnect& ic = engine->interconnect();
  trace::Span algo_span(ic.trace_track(), "algo:part_pagerank", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("num_devices", static_cast<uint64_t>(P));

  const uint64_t ic_bytes_before = ic.total_bytes();

  // ---- Per-device setup (staging excluded from timing). ----------------
  std::vector<ShardState> shards(P);
  for (uint32_t d = 0; d < P; ++d) {
    vgpu::Device* dev = engine->device(d);
    ShardState& s = shards[d];
    ADGRAPH_ASSIGN_OR_RETURN(graph::CsrGraph shard_graph,
                             BuildShardGraph(g, plan, d));
    // Pull operand: transpose of the shard with 1/outdeg(u) weights.  Owned
    // rows carry their full global adjacency, so shard out-degrees equal
    // global out-degrees and the shard SpMV yields exactly this shard's
    // additive contribution to every vertex.
    ADGRAPH_ASSIGN_OR_RETURN(
        graph::CsrGraph pull_graph,
        core::BuildHostVariant(shard_graph, core::GraphVariant::kPullTranspose));
    ADGRAPH_ASSIGN_OR_RETURN(s.pull, core::DeviceCsr::Upload(dev, pull_graph));
    ADGRAPH_ASSIGN_OR_RETURN(
        s.row, rt::DeviceBuffer<eid_t>::FromHost(dev, shard_graph.row_offsets()));
    ADGRAPH_ASSIGN_OR_RETURN(s.ranks,
                             rt::DeviceBuffer<double>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(s.partial,
                             rt::DeviceBuffer<double>::Create(dev, n));
    ADGRAPH_ASSIGN_OR_RETURN(
        s.inbox,
        rt::DeviceBuffer<double>::Create(
            dev, std::max<uint64_t>(
                     1, static_cast<uint64_t>(P - 1) * plan.shard_size(d))));
    ADGRAPH_ASSIGN_OR_RETURN(s.scalars,
                             rt::DeviceBuffer<double>::Create(dev, 2));
    ADGRAPH_RETURN_NOT_OK(
        core::primitives::Fill<double>(dev, s.ranks.ptr(), n, 1.0 / n));
  }

  PartPageRankResult result;
  core::SpmvOptions spmv_options;
  spmv_options.semiring = core::Semiring::kPlusTimes;
  spmv_options.block_size = options.block_size;

  std::vector<double> clock_base = engine->ElapsedSnapshot();

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    trace::Span sweep(ic.trace_track(), "part_pagerank.iteration", "phase");
    sweep.ArgNum("iteration", static_cast<uint64_t>(iter + 1));

    // --- (a) Dangling mass: local partial sums over owned ranges, host
    // combine (modeled as an 8-byte all-to-all scalar exchange).
    double dangling = 0;
    for (uint32_t d = 0; d < P; ++d) {
      ShardState& s = shards[d];
      vgpu::Device* dev = engine->device(d);
      const vid_t lo = plan.lo(d);
      const vid_t count = plan.shard_size(d);
      ADGRAPH_RETURN_NOT_OK(
          core::primitives::SetElement<double>(dev, s.scalars.ptr(), 0, 0.0));
      if (count > 0) {
        ADGRAPH_RETURN_NOT_OK(
            dev->Launch("pagerank_dangling",
                        rt::CoverThreads(count, options.block_size),
                        [&](Ctx& c) {
                          return DanglingSumKernel(c, s.row.ptr() + lo,
                                                   s.ranks.ptr() + lo,
                                                   s.scalars.ptr(), count);
                        })
                .status());
      }
      ADGRAPH_ASSIGN_OR_RETURN(
          double local,
          core::primitives::GetElement<double>(dev, s.scalars.ptr(), 0));
      dangling += local;
    }
    for (uint32_t src = 0; src < P; ++src) {
      for (uint32_t dst = 0; dst < P; ++dst) {
        if (src != dst) ic.AccountTransfer(src, dst, sizeof(double));
      }
    }

    // --- (b) Local SpMV: partial_d = A_d^T * ranks.
    for (uint32_t d = 0; d < P; ++d) {
      ShardState& s = shards[d];
      ADGRAPH_RETURN_NOT_OK(core::RunSpmvOnDevice(engine->device(d), s.pull,
                                                  s.ranks.ptr(),
                                                  s.partial.ptr(),
                                                  spmv_options));
    }

    // --- (c) Reduce-scatter: every peer's boundary contribution for the
    // owner's range lands in its slot of the stacked inbox (src-ascending,
    // so the fixed summation order is deterministic), then one combine
    // launch folds them all into the owner's partial.
    for (uint32_t owner = 0; owner < P; ++owner) {
      ShardState& o = shards[owner];
      vgpu::Device* owner_dev = engine->device(owner);
      const vid_t lo = plan.lo(owner);
      const vid_t count = plan.shard_size(owner);
      if (count == 0) continue;
      uint32_t boxes = 0;
      for (uint32_t src = 0; src < P; ++src) {
        if (src == owner) continue;
        ShardState& s = shards[src];
        ADGRAPH_RETURN_NOT_OK(rt::PeerCopy<double>(
            engine->device(src), s.partial.ptr() + lo, owner_dev,
            o.inbox.ptr() + static_cast<uint64_t>(boxes) * count, count, &ic,
            src, owner));
        ++boxes;
      }
      if (boxes == 0) continue;
      ADGRAPH_RETURN_NOT_OK(
          owner_dev
              ->Launch("pagerank_combine",
                       rt::CoverThreads(count, options.block_size),
                       [&](Ctx& c) {
                         return CombineStackedKernel(c, o.partial.ptr() + lo,
                                                     o.inbox.ptr(), count,
                                                     boxes);
                       })
              .status());
    }

    // --- (d) Damping update on owned ranges; per-owner L1 deltas combine
    // on the host (8-byte all-to-all, as the dangling pass).
    const double base = (1.0 - options.alpha) / n +
                        options.alpha * dangling / static_cast<double>(n);
    double l1_delta = 0;
    for (uint32_t owner = 0; owner < P; ++owner) {
      ShardState& o = shards[owner];
      vgpu::Device* dev = engine->device(owner);
      const vid_t lo = plan.lo(owner);
      const vid_t count = plan.shard_size(owner);
      if (count == 0) continue;
      ADGRAPH_RETURN_NOT_OK(
          core::primitives::SetElement<double>(dev, o.scalars.ptr(), 1, 0.0));
      ADGRAPH_RETURN_NOT_OK(
          dev->Launch("pagerank_damping",
                      rt::CoverThreads(count, options.block_size),
                      [&](Ctx& c) {
                        return ApplyDampingKernel(c, o.partial.ptr() + lo,
                                                  o.ranks.ptr() + lo,
                                                  o.scalars.ptr() + 1, base,
                                                  options.alpha, count);
                      })
              .status());
      ADGRAPH_ASSIGN_OR_RETURN(
          double local,
          core::primitives::GetElement<double>(dev, o.scalars.ptr(), 1));
      l1_delta += local;
    }
    for (uint32_t src = 0; src < P; ++src) {
      for (uint32_t dst = 0; dst < P; ++dst) {
        if (src != dst) ic.AccountTransfer(src, dst, sizeof(double));
      }
    }

    // --- (e) All-gather: refresh every replica with the updated segments.
    for (uint32_t owner = 0; owner < P; ++owner) {
      ShardState& o = shards[owner];
      vgpu::Device* owner_dev = engine->device(owner);
      const vid_t lo = plan.lo(owner);
      const vid_t count = plan.shard_size(owner);
      if (count == 0) continue;
      ADGRAPH_RETURN_NOT_OK(owner_dev->CopyDeviceToDevice(
          o.ranks.ptr() + lo, o.partial.ptr() + lo, count));
      for (uint32_t dst = 0; dst < P; ++dst) {
        if (dst == owner) continue;
        ADGRAPH_RETURN_NOT_OK(rt::PeerCopy<double>(
            owner_dev, o.partial.ptr() + lo, engine->device(dst),
            shards[dst].ranks.ptr() + lo, count, &ic, owner, dst));
      }
    }

    // --- Close the iteration's exchange round and roll up modeled time.
    double round_compute = 0;
    std::vector<double> clock_now = engine->ElapsedSnapshot();
    for (uint32_t d = 0; d < P; ++d) {
      round_compute = std::max(round_compute, clock_now[d] - clock_base[d]);
    }
    clock_base = std::move(clock_now);
    vgpu::Interconnect::RoundStats exchange =
        ic.EndRound("pagerank:iter=" + std::to_string(iter + 1));
    result.compute_ms += round_compute;
    result.exchange_ms += exchange.modeled_ms;
    result.time_ms += round_compute + exchange.modeled_ms;

    result.l1_delta = l1_delta;
    sweep.ArgNum("l1_delta", l1_delta);
    result.iterations = iter + 1;
    if (options.tolerance > 0 && result.l1_delta < options.tolerance) break;
  }

  result.exchange_bytes = ic.total_bytes() - ic_bytes_before;

  // --- Owner gather of the final ranks.
  result.ranks.assign(n, 0.0);
  for (uint32_t d = 0; d < P; ++d) {
    const vid_t lo = plan.lo(d);
    const vid_t count = plan.shard_size(d);
    if (count == 0) continue;
    ADGRAPH_RETURN_NOT_OK(
        shards[d].ranks.Download(result.ranks.data() + lo, count, lo));
  }
  algo_span.ArgNum("iterations", static_cast<uint64_t>(result.iterations));
  algo_span.ArgNum("exchange_bytes", result.exchange_bytes);
  return result;
}

}  // namespace adgraph::part
