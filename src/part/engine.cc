#include "part/engine.h"

#include <utility>

namespace adgraph::part {

Result<std::unique_ptr<PartitionedEngine>> PartitionedEngine::Create(
    const vgpu::ArchConfig& arch, Options options) {
  if (options.num_devices == 0) {
    return Status::InvalidArgument("partitioned engine needs >= 1 device");
  }
  ADGRAPH_RETURN_NOT_OK(vgpu::ValidateArchConfig(arch));
  ADGRAPH_RETURN_NOT_OK(
      vgpu::ValidateInterconnectConfig(options.interconnect));

  std::vector<std::unique_ptr<vgpu::Device>> devices;
  devices.reserve(options.num_devices);
  for (uint32_t i = 0; i < options.num_devices; ++i) {
    devices.push_back(
        std::make_unique<vgpu::Device>(arch, options.device_options));
  }
  auto interconnect = std::make_unique<vgpu::Interconnect>(
      options.num_devices, options.interconnect);
  return std::unique_ptr<PartitionedEngine>(new PartitionedEngine(
      std::move(options), std::move(devices), std::move(interconnect)));
}

std::vector<double> PartitionedEngine::ElapsedSnapshot() const {
  std::vector<double> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) out.push_back(d->elapsed_ms());
  return out;
}

}  // namespace adgraph::part
