#include "vgpu/timing.h"

#include <algorithm>
#include <cmath>

namespace adgraph::vgpu {

const TimingParams& DefaultTimingParams() {
  static const TimingParams* params = new TimingParams();
  return *params;
}

void ComputeKernelTiming(const ArchConfig& arch, const TimingParams& params,
                         KernelStats* stats) {
  const KernelCounters& c = stats->counters;

  // --- Issue-bound term: warp-level instructions through the schedulers.
  // SALU overhead (SIMD exec-mask bookkeeping) consumes issue slots too.
  // GCN's dedicated scalar unit co-issues SALU work alongside vector
  // instructions; on SIMT machines uniform/scalar work occupies regular
  // issue slots.  (The residual 1/4 weight models SALU->VALU dependency
  // stalls.)
  const double scalar_weight =
      arch.paradigm == Paradigm::kSimd ? 0.25 : 1.0;
  double warp_instructions =
      static_cast<double>(c.warp_inst_issued) +
      scalar_weight * static_cast<double>(c.scalar_inst);
  double issue_cycles =
      warp_instructions /
      (static_cast<double>(arch.num_sms) * arch.schedulers_per_sm);
  // Load-imbalance critical path: the kernel cannot finish before its
  // busiest SM drains (hub-vertex blocks in power-law graphs).
  issue_cycles = std::max(
      issue_cycles,
      static_cast<double>(stats->max_sm_inst) / arch.schedulers_per_sm);

  // --- Lane-throughput term: VALU lane-operations through the cores.
  double valu_cycles =
      static_cast<double>(c.lane_ops) /
      (static_cast<double>(arch.num_sms) * arch.lanes_per_sm);

  // --- DRAM bandwidth term.
  double dram_bytes =
      static_cast<double>(c.dram_read_bytes + c.dram_write_bytes);
  double dram_bytes_per_cycle = arch.dram_bandwidth_gbps / arch.clock_ghz;
  double dram_cycles = dram_bytes / dram_bytes_per_cycle;

  // --- L2 bandwidth term: every L1 miss moves a line through L2.
  double l2_bytes = static_cast<double>(c.l1_misses + c.global_st_transactions) *
                    arch.mem_segment_bytes;
  double l2_bytes_per_cycle = arch.l2_bandwidth_gbps / arch.clock_ghz;
  double l2_cycles = l2_bytes / l2_bytes_per_cycle;

  // --- Shared-memory / LDS term.
  double smem_passes =
      static_cast<double>(c.smem_accesses + c.smem_bank_conflict_extra);
  double smem_cycles = smem_passes / arch.num_sms;
  if (arch.shared_path == SharedMemPath::kUnifiedWithL1) {
    // Unified data path (NVIDIA): L1 miss traffic contends with shared
    // memory.  The contention share is the fraction of the unified path's
    // traffic that is L1 refill, weighted by alpha.
    double miss_bytes =
        static_cast<double>(c.l1_misses) * arch.mem_segment_bytes;
    double smem_bytes = static_cast<double>(c.smem_bytes);
    double total = miss_bytes + smem_bytes;
    if (total > 0 && smem_bytes > 0) {
      double contention = 1.0 + params.smem_l1_contention_alpha *
                                    (miss_bytes / total);
      smem_cycles *= contention;
    }
  }

  // --- Exposed-latency term: each SM handles its share of the accumulated
  // miss latency, hidden by its resident warps' memory-level parallelism.
  uint64_t warps_per_block =
      stats->block == 0 ? 1 : (stats->block + arch.warp_width - 1) / arch.warp_width;
  double total_warps = static_cast<double>(c.warps_launched);
  double resident_warps_per_sm = std::min<double>(
      arch.max_warps_per_sm,
      std::max<double>(warps_per_block,
                       total_warps / std::max<uint32_t>(arch.num_sms, 1)));
  double hiding = std::max(1.0, static_cast<double>(arch.num_sms) *
                                    resident_warps_per_sm *
                                    params.mlp_per_warp);
  double exposed_latency = c.memory_latency_cycles / hiding;

  // Barriers serialize the warps of a block; blocks run in parallel
  // across SMs, so the aggregate cost is spread over them.
  double barrier_cycles_total =
      static_cast<double>(c.barriers) * params.barrier_cycles /
      std::max<uint32_t>(arch.num_sms, 1);

  // Platform launch + level-synchronization overhead (CUDA vs ROCm-like
  // stacks differ; the paper's threat-to-validity #1).
  double fixed = arch.launch_overhead_us * 1e-6 *
                 (arch.clock_ghz * 1e9);  // us -> cycles

  double bound = std::max({issue_cycles, valu_cycles, dram_cycles, l2_cycles,
                           smem_cycles});
  double cycles = bound + exposed_latency + barrier_cycles_total + fixed;

  stats->issue_cycles = issue_cycles;
  stats->valu_cycles = valu_cycles;
  stats->dram_cycles = dram_cycles;
  stats->l2_cycles = l2_cycles;
  stats->smem_cycles = smem_cycles;
  stats->exposed_latency_cycles = exposed_latency;
  stats->cycles = cycles;
  stats->time_ms = cycles / (arch.clock_ghz * 1e6);

  // Achieved occupancy: resident warps relative to capacity, derated by
  // intra-warp load balance (idle loop slots keep warps resident but not
  // productive — the paper's Figure 7/8 "low utilization" effect).
  double occ = std::min(1.0, resident_warps_per_sm / arch.max_warps_per_sm);
  stats->achieved_occupancy = occ * (0.30 + 0.70 * c.loop_balance());
}

}  // namespace adgraph::vgpu
