#ifndef ADGRAPH_VGPU_INTERCONNECT_H_
#define ADGRAPH_VGPU_INTERCONNECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "vgpu/counters.h"

namespace adgraph::vgpu {

/// \brief Timing parameterization of the device-to-device interconnect.
///
/// The partitioned execution engine (DESIGN.md §2.7) models every
/// bulk-synchronous peer exchange as a set of point-to-point transfers over
/// links of this shape: each transfer costs `latency_us` plus
/// bytes / `link_gbps`, and transfers of one exchange round proceed in
/// parallel (the round completes when the busiest link drains).  The two
/// presets bracket the realistic range the paper's scale-out discussion
/// spans: PCIe-class host-routed peers vs NVLink-class direct links.
struct InterconnectConfig {
  std::string name = "pcie";
  /// Per-direction link bandwidth in GB/s (10^9 bytes).
  double link_gbps = 16.0;
  /// Per-transfer fixed latency in microseconds.
  double latency_us = 5.0;
};

/// PCIe-gen3-like peer path: ~16 GB/s per direction, ~5 us setup.
InterconnectConfig PciePreset();

/// NVLink-like direct link: ~300 GB/s per direction, ~1.3 us setup.
InterconnectConfig NvlinkPreset();

/// Parses "pcie" / "nvlink" (case-sensitive wire names); kNotFound
/// otherwise.
Result<InterconnectConfig> InterconnectPresetByName(const std::string& name);

/// Rejects configs whose bandwidth/latency would produce inf/NaN exchange
/// times (zero or non-finite link_gbps, negative or non-finite latency).
Status ValidateInterconnectConfig(const InterconnectConfig& config);

/// \brief All-to-all byte accounting + timing model of one device pool's
/// interconnect.
///
/// Single-threaded, like vgpu::Device: one BSP driver owns it.  Usage per
/// exchange round: any number of AccountTransfer(src, dst, bytes) calls
/// (the functional copy happens elsewhere — rt::PeerCopy / PeerSend), then
/// EndRound(label), which computes the round's modeled time as
/// latency + max over directed pairs of bytes/bandwidth, emits one span on
/// the dedicated "interconnect" trace track, and folds the round into the
/// cumulative per-pair byte matrix.
class Interconnect {
 public:
  /// One completed exchange round's summary.
  struct RoundStats {
    uint64_t bytes = 0;      ///< total bytes moved this round
    double modeled_ms = 0;   ///< modeled round completion time
  };

  Interconnect(uint32_t num_devices, InterconnectConfig config);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  uint32_t num_devices() const { return num_devices_; }
  const InterconnectConfig& config() const { return config_; }

  /// Adds `bytes` to the current round's src->dst link (0-based device
  /// indices; src == dst is a no-op — local traffic never crosses a link).
  void AccountTransfer(uint32_t src, uint32_t dst, uint64_t bytes);

  /// Closes the current round: models its completion time, emits the
  /// exchange span, accumulates totals, resets the pending matrix.
  /// Returns the round summary (modeled_ms == 0 for an empty round — a
  /// round with no transfers costs nothing, not one latency).
  RoundStats EndRound(const std::string& label);

  // --- Cumulative accounting (across all completed rounds) --------------
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_rounds() const { return total_rounds_; }
  double total_modeled_ms() const { return total_modeled_ms_; }
  /// Cumulative directed byte matrix, row-major [src * num_devices + dst].
  const std::vector<uint64_t>& pair_bytes() const { return pair_bytes_; }
  /// Peer-traffic counter record (peer_bytes_sent == peer_bytes_received ==
  /// total_bytes; peer_exchanges == total_rounds) for merging into
  /// KernelCounters aggregates.
  KernelCounters CounterRecord() const;

  /// The interconnect's timeline in the tracing subsystem.
  uint64_t trace_track() const { return trace_track_; }

 private:
  uint32_t num_devices_;
  InterconnectConfig config_;
  std::vector<uint64_t> pending_;     ///< this round, [src*P + dst]
  std::vector<uint64_t> pair_bytes_;  ///< cumulative, [src*P + dst]
  uint64_t total_bytes_ = 0;
  uint64_t total_rounds_ = 0;
  double total_modeled_ms_ = 0;
  uint64_t trace_track_ = 0;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_INTERCONNECT_H_
