#ifndef ADGRAPH_VGPU_TIMING_H_
#define ADGRAPH_VGPU_TIMING_H_

#include "vgpu/arch.h"
#include "vgpu/counters.h"

namespace adgraph::vgpu {

/// \brief Calibration constants of the analytic timing model.
///
/// These are shared by ALL architecture configs — only ArchConfig (which
/// carries the paper's Table 3 parameters plus the paradigm/shared-path
/// flags) differs between simulated GPUs.  Keeping the fudge factors
/// vendor-agnostic is what makes the cross-architecture comparisons
/// meaningful: a result cannot be an artifact of per-vendor tuning.
/// EXPERIMENTS.md documents the one-time calibration procedure.
struct TimingParams {
  /// Default per-kernel launch/driver overhead (microseconds) when an
  /// ArchConfig does not override it.  Dominates tiny launches, which is
  /// why small-graph runtimes stay in the paper's millisecond range.
  double kernel_launch_overhead_us = 3.0;

  /// Fraction of a divergent region's memory latency that SIMT independent
  /// thread scheduling overlaps across the serialized paths (Volta+).
  /// SIMD gets no overlap — the Hypothesis 3 mechanism.
  double simt_divergent_overlap = 0.55;

  /// Extra fraction of divergent-region memory latency a SIMD wavefront
  /// pays: serialized exec-mask paths drain (s_waitcnt) before
  /// reconvergence, so their stalls cannot interleave at all.
  double simd_divergent_stall = 0.35;

  /// Memory-level parallelism per resident warp: outstanding misses whose
  /// latencies overlap.
  double mlp_per_warp = 4.0;

  /// Strength of shared-memory <-> L1 data-path contention on unified
  /// designs (NVIDIA): effective shared throughput divides by
  /// (1 + alpha * miss_traffic_share) — the Hypothesis 2/4 mechanism.
  double smem_l1_contention_alpha = 2.2;

  /// Cycles to release one block barrier (amortized: co-resident blocks
  /// hide most of the raw ~30-cycle latency).
  double barrier_cycles = 8;

  /// Serialization cycles per extra same-address atomic conflict.
  double atomic_conflict_cycles = 24;

  /// Scalar (SALU) instructions charged per divergent branch for exec-mask
  /// save/invert/restore on SIMD architectures.
  uint32_t simd_mask_scalar_ops = 2;
};

/// Library-wide default parameters (never mutated; ablation benches pass
/// custom instances to Device).
const TimingParams& DefaultTimingParams();

/// \brief Rolls raw kernel counters into cycles and milliseconds using an
/// interval/roofline model:
///
///   cycles = max(issue, valu, dram, l2, smem) + exposed_latency + fixed
///
/// where exposed_latency divides accumulated miss latency by the latency
/// hiding capacity (resident warps x MLP), and the smem term is inflated by
/// L1-path contention on unified designs.  Fills the timing fields of
/// `stats` in place (counters and launch shape must already be set).
void ComputeKernelTiming(const ArchConfig& arch, const TimingParams& params,
                         KernelStats* stats);

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_TIMING_H_
