#include "vgpu/arch.h"

#include <cmath>

namespace adgraph::vgpu {
namespace {

ArchConfig MakeV100() {
  ArchConfig c;
  c.name = "V100";
  c.vendor = "NVIDIA";
  c.paradigm = Paradigm::kSimt;
  c.shared_path = SharedMemPath::kUnifiedWithL1;
  c.warp_width = 32;
  c.num_sms = 80;
  c.max_warps_per_sm = 64;
  c.schedulers_per_sm = 4;
  c.lanes_per_sm = 64;  // 64 FP32 cores per SM
  c.clock_ghz = 1.38;
  c.launch_overhead_us = 5.0;  // CUDA stack
  c.fp64_tflops = 7.0;
  c.fp32_tflops = 14.0;
  c.dram_bandwidth_gbps = 900;
  c.dram_latency_cycles = 640;
  c.dram_capacity_bytes = 32ull << 30;
  c.ram_type = "HBM2";
  c.ram_bitwidth = 4096;
  c.l1_size_bytes = 128 << 10;
  c.l1_latency_cycles = 28;
  c.l2_size_bytes = 6ull << 20;
  c.l2_latency_cycles = 200;
  c.l2_bandwidth_gbps = 2200;
  c.smem_bytes_per_sm = 96 << 10;
  c.smem_banks = 32;
  c.smem_latency_cycles = 19;  // unified path: low latency (Hypothesis 4)
  return c;
}

ArchConfig MakeA100() {
  ArchConfig c = MakeV100();
  c.name = "A100";
  c.num_sms = 108;
  c.clock_ghz = 1.41;
  c.fp64_tflops = 9.7;
  c.fp32_tflops = 19.5;
  c.dram_bandwidth_gbps = 1935;
  c.dram_latency_cycles = 580;  // HBM2e
  c.dram_capacity_bytes = 80ull << 30;
  c.ram_type = "HBM2e";
  c.ram_bitwidth = 5120;
  c.l2_size_bytes = 40ull << 20;
  c.l2_bandwidth_gbps = 4500;
  c.smem_bytes_per_sm = 164 << 10;
  return c;
}

ArchConfig MakeZ100() {
  ArchConfig c;
  c.name = "Z100";
  c.vendor = "AMD-like";
  c.paradigm = Paradigm::kSimd;
  c.shared_path = SharedMemPath::kIndependentLds;
  c.warp_width = 64;
  c.num_sms = 64;  // CUs
  // 4 SIMD units x 10 wavefronts per CU (paper §2.3).
  c.max_warps_per_sm = 40;
  // A GCN CU co-issues up to five instruction *types* per cycle (VALU,
  // SALU, LDS, VMEM, branch) across its resident wavefronts, giving it
  // more issue slots per CU than an SM's four single-issue schedulers.
  c.schedulers_per_sm = 6;
  // VALU lane throughput calibrated to Table 3's FP64 figures relative to
  // the NVIDIA parts (5.9 TFLOPS at 1.32 GHz): the CU's co-issued SIMD
  // pipes retire more lane-ops per clock than its nominal 4x16 width.
  c.lanes_per_sm = 72;
  c.clock_ghz = 1.32;
  c.launch_overhead_us = 2.4;  // ROCm-like stack (lighter launch path)
  c.fp64_tflops = 5.9;
  c.fp32_tflops = 11.8;
  c.dram_bandwidth_gbps = 800;
  c.dram_latency_cycles = 700;
  c.dram_capacity_bytes = 16ull << 30;
  c.ram_type = "HBM2";
  c.ram_bitwidth = 4096;
  // L1 geometry is held identical across vendors so cross-architecture
  // deltas come only from the parameters the paper studies (paradigm,
  // warp width, shared-memory path, Table 3 RAM/compute).
  c.l1_size_bytes = 128 << 10;
  c.l1_latency_cycles = 28;
  c.l2_size_bytes = 8ull << 20;
  c.l2_latency_cycles = 220;
  c.l2_bandwidth_gbps = 1100;  // GCN-class L2
  c.smem_bytes_per_sm = 64 << 10;  // LDS
  c.smem_banks = 32;
  c.smem_latency_cycles = 32;  // independent path: higher base latency
  return c;
}

ArchConfig MakeZ100L() {
  ArchConfig c = MakeZ100();
  c.name = "Z100L";
  // Z100L: same CU count as Z100 but ~1.7x FP64 via higher clocks/wider
  // double-rate units, faster HBM2 stack (Table 3).
  c.lanes_per_sm = 96;  // FP64-parity calibration vs A100 (10.1 TFLOPS)
  c.clock_ghz = 1.70;
  c.fp64_tflops = 10.1;
  c.fp32_tflops = 12.2;
  c.dram_bandwidth_gbps = 1024;
  c.dram_latency_cycles = 660;
  c.dram_capacity_bytes = 32ull << 30;
  c.l2_size_bytes = 16ull << 20;
  c.l2_bandwidth_gbps = 1400;  // GCN-class L2
  return c;
}

}  // namespace

Status ValidateArchConfig(const ArchConfig& config) {
  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("arch config '" + config.name + "': " +
                                   what);
  };
  auto positive_finite = [](double v) {
    return std::isfinite(v) && v > 0;
  };
  if (config.num_sms == 0) return bad("num_sms must be positive");
  if (config.warp_width == 0 || config.warp_width > 64) {
    return bad("warp_width must be in [1,64]");
  }
  if (config.schedulers_per_sm == 0) {
    return bad("schedulers_per_sm must be positive");
  }
  if (config.lanes_per_sm == 0) return bad("lanes_per_sm must be positive");
  if (config.max_warps_per_sm == 0) {
    return bad("max_warps_per_sm must be positive");
  }
  if (!positive_finite(config.clock_ghz)) {
    return bad("clock_ghz must be positive and finite");
  }
  if (!positive_finite(config.dram_bandwidth_gbps)) {
    return bad("dram_bandwidth_gbps must be positive and finite");
  }
  if (!positive_finite(config.l2_bandwidth_gbps)) {
    return bad("l2_bandwidth_gbps must be positive and finite");
  }
  if (config.launch_overhead_us < 0 ||
      !std::isfinite(config.launch_overhead_us)) {
    return bad("launch_overhead_us must be non-negative and finite");
  }
  if (config.cache_line_bytes == 0 || config.mem_segment_bytes == 0) {
    return bad("cache geometry must be positive");
  }
  return Status::OK();
}

const ArchConfig& V100Config() {
  static const ArchConfig* config = new ArchConfig(MakeV100());
  return *config;
}

const ArchConfig& A100Config() {
  static const ArchConfig* config = new ArchConfig(MakeA100());
  return *config;
}

const ArchConfig& Z100Config() {
  static const ArchConfig* config = new ArchConfig(MakeZ100());
  return *config;
}

const ArchConfig& Z100LConfig() {
  static const ArchConfig* config = new ArchConfig(MakeZ100L());
  return *config;
}

std::vector<const ArchConfig*> PaperGpus() {
  return {&Z100Config(), &V100Config(), &Z100LConfig(), &A100Config()};
}

}  // namespace adgraph::vgpu
