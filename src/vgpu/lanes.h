#ifndef ADGRAPH_VGPU_LANES_H_
#define ADGRAPH_VGPU_LANES_H_

#include <array>
#include <bit>
#include <cstdint>

namespace adgraph::vgpu {

/// Maximum simulated warp/wavefront width (AMD-like wavefront = 64).
inline constexpr uint32_t kMaxWarpWidth = 64;

/// Bitset of active lanes within one warp/wavefront; bit i = lane i.
using LaneMask = uint64_t;

/// Mask with the low `width` bits set (width <= 64).
inline LaneMask FullMask(uint32_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

inline uint32_t PopCount(LaneMask m) {
  return static_cast<uint32_t>(std::popcount(m));
}

inline bool LaneActive(LaneMask m, uint32_t lane) {
  return (m >> lane) & 1ull;
}

/// \brief Per-lane register file entry: one value per lane of a warp.
///
/// Lanes is a plain value container; all arithmetic on it is performed via
/// the Ctx execution DSL so that every operation is counted and timed by
/// the simulator.  Inactive lanes hold stale values that must never be
/// observed (the DSL only reads lanes covered by the active mask).
template <typename T>
struct Lanes {
  std::array<T, kMaxWarpWidth> v{};

  T& operator[](uint32_t lane) { return v[lane]; }
  const T& operator[](uint32_t lane) const { return v[lane]; }

  /// All-lanes-same-value constructor helper.
  static Lanes Splat(T value) {
    Lanes out;
    out.v.fill(value);
    return out;
  }
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_LANES_H_
