#ifndef ADGRAPH_VGPU_KERNEL_H_
#define ADGRAPH_VGPU_KERNEL_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace adgraph::vgpu {

/// \brief The return type of a simulated GPU kernel.
///
/// A kernel is a C++20 coroutine executed once per warp/wavefront:
///
/// \code
///   KernelTask MyKernel(Ctx& c, const Params& p) {
///     auto tid = c.GlobalThreadId();
///     ...
///     co_await c.Sync();   // block-level barrier (uniform control flow only)
///     ...
///     co_return;
///   }
/// \endcode
///
/// Kernels that never synchronize simply do not use co_await and must still
/// end with an (implicit or explicit) co_return.  The block scheduler in
/// Device::Launch round-robins the warps of a block between barriers.
///
/// Lifetime rule: parameters captured by reference must outlive the
/// Launch() call (Launch is synchronous, so host-stack params are fine).
class KernelTask {
 public:
  struct promise_type {
    KernelTask get_return_object() {
      return KernelTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    // Start suspended; the scheduler performs the first resume.
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  KernelTask() = default;
  explicit KernelTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  KernelTask(KernelTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  KernelTask& operator=(KernelTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  /// Runs the warp until its next barrier suspension or completion.
  void Resume() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_KERNEL_H_
