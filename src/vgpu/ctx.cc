#include "vgpu/ctx.h"

#include <algorithm>
#include <array>
#include <bit>

#include "vgpu/mem/coalescer.h"

namespace adgraph::vgpu {

void Ctx::AccountBranch(bool divergent) {
  counters_->warp_inst_issued += 1;
  counters_->branches += 1;
  if (divergent) {
    counters_->divergent_branches += 1;
    if (arch_->paradigm == Paradigm::kSimd) {
      // GCN-style exec-mask save / invert / restore on the scalar unit.
      counters_->scalar_inst += params_->simd_mask_scalar_ops;
    }
  }
}

void Ctx::AccumulateLatency(double cycles) {
  if (divergence_depth_ > 0) {
    if (arch_->paradigm == Paradigm::kSimt) {
      // Volta+ independent thread scheduling: stalls of serialized
      // divergent paths overlap (Hypothesis 3's SIMT advantage).
      double saved = cycles * params_->simt_divergent_overlap;
      counters_->simt_overlap_saved_cycles += saved;
      cycles -= saved;
    } else {
      // SIMD wavefronts drain each masked path before reconverging; their
      // divergent-path stalls cannot interleave at all.
      cycles *= 1.0 + params_->simd_divergent_stall;
    }
  }
  counters_->memory_latency_cycles += cycles;
}

void Ctx::AccountGlobal(const Lanes<uint64_t>& addrs, uint32_t access_bytes,
                        bool is_store) {
  counters_->warp_inst_issued += 1;
  CoalesceResult co =
      Coalesce(addrs, active_, access_bytes, arch_->mem_segment_bytes);
  if (is_store) {
    counters_->global_store_inst += 1;
    counters_->global_st_transactions += co.size();
    counters_->global_st_bytes_requested += co.bytes_requested;
    counters_->global_st_bytes_transferred += co.bytes_transferred;
  } else {
    counters_->global_load_inst += 1;
    counters_->global_ld_transactions += co.size();
    counters_->global_ld_bytes_requested += co.bytes_requested;
    counters_->global_ld_bytes_transferred += co.bytes_transferred;
  }

  // Walk the cache hierarchy per transaction; instruction latency is set by
  // the slowest level any of its transactions reached (transactions within
  // one instruction proceed in parallel).
  bool any_l2 = false;
  bool any_dram = false;
  for (uint64_t seg : co) {
    if (l1_->Access(seg)) {
      counters_->l1_hits += 1;
      continue;
    }
    counters_->l1_misses += 1;
    any_l2 = true;
    if (l2_->Access(seg)) {
      counters_->l2_hits += 1;
      continue;
    }
    counters_->l2_misses += 1;
    any_dram = true;
    if (is_store) {
      counters_->dram_write_bytes += arch_->mem_segment_bytes;
    } else {
      counters_->dram_read_bytes += arch_->mem_segment_bytes;
    }
  }
  // Stores drain asynchronously through the write buffer; only loads stall.
  if (!is_store && co.size() > 0) {
    double latency = any_dram  ? arch_->dram_latency_cycles
                     : any_l2 ? arch_->l2_latency_cycles
                               : arch_->l1_latency_cycles;
    AccumulateLatency(latency);
  }
}

void Ctx::AccountAtomic(const Lanes<uint64_t>& addrs, uint32_t access_bytes) {
  counters_->warp_inst_issued += 1;
  counters_->atomic_inst += 1;

  // Atomics resolve at the L2; same-address lanes serialize.  Stack-local
  // sort instead of a map — this is a per-instruction hot path.
  std::array<uint64_t, kMaxWarpWidth> sorted;
  uint32_t n = 0;
  for (LaneMask m = active_; m != 0; m &= m - 1) {
    sorted[n++] = addrs[std::countr_zero(m)];
  }
  std::sort(sorted.begin(), sorted.begin() + n);
  uint32_t distinct = 0;
  uint32_t max_conflict = 0;
  uint32_t run = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) {
      ++distinct;
      run = 1;
      uint64_t seg =
          sorted[i] / arch_->mem_segment_bytes * arch_->mem_segment_bytes;
      if (!l2_->Access(seg)) {
        counters_->l2_misses += 1;
        counters_->dram_write_bytes += arch_->mem_segment_bytes;
      } else {
        counters_->l2_hits += 1;
      }
    } else {
      ++run;
    }
    max_conflict = std::max(max_conflict, run);
  }
  counters_->global_st_transactions += distinct;
  counters_->global_st_bytes_requested +=
      static_cast<uint64_t>(n) * access_bytes;
  counters_->global_st_bytes_transferred +=
      static_cast<uint64_t>(distinct) * arch_->mem_segment_bytes;
  double latency =
      arch_->l2_latency_cycles +
      (max_conflict > 1 ? (max_conflict - 1) * params_->atomic_conflict_cycles
                        : 0.0);
  AccumulateLatency(latency);
}

void Ctx::SharedHashInsert(SmemPtr<uint32_t> table, uint32_t capacity,
                           const Lanes<uint32_t>& keys, uint32_t hash_mult,
                           uint32_t empty) {
  ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
  // Hash computation: one multiply + one modulo per warp.
  CountValu();
  CountValu();
  uint64_t rounds = 0;
  uint64_t lane_rounds = 0;
  ADGRAPH_VGPU_FOR_ACTIVE(i) {
    const uint32_t key = keys[i];
    uint32_t slot = (key * hash_mult) % capacity;
    uint64_t probes = 1;
    for (;;) {
      uint32_t off = table.offset + slot * 4;
      uint32_t current = smem_->Load<uint32_t>(off);
      if (current == empty) {
        smem_->Store<uint32_t>(off, key);
        break;
      }
      if (current == key) break;
      slot = (slot + 1) % capacity;
      ADGRAPH_CHECK(++probes <= capacity) << "hash table full in insert";
    }
    rounds = std::max(rounds, probes);
    lane_rounds += probes;
  }
  // Lockstep accounting matching the explicit DSL loop this op replaces:
  // per probe round one LDS CAS (store class), two compares, the
  // active-mask bookkeeping branch, and the slot add+mod — six issued
  // warp instructions of which five are VALU-class.
  counters_->warp_inst_issued += 6 * rounds;
  counters_->valu_warp_inst += 5 * rounds;
  counters_->shared_store_inst += rounds;
  counters_->smem_accesses += rounds;
  counters_->lane_ops += 3 * lane_rounds;
  counters_->smem_bytes += lane_rounds * 4;
  AccumulateLatency(arch_->smem_latency_cycles * static_cast<double>(rounds));
}

LaneMask Ctx::SharedHashProbe(SmemPtr<uint32_t> table, uint32_t capacity,
                              const Lanes<uint32_t>& keys, uint32_t hash_mult,
                              uint32_t empty) {
  ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
  CountValu();
  CountValu();
  LaneMask found = 0;
  uint64_t rounds = 0;
  uint64_t lane_rounds = 0;
  ADGRAPH_VGPU_FOR_ACTIVE(i) {
    const uint32_t key = keys[i];
    uint32_t slot = (key * hash_mult) % capacity;
    uint64_t probes = 1;
    for (;;) {
      uint32_t current = smem_->Load<uint32_t>(table.offset + slot * 4);
      if (current == key) {
        found |= 1ull << i;
        break;
      }
      if (current == empty) break;
      slot = (slot + 1) % capacity;
      ADGRAPH_CHECK(++probes <= capacity) << "no empty slot in probe";
    }
    rounds = std::max(rounds, probes);
    lane_rounds += probes;
  }
  // Per round: one LDS load, two compares, loop branch, slot add+mod.
  counters_->warp_inst_issued += 6 * rounds;
  counters_->valu_warp_inst += 5 * rounds;
  counters_->shared_load_inst += rounds;
  counters_->smem_accesses += rounds;
  counters_->lane_ops += 3 * lane_rounds;
  counters_->smem_bytes += lane_rounds * 4;
  AccumulateLatency(arch_->smem_latency_cycles * static_cast<double>(rounds));
  return found;
}

void Ctx::SharedBlockFill(SmemPtr<uint32_t> base, uint32_t count,
                          uint32_t value) {
  ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
  uint64_t rounds = 0;
  uint64_t lane_stores = 0;
  ADGRAPH_VGPU_FOR_ACTIVE(i) {
    uint64_t mine = 0;
    for (uint32_t idx = warp_in_block_ * width_ + i; idx < count;
         idx += block_dim_) {
      smem_->Store<uint32_t>(base.offset + idx * 4, value);
      ++mine;
    }
    rounds = std::max(rounds, mine);
    lane_stores += mine;
  }
  // Per round: one LDS store + one index-increment VALU, conflict-free
  // (consecutive lanes hit distinct banks).
  counters_->warp_inst_issued += 2 * rounds;
  counters_->valu_warp_inst += rounds;
  counters_->shared_store_inst += rounds;
  counters_->smem_accesses += rounds;
  counters_->lane_ops += lane_stores;
  counters_->smem_bytes += lane_stores * 4;
}

void Ctx::AccountShared(const Lanes<uint64_t>& offsets, uint32_t access_bytes,
                        bool is_store) {
  counters_->warp_inst_issued += 1;
  if (is_store) {
    counters_->shared_store_inst += 1;
  } else {
    counters_->shared_load_inst += 1;
  }
  uint32_t degree = smem_->ConflictDegree(offsets, active_, access_bytes);
  counters_->smem_accesses += 1;
  if (degree > 1) counters_->smem_bank_conflict_extra += degree - 1;
  counters_->smem_bytes +=
      static_cast<uint64_t>(PopCount(active_)) * access_bytes;
  // Loads stall on the shared-memory latency; LDS (independent path) has a
  // higher base latency than NVIDIA's unified design (Hypothesis 4's win).
  if (!is_store) {
    AccumulateLatency(arch_->smem_latency_cycles * degree);
  }
}

}  // namespace adgraph::vgpu
