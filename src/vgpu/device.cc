#include "vgpu/device.h"

#include <algorithm>

#include "vgpu/mem/shared_mem.h"

namespace adgraph::vgpu {

namespace {
constexpr uint32_t kMaxBlockThreads = 1024;
}  // namespace

Device::Device(const ArchConfig& arch) : Device(arch, Options{}) {}

Device::Device(const ArchConfig& arch, Options options)
    : arch_(arch),
      options_(options),
      mem_(static_cast<uint64_t>(static_cast<double>(arch.dram_capacity_bytes) /
                                 std::max(options.memory_scale, 1e-9))) {
  // memory_scale > 1 shrinks capacity (scaled experiments); < 1 would grow.
  l1_.reserve(arch_.num_sms);
  for (uint32_t i = 0; i < arch_.num_sms; ++i) {
    l1_.push_back(std::make_unique<CacheModel>(
        arch_.l1_size_bytes, arch_.cache_line_bytes, arch_.l1_assoc));
  }
  // Uniform world scaling covers the capacity-sensitive shared cache too:
  // scaled experiments must preserve the (working set : L2) ratio that
  // drives the paper's large-graph crossover (Hypothesis 5).  Per-SM L1s
  // are latency-path resources and stay at hardware size.
  uint64_t l2_size = static_cast<uint64_t>(
      static_cast<double>(arch_.l2_size_bytes) /
      std::max(options.memory_scale, 1e-9));
  l2_ = std::make_unique<CacheModel>(l2_size, arch_.cache_line_bytes,
                                     arch_.l2_assoc);
  trace_track_ = trace::RegisterTrack("device " + arch_.name);
}

void Device::ClearCaches() {
  for (auto& cache : l1_) cache->Clear();
  l2_->Clear();
}

void Device::ResetCounters() {
  elapsed_ms_ = 0;
  transfer_ms_ = 0;
  kernel_log_.clear();
  ClearCaches();
}

Result<KernelStats> Device::Launch(std::string_view name, LaunchDims dims,
                                   const KernelFn& kernel) {
  if (dims.grid == 0 || dims.block == 0) {
    return Status::InvalidArgument("launch with empty grid or block");
  }
  if (dims.block > kMaxBlockThreads) {
    return Status::InvalidArgument("block size " + std::to_string(dims.block) +
                                   " exceeds limit " +
                                   std::to_string(kMaxBlockThreads));
  }
  if (dims.shared_bytes > arch_.smem_bytes_per_sm) {
    return Status::InvalidArgument(
        "requested " + std::to_string(dims.shared_bytes) +
        " shared bytes; " + arch_.name + " provides " +
        std::to_string(arch_.smem_bytes_per_sm) + " per " +
        (arch_.vendor == "NVIDIA" ? "SM" : "CU"));
  }

  trace::Span span(trace_track_, std::string(name), "kernel");

  KernelStats stats;
  stats.kernel_name = std::string(name);
  stats.grid = dims.grid;
  stats.block = dims.block;
  KernelCounters& counters = stats.counters;

  uint64_t l2_hits_before = l2_->hits();
  uint64_t l2_misses_before = l2_->misses();
  (void)l2_hits_before;
  (void)l2_misses_before;

  const uint32_t warps_per_block =
      (dims.block + arch_.warp_width - 1) / arch_.warp_width;

  // One shared-memory arena reused by every block of the launch: real
  // shared memory is uninitialized at block start, so carrying bytes over
  // is faithful (and avoids a per-block allocation on the hot path).
  SharedMemory smem(dims.shared_bytes, arch_.smem_banks);
  SharedMemory* smem_ptr = dims.shared_bytes > 0 ? &smem : nullptr;

  // Per-SM issue-work tally for the load-imbalance critical path.
  std::vector<uint64_t> sm_inst(arch_.num_sms, 0);

  // SALU work co-issues on SIMD machines (see timing.cc scalar_weight).
  const double scalar_weight =
      arch_.paradigm == Paradigm::kSimd ? 0.25 : 1.0;
  auto issue_work = [&]() {
    return static_cast<double>(counters.warp_inst_issued) +
           scalar_weight * static_cast<double>(counters.scalar_inst);
  };

  for (uint32_t block = 0; block < dims.grid; ++block) {
    const uint32_t sm = block % arch_.num_sms;
    const double inst_before = issue_work();

    // Build the block's warps.
    std::vector<std::unique_ptr<Ctx>> ctxs;
    std::vector<KernelTask> tasks;
    ctxs.reserve(warps_per_block);
    tasks.reserve(warps_per_block);
    for (uint32_t w = 0; w < warps_per_block; ++w) {
      ctxs.push_back(std::make_unique<Ctx>(
          &arch_, &options_.timing, &mem_, l1_[sm].get(), l2_.get(), smem_ptr,
          &counters, dims.grid, dims.block, block, w));
      tasks.push_back(kernel(*ctxs.back()));
    }
    counters.blocks_launched += 1;
    counters.warps_launched += warps_per_block;

    // Round-robin warp scheduler with barrier handling.
    for (;;) {
      uint32_t done = 0;
      uint32_t waiting = 0;
      for (uint32_t w = 0; w < warps_per_block; ++w) {
        if (tasks[w].done()) {
          ++done;
          continue;
        }
        if (ctxs[w]->at_barrier()) {
          ++waiting;
          continue;
        }
        tasks[w].Resume();
        if (tasks[w].done()) {
          ++done;
        } else if (ctxs[w]->at_barrier()) {
          ++waiting;
        }
      }
      if (done == warps_per_block) break;
      if (waiting == warps_per_block - done) {
        if (done > 0) {
          return Status::Deadlock(
              std::string(name) +
              ": some warps exited while others wait at a barrier");
        }
        // Everyone reached the barrier: release it.
        for (auto& ctx : ctxs) ctx->ClearBarrier();
        counters.barriers += 1;
      }
    }
    sm_inst[sm] += static_cast<uint64_t>(issue_work() - inst_before);
  }

  for (uint64_t inst : sm_inst) {
    stats.max_sm_inst = std::max(stats.max_sm_inst, inst);
  }
  if (dims.work_replication > 1) {
    stats.counters.Scale(dims.work_replication);
    stats.max_sm_inst *= dims.work_replication;
  }
  ComputeKernelTiming(arch_, options_.timing, &stats);
  elapsed_ms_ += stats.time_ms;
  kernel_log_.push_back(stats);
  if (span.active()) {
    // The KernelStats cycle breakdown rides along as span args — the
    // trace view of what Table 6 aggregates post-hoc.
    span.ArgNum("grid", static_cast<uint64_t>(dims.grid));
    span.ArgNum("block", static_cast<uint64_t>(dims.block));
    span.ArgNum("modeled_ms", stats.time_ms);
    span.ArgNum("cycles", stats.cycles);
    span.ArgNum("issue_cycles", stats.issue_cycles);
    span.ArgNum("valu_cycles", stats.valu_cycles);
    span.ArgNum("dram_cycles", stats.dram_cycles);
    span.ArgNum("l2_cycles", stats.l2_cycles);
    span.ArgNum("smem_cycles", stats.smem_cycles);
    span.ArgNum("exposed_latency_cycles", stats.exposed_latency_cycles);
    span.ArgNum("achieved_occupancy", stats.achieved_occupancy);
    span.ArgNum("warp_inst_issued", counters.warp_inst_issued);
    span.ArgNum("l2_hit_rate", counters.l2_hit_rate());
  }
  return stats;
}

}  // namespace adgraph::vgpu
