#include "vgpu/mem/cache.h"

#include <algorithm>

namespace adgraph::vgpu {

CacheModel::CacheModel(uint64_t size_bytes, uint32_t line_bytes,
                       uint32_t associativity)
    : line_bytes_(line_bytes == 0 ? 1 : line_bytes),
      assoc_(std::max<uint32_t>(associativity, 1)),
      num_sets_(size_bytes / (static_cast<uint64_t>(line_bytes_) * assoc_)) {
  ways_.resize(num_sets_ * assoc_);
}

bool CacheModel::Access(uint64_t addr) {
  if (num_sets_ == 0) {
    ++misses_;
    return false;
  }
  uint64_t line = addr / line_bytes_;
  uint64_t set = line % num_sets_;
  uint64_t tag = line / num_sets_;
  Way* base = &ways_[set * assoc_];
  ++stamp_;
  // Hit scan first (the common case); only a miss pays the victim scan.
  for (uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = stamp_;
      ++hits_;
      return true;
    }
  }
  Way* victim = base;
  for (uint32_t w = 1; w < assoc_; ++w) {
    if (!victim->valid) break;
    if (!base[w].valid || base[w].lru < victim->lru) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  ++misses_;
  return false;
}

void CacheModel::Clear() {
  for (auto& way : ways_) way = Way{};
}

}  // namespace adgraph::vgpu
