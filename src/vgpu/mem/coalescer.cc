#include "vgpu/mem/coalescer.h"

#include <algorithm>
#include <bit>

namespace adgraph::vgpu {

CoalesceResult Coalesce(const Lanes<uint64_t>& addrs, LaneMask active,
                        uint32_t access_bytes, uint32_t segment_bytes) {
  CoalesceResult result;
  if (active == 0) return result;
  uint64_t* out = result.segment_addrs.data();
  uint32_t n = 0;
  bool presorted = true;
  for (LaneMask m = active; m != 0; m &= m - 1) {
    uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    result.bytes_requested += access_bytes;
    // An access can straddle a segment boundary; cover every touched one.
    uint64_t first = addrs[lane] / segment_bytes;
    uint64_t last = (addrs[lane] + access_bytes - 1) / segment_bytes;
    for (uint64_t seg = first; seg <= last; ++seg) {
      uint64_t addr = seg * segment_bytes;
      if (n > 0 && addr < out[n - 1]) presorted = false;
      out[n++] = addr;
    }
  }
  // Sequential access patterns arrive sorted; skip the sort for them.
  if (!presorted) std::sort(out, out + n);
  result.num_segments = static_cast<uint32_t>(std::unique(out, out + n) - out);
  result.bytes_transferred =
      static_cast<uint64_t>(result.num_segments) * segment_bytes;
  return result;
}

}  // namespace adgraph::vgpu
