#include "vgpu/mem/address_space.h"

#include <algorithm>
#include <string>

namespace adgraph::vgpu {

namespace {
constexpr uint64_t kAlignment = 256;

uint64_t AlignUp(uint64_t n) { return (n + kAlignment - 1) & ~(kAlignment - 1); }
}  // namespace

AddressSpace::AddressSpace(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

void AddressSpace::EnsureBacking(uint64_t end) {
  if (backing_.size() < end) {
    // Grow in 4 MiB steps to avoid repeated reallocation.
    uint64_t target = std::max<uint64_t>(end, backing_.size() + (4ull << 20));
    target = std::min<uint64_t>(target, capacity_ + kAlignment);
    backing_.resize(std::max(end, target));
  }
}

Result<uint64_t> AddressSpace::Allocate(uint64_t bytes) {
  uint64_t size = AlignUp(std::max<uint64_t>(bytes, 1));
  if (used_ + size > capacity_) {
    return Status::OutOfMemory(
        "device allocation of " + std::to_string(bytes) + " bytes exceeds " +
        std::to_string(capacity_) + "-byte capacity (" +
        std::to_string(used_) + " in use)");
  }
  // First-fit over the free list.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= size) {
      uint64_t addr = it->first;
      uint64_t remaining = it->second - size;
      free_.erase(it);
      if (remaining > 0) free_[addr + size] = remaining;
      live_[addr] = Block{size};
      used_ += size;
      peak_used_ = std::max(peak_used_, used_);
      EnsureBacking(addr + size);
      return addr;
    }
  }
  // Bump allocation.  The bump pointer can pass `capacity_` when the free
  // list is fragmented, but `used_` still enforces the real budget; backing
  // memory is what we actually touch.
  uint64_t addr = bump_;
  bump_ += size;
  live_[addr] = Block{size};
  used_ += size;
  peak_used_ = std::max(peak_used_, used_);
  EnsureBacking(addr + size);
  return addr;
}

Status AddressSpace::Free(uint64_t addr) {
  if (addr == 0) return Status::OK();
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return Status::InvalidArgument("free of unknown device address " +
                                   std::to_string(addr));
  }
  uint64_t size = it->second.size;
  live_.erase(it);
  used_ -= size;
  // Insert into the free list, coalescing with neighbors.
  auto [pos, inserted] = free_.emplace(addr, size);
  ADGRAPH_CHECK(inserted);
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  return Status::OK();
}

void AddressSpace::Read(uint64_t addr, void* out, uint64_t bytes) const {
  if (bytes == 0) return;  // memcpy with a null `out` is UB even for 0 bytes
  ADGRAPH_CHECK(addr + bytes <= backing_.size())
      << "device read out of bounds: addr=" << addr << " bytes=" << bytes;
  std::memcpy(out, backing_.data() + addr, bytes);
}

void AddressSpace::Write(uint64_t addr, const void* data, uint64_t bytes) {
  if (bytes == 0) return;  // e.g. uploading an empty shard's CSR (null data())
  EnsureBacking(addr + bytes);
  std::memcpy(backing_.data() + addr, data, bytes);
}

void AddressSpace::Fill(uint64_t addr, uint8_t value, uint64_t bytes) {
  EnsureBacking(addr + bytes);
  std::memset(backing_.data() + addr, value, bytes);
}

}  // namespace adgraph::vgpu
