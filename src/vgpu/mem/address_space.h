#ifndef ADGRAPH_VGPU_MEM_ADDRESS_SPACE_H_
#define ADGRAPH_VGPU_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace adgraph::vgpu {

/// \brief Typed pointer into a simulated device's global address space.
///
/// `addr` is a byte offset; address 0 is reserved as the null pointer (the
/// allocator never hands it out).  DevPtr is meaningful only together with
/// the Device that produced it.
template <typename T>
struct DevPtr {
  uint64_t addr = 0;

  bool is_null() const { return addr == 0; }

  /// Pointer arithmetic in units of T.
  DevPtr operator+(uint64_t n) const { return DevPtr{addr + n * sizeof(T)}; }

  /// Reinterprets the pointee type (byte offset unchanged).
  template <typename U>
  DevPtr<U> Cast() const {
    return DevPtr<U>{addr};
  }
};

/// \brief Simulated device global memory: backing store plus a first-fit
/// free-list allocator with capacity accounting.
///
/// Capacity enforcement is what reproduces the paper's ESBV/twitter-mpi OOM
/// rows: allocations beyond the (scaled) Table 3 RAM volume fail with
/// StatusCode::kOutOfMemory.
class AddressSpace {
 public:
  /// `capacity_bytes` is the enforced device RAM volume.  Backing host
  /// memory grows lazily up to that size.
  explicit AddressSpace(uint64_t capacity_bytes);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Allocates `bytes` (256-byte aligned).  Zero-byte requests allocate one
  /// alignment unit so every allocation has a unique address.
  Result<uint64_t> Allocate(uint64_t bytes);

  /// Frees a previous allocation.  Freeing address 0 is a no-op; freeing an
  /// unknown address is a programmer error.
  Status Free(uint64_t addr);

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  /// Bytes still allocatable.  The allocator enforces only the used-bytes
  /// budget (the bump pointer may pass capacity), so free bytes fully
  /// determine whether an allocation of that size can succeed.
  uint64_t free_bytes() const { return capacity_ - used_; }
  uint64_t peak_used_bytes() const { return peak_used_; }
  size_t num_allocations() const { return live_.size(); }

  /// Raw byte access used by kernels and memcpy.  Addresses must lie inside
  /// a live allocation region (checked in debug builds).
  void Read(uint64_t addr, void* out, uint64_t bytes) const;
  void Write(uint64_t addr, const void* data, uint64_t bytes);
  void Fill(uint64_t addr, uint8_t value, uint64_t bytes);

  /// Typed single-element accessors for kernel lane operations.
  template <typename T>
  T Load(uint64_t addr) const {
    ADGRAPH_DCHECK(addr + sizeof(T) <= backing_.size());
    T value;
    std::memcpy(&value, backing_.data() + addr, sizeof(T));
    return value;
  }
  template <typename T>
  void Store(uint64_t addr, T value) {
    ADGRAPH_DCHECK(addr + sizeof(T) <= backing_.size());
    std::memcpy(backing_.data() + addr, &value, sizeof(T));
  }

 private:
  struct Block {
    uint64_t size;
  };

  void EnsureBacking(uint64_t end);

  uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t peak_used_ = 0;
  uint64_t bump_ = 256;  // address 0..255 reserved (null page)
  std::map<uint64_t, Block> live_;  // addr -> block
  std::map<uint64_t, uint64_t> free_;  // addr -> size, coalesced
  std::vector<uint8_t> backing_;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_MEM_ADDRESS_SPACE_H_
