#ifndef ADGRAPH_VGPU_MEM_SHARED_MEM_H_
#define ADGRAPH_VGPU_MEM_SHARED_MEM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "vgpu/lanes.h"

namespace adgraph::vgpu {

/// \brief Typed offset into a block's shared memory (NVIDIA "shared
/// memory" / AMD "LDS").  Offsets are bytes from the start of the block's
/// allocation; kernels lay out their shared arrays manually, as CUDA/HIP
/// kernels with `extern __shared__` do.
template <typename T>
struct SmemPtr {
  uint32_t offset = 0;
  SmemPtr operator+(uint32_t n) const {
    return SmemPtr{offset + n * static_cast<uint32_t>(sizeof(T))};
  }
  template <typename U>
  SmemPtr<U> Cast() const {
    return SmemPtr<U>{offset};
  }
};

/// \brief One thread block's shared memory / LDS: a byte buffer plus the
/// bank-conflict model.
///
/// Bank conflicts: shared memory is organized in `num_banks` 4-byte banks;
/// a warp-level access that maps two active lanes to different words of the
/// same bank serializes into multiple passes (the returned conflict degree).
class SharedMemory {
 public:
  SharedMemory(uint32_t size_bytes, uint32_t num_banks);

  uint32_t size_bytes() const { return static_cast<uint32_t>(data_.size()); }

  template <typename T>
  T Load(uint32_t offset) const {
    ADGRAPH_DCHECK(offset + sizeof(T) <= data_.size());
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }
  template <typename T>
  void Store(uint32_t offset, T value) {
    ADGRAPH_DCHECK(offset + sizeof(T) <= data_.size());
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  void Fill(uint8_t value) { std::fill(data_.begin(), data_.end(), value); }

  /// Number of serialized passes needed for one warp access with the given
  /// per-lane byte offsets (>= 1; 1 means conflict-free).  Lanes that hit
  /// the same word broadcast and do not conflict.
  uint32_t ConflictDegree(const Lanes<uint64_t>& offsets, LaneMask active,
                          uint32_t access_bytes) const;

 private:
  uint32_t num_banks_;
  std::vector<uint8_t> data_;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_MEM_SHARED_MEM_H_
