#include "vgpu/mem/shared_mem.h"

#include <algorithm>
#include <array>
#include <bit>

namespace adgraph::vgpu {

SharedMemory::SharedMemory(uint32_t size_bytes, uint32_t num_banks)
    : num_banks_(std::max<uint32_t>(num_banks, 1)), data_(size_bytes, 0) {}

uint32_t SharedMemory::ConflictDegree(const Lanes<uint64_t>& offsets,
                                      LaneMask active,
                                      uint32_t access_bytes) const {
  if (active == 0) return 0;
  // Fast path: single-word accesses whose banks are pairwise distinct are
  // conflict-free; detect with one bitmap pass.
  if (access_bytes <= 4 && num_banks_ <= 64) {
    uint64_t bank_bits = 0;
    bool distinct = true;
    for (LaneMask m = active; m != 0; m &= m - 1) {
      uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
      uint64_t bit = 1ull << ((offsets[lane] / 4) % num_banks_);
      if (bank_bits & bit) {
        distinct = false;
        break;
      }
      bank_bits |= bit;
    }
    if (distinct) return 1;
  }
  // Exact distinct-word counting per bank, allocation-free.  Each bank
  // remembers up to kRemembered distinct words; further unseen words are
  // assumed distinct (exact for the conflict degrees that matter; repeats
  // past the window are vanishingly rare in real access patterns).  This
  // runs once per shared-memory instruction — the simulator's hottest
  // shared path.
  constexpr uint32_t kRemembered = 4;
  constexpr uint32_t kMaxBanks = 64;
  std::array<uint8_t, kMaxBanks> count{};
  std::array<std::array<uint64_t, kRemembered>, kMaxBanks> seen;
  const uint32_t banks = std::min(num_banks_, kMaxBanks);
  const uint32_t words = std::max<uint32_t>(access_bytes / 4, 1);
  uint32_t degree = 1;
  for (LaneMask m = active; m != 0; m &= m - 1) {
    uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    uint64_t word0 = offsets[lane] / 4;
    for (uint32_t w = 0; w < words; ++w) {
      uint64_t word = word0 + w;
      uint32_t bank = static_cast<uint32_t>(word % banks);
      uint32_t n = count[bank];
      bool duplicate = false;
      for (uint32_t k = 0; k < std::min(n, kRemembered); ++k) {
        if (seen[bank][k] == word) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (n < kRemembered) seen[bank][n] = word;
      count[bank] = static_cast<uint8_t>(n + 1);
      degree = std::max<uint32_t>(degree, n + 1);
    }
  }
  return degree;
}

}  // namespace adgraph::vgpu
