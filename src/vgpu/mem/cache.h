#ifndef ADGRAPH_VGPU_MEM_CACHE_H_
#define ADGRAPH_VGPU_MEM_CACHE_H_

#include <cstdint>
#include <vector>

namespace adgraph::vgpu {

/// \brief Set-associative LRU cache model (tags only — data lives in the
/// AddressSpace; the cache decides hit/miss and eviction).
///
/// Used for the per-SM L1 and the device-wide L2.  Deterministic: hit/miss
/// outcomes depend only on the access sequence, which the simulator replays
/// in a fixed order.
class CacheModel {
 public:
  /// `size_bytes` is rounded down to a whole number of sets; a zero-sized
  /// cache never hits.
  CacheModel(uint64_t size_bytes, uint32_t line_bytes, uint32_t associativity);

  /// Touches the line containing `addr`; returns true on hit.  On miss the
  /// line is filled (evicting LRU).  Writes are write-allocate.
  bool Access(uint64_t addr);

  /// Invalidates all lines (between kernels if desired; graph kernels keep
  /// caches warm across launches of the same algorithm, as hardware does).
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    uint64_t tag = ~0ull;
    uint64_t lru = 0;  // last-access stamp
    bool valid = false;
  };

  uint32_t line_bytes_;
  uint32_t assoc_;
  uint64_t num_sets_;
  uint64_t stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Way> ways_;  // num_sets_ x assoc_
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_MEM_CACHE_H_
