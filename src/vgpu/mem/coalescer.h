#ifndef ADGRAPH_VGPU_MEM_COALESCER_H_
#define ADGRAPH_VGPU_MEM_COALESCER_H_

#include <array>
#include <cstdint>

#include "vgpu/lanes.h"

namespace adgraph::vgpu {

/// Result of coalescing one warp-level memory instruction.
///
/// Allocation-free: segments live in a fixed inline array (a 64-lane access
/// of up to 16 bytes can touch at most 128 segments).  This sits on the
/// hottest path of the simulator — one instance per memory instruction.
struct CoalesceResult {
  /// Hard bound: kMaxWarpWidth lanes x (access straddling one boundary).
  static constexpr uint32_t kMaxSegments = 2 * kMaxWarpWidth;

  /// Distinct memory segments the instruction touches, ascending.  One
  /// segment = one memory transaction.
  std::array<uint64_t, kMaxSegments> segment_addrs{};
  uint32_t num_segments = 0;
  uint64_t bytes_requested = 0;   ///< sum over active lanes of access size
  uint64_t bytes_transferred = 0; ///< segments x segment size

  uint32_t size() const { return num_segments; }
  uint64_t operator[](uint32_t i) const { return segment_addrs[i]; }
  const uint64_t* begin() const { return segment_addrs.data(); }
  const uint64_t* end() const { return segment_addrs.data() + num_segments; }
};

/// \brief Groups per-lane addresses into memory transactions (paper's
/// "irregular access" cost: scattered lanes touch many segments).
///
/// `segment_bytes` is the coalescing granularity (32 B sectors on modern
/// NVIDIA; we use the ArchConfig value for both vendors).  Efficiency
/// metrics (gld_efficiency) fall directly out of requested/transferred.
CoalesceResult Coalesce(const Lanes<uint64_t>& addrs, LaneMask active,
                        uint32_t access_bytes, uint32_t segment_bytes);

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_MEM_COALESCER_H_
