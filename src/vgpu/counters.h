#ifndef ADGRAPH_VGPU_COUNTERS_H_
#define ADGRAPH_VGPU_COUNTERS_H_

#include <cstdint>
#include <string>

namespace adgraph::vgpu {

/// \brief Raw hardware event counters collected during one kernel launch.
///
/// These are the ground truth behind both profiling "tools": the CUDA-style
/// metric view (ncu names: inst_issued, gld_efficiency, ...) and the
/// ROCm-style view (SQ_INSTS_VALU, MemUnitBusy, ...) are derived from the
/// same record (see prof/metrics.h), exactly because in this simulator —
/// unlike on real silicon (paper threat-to-validity #2) — both tools can
/// observe identical events.
struct KernelCounters {
  // --- Instruction issue ---------------------------------------------
  uint64_t warp_inst_issued = 0;    ///< warp/wavefront-level issues (all classes)
  uint64_t valu_warp_inst = 0;      ///< warp-level issues of VALU class only
  uint64_t lane_ops = 0;            ///< lane-level VALU operations executed
  uint64_t scalar_inst = 0;         ///< SALU ops (SIMD exec-mask management)
  uint64_t shared_load_inst = 0;    ///< warp-level shared/LDS loads
  uint64_t shared_store_inst = 0;   ///< warp-level shared/LDS stores
  uint64_t global_load_inst = 0;    ///< warp-level global loads
  uint64_t global_store_inst = 0;   ///< warp-level global stores
  uint64_t atomic_inst = 0;         ///< warp-level global atomics

  // --- Branching --------------------------------------------------------
  uint64_t branches = 0;            ///< conditional branches executed
  uint64_t divergent_branches = 0;  ///< branches where both paths had lanes
  uint64_t barriers = 0;            ///< block-level __syncthreads released

  // --- Global memory ----------------------------------------------------
  uint64_t global_ld_transactions = 0;
  uint64_t global_st_transactions = 0;
  uint64_t global_ld_bytes_requested = 0;   ///< sum of lane access sizes
  uint64_t global_ld_bytes_transferred = 0; ///< segments x segment size
  uint64_t global_st_bytes_requested = 0;
  uint64_t global_st_bytes_transferred = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t dram_read_bytes = 0;
  uint64_t dram_write_bytes = 0;

  // --- Shared memory / LDS -----------------------------------------------
  uint64_t smem_accesses = 0;            ///< warp-level shared transactions
  uint64_t smem_bank_conflict_extra = 0; ///< extra serialization passes
  uint64_t smem_bytes = 0;

  // --- Latency / divergence timing feed -----------------------------------
  double memory_latency_cycles = 0;      ///< accumulated unhidden latency
  double simt_overlap_saved_cycles = 0;  ///< latency hidden by SIMT ITS

  // --- Peer interconnect (multi-device partitioned execution) -------------
  uint64_t peer_bytes_sent = 0;      ///< bytes shipped to other devices
  uint64_t peer_bytes_received = 0;  ///< bytes arriving from other devices
  uint64_t peer_exchanges = 0;       ///< bulk-synchronous exchange rounds

  // --- Loop / load-imbalance bookkeeping -----------------------------------
  uint64_t loop_lane_iters_possible = 0;  ///< max-trip x active lanes
  uint64_t loop_lane_iters_useful = 0;    ///< actual per-lane trips

  // --- Launch shape --------------------------------------------------------
  uint64_t blocks_launched = 0;
  uint64_t warps_launched = 0;

  /// Accumulates `other` into this record (used to merge per-kernel records
  /// into per-algorithm aggregates).
  void Merge(const KernelCounters& other);

  /// Multiplies every event count by `factor` — extrapolation step of
  /// sampled simulation (LaunchDims::work_replication).
  void Scale(uint64_t factor);

  /// Fraction of lane-loop slots that did useful work (1 = perfectly
  /// balanced warps); feeds achieved_occupancy / VALUBusy.
  double loop_balance() const {
    if (loop_lane_iters_possible == 0) return 1.0;
    return static_cast<double>(loop_lane_iters_useful) /
           static_cast<double>(loop_lane_iters_possible);
  }

  /// Fraction of executed branches where both paths kept active lanes —
  /// the paper's divergence signal (Table 6 discussion); what the per-job
  /// profile and the serve-path histograms report.
  double divergent_branch_ratio() const {
    return branches == 0
               ? 0.0
               : static_cast<double>(divergent_branches) /
                     static_cast<double>(branches);
  }

  double l1_hit_rate() const {
    uint64_t total = l1_hits + l1_misses;
    return total == 0 ? 0.0 : static_cast<double>(l1_hits) / total;
  }
  double l2_hit_rate() const {
    uint64_t total = l2_hits + l2_misses;
    return total == 0 ? 0.0 : static_cast<double>(l2_hits) / total;
  }

  /// Coalescing quality of global loads: requested/transferred bytes.
  double gld_efficiency() const {
    if (global_ld_bytes_transferred == 0) return 1.0;
    return static_cast<double>(global_ld_bytes_requested) /
           static_cast<double>(global_ld_bytes_transferred);
  }
  double gst_efficiency() const {
    if (global_st_bytes_transferred == 0) return 1.0;
    return static_cast<double>(global_st_bytes_requested) /
           static_cast<double>(global_st_bytes_transferred);
  }
};

/// \brief One launched kernel's identity, counters and timing result.
struct KernelStats {
  std::string kernel_name;
  uint32_t grid = 0;
  uint32_t block = 0;
  KernelCounters counters;
  /// Issue work (warp instructions + scalar ops) of the busiest SM — the
  /// load-imbalance critical path (hub-dominated kernels run as slow as
  /// their slowest SM, not as their aggregate).
  uint64_t max_sm_inst = 0;
  double cycles = 0;
  double time_ms = 0;
  double achieved_occupancy = 0;  ///< [0,1]
  // Timing component breakdown (cycles), for profiling metrics.
  double issue_cycles = 0;
  double valu_cycles = 0;
  double dram_cycles = 0;
  double l2_cycles = 0;
  double smem_cycles = 0;
  double exposed_latency_cycles = 0;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_COUNTERS_H_
