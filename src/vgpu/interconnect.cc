#include "vgpu/interconnect.h"

#include <algorithm>
#include <cmath>

#include "trace/trace.h"
#include "util/logging.h"

namespace adgraph::vgpu {

InterconnectConfig PciePreset() {
  InterconnectConfig c;
  c.name = "pcie";
  c.link_gbps = 16.0;
  c.latency_us = 5.0;
  return c;
}

InterconnectConfig NvlinkPreset() {
  InterconnectConfig c;
  c.name = "nvlink";
  c.link_gbps = 300.0;
  c.latency_us = 1.3;
  return c;
}

Result<InterconnectConfig> InterconnectPresetByName(const std::string& name) {
  if (name == "pcie") return PciePreset();
  if (name == "nvlink") return NvlinkPreset();
  return Status::NotFound("unknown interconnect preset '" + name +
                          "' (expected pcie or nvlink)");
}

Status ValidateInterconnectConfig(const InterconnectConfig& config) {
  if (!std::isfinite(config.link_gbps) || config.link_gbps <= 0) {
    return Status::InvalidArgument("interconnect '" + config.name +
                                   "': link_gbps must be positive and finite");
  }
  if (!std::isfinite(config.latency_us) || config.latency_us < 0) {
    return Status::InvalidArgument(
        "interconnect '" + config.name +
        "': latency_us must be non-negative and finite");
  }
  return Status::OK();
}

Interconnect::Interconnect(uint32_t num_devices, InterconnectConfig config)
    : num_devices_(num_devices),
      config_(std::move(config)),
      pending_(static_cast<size_t>(num_devices) * num_devices, 0),
      pair_bytes_(static_cast<size_t>(num_devices) * num_devices, 0) {
  ADGRAPH_CHECK(num_devices > 0) << "interconnect over an empty pool";
  trace_track_ = trace::RegisterTrack("interconnect " + config_.name);
}

void Interconnect::AccountTransfer(uint32_t src, uint32_t dst,
                                   uint64_t bytes) {
  ADGRAPH_CHECK(src < num_devices_ && dst < num_devices_)
      << "peer transfer outside the device pool";
  if (src == dst || bytes == 0) return;
  pending_[static_cast<size_t>(src) * num_devices_ + dst] += bytes;
}

Interconnect::RoundStats Interconnect::EndRound(const std::string& label) {
  RoundStats round;
  uint64_t busiest_link = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    round.bytes += pending_[i];
    busiest_link = std::max(busiest_link, pending_[i]);
    pair_bytes_[i] += pending_[i];
  }
  if (round.bytes > 0) {
    // Links drain in parallel; the round completes when the busiest
    // directed pair finishes: latency + bytes / bandwidth.
    round.modeled_ms = config_.latency_us * 1e-3 +
                       static_cast<double>(busiest_link) /
                           (config_.link_gbps * 1e6);
    if (trace::Enabled()) {
      trace::Span span(trace_track_, "exchange:" + label, "exchange");
      span.ArgNum("bytes", round.bytes);
      span.ArgNum("busiest_link_bytes", busiest_link);
      span.ArgNum("modeled_ms", round.modeled_ms);
      span.End();
    }
    total_rounds_ += 1;
  }
  total_bytes_ += round.bytes;
  total_modeled_ms_ += round.modeled_ms;
  std::fill(pending_.begin(), pending_.end(), 0);
  return round;
}

KernelCounters Interconnect::CounterRecord() const {
  KernelCounters counters;
  counters.peer_bytes_sent = total_bytes_;
  counters.peer_bytes_received = total_bytes_;
  counters.peer_exchanges = total_rounds_;
  return counters;
}

}  // namespace adgraph::vgpu
