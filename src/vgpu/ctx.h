#ifndef ADGRAPH_VGPU_CTX_H_
#define ADGRAPH_VGPU_CTX_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <type_traits>

#include "util/logging.h"
#include "vgpu/arch.h"
#include "vgpu/counters.h"
#include "vgpu/lanes.h"
#include "vgpu/mem/address_space.h"
#include "vgpu/mem/cache.h"
#include "vgpu/mem/shared_mem.h"
#include "vgpu/timing.h"

namespace adgraph::vgpu {

/// Iterates `i` over the set bits of the current active mask (hot path:
/// every DSL op touches only live lanes instead of scanning the full warp).
#define ADGRAPH_VGPU_FOR_ACTIVE(i)                                        \
  for (::adgraph::vgpu::LaneMask adg_m_ = active_; adg_m_ != 0;           \
       adg_m_ &= adg_m_ - 1)                                              \
    if (const uint32_t i =                                                \
            static_cast<uint32_t>(std::countr_zero(adg_m_));             \
        true)

/// \brief Per-warp execution context: the device-side programming DSL.
///
/// A kernel coroutine receives a Ctx and expresses its program through it.
/// Every DSL call (a) computes the functional result for all active lanes,
/// (b) increments the hardware event counters, and (c) feeds the analytic
/// timing model — so profiling metrics and runtimes fall out of ordinary
/// execution with no separate trace replay.
///
/// Control-flow rules (mirroring real GPU semantics):
///  * `If`/`IfElse`/`For`/`While` manage the active-lane mask; divergence
///    cost depends on the architecture paradigm (SIMT vs SIMD).
///  * `co_await c.Sync()` is a block barrier and must be reached in uniform
///    control flow (checked at runtime), like `__syncthreads()`.
class Ctx {
 public:
  Ctx(const ArchConfig* arch, const TimingParams* params, AddressSpace* global,
      CacheModel* l1, CacheModel* l2, SharedMemory* smem,
      KernelCounters* counters, uint32_t grid_dim, uint32_t block_dim,
      uint32_t block_id, uint32_t warp_in_block)
      : arch_(arch),
        params_(params),
        global_(global),
        l1_(l1),
        l2_(l2),
        smem_(smem),
        counters_(counters),
        grid_dim_(grid_dim),
        block_dim_(block_dim),
        block_id_(block_id),
        warp_in_block_(warp_in_block) {
    width_ = arch_->warp_width;
    uint32_t first_thread = warp_in_block_ * width_;
    uint32_t live = block_dim_ > first_thread
                        ? std::min(width_, block_dim_ - first_thread)
                        : 0;
    entry_mask_ = FullMask(live);
    active_ = entry_mask_;
  }

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // ====================== Identity & shape ==============================

  uint32_t width() const { return width_; }
  uint32_t block_id() const { return block_id_; }
  uint32_t block_dim() const { return block_dim_; }
  uint32_t grid_dim() const { return grid_dim_; }
  uint32_t warp_in_block() const { return warp_in_block_; }
  LaneMask ActiveMask() const { return active_; }

  /// Lane index within the warp (0..width-1); free, like reading a sreg.
  Lanes<uint32_t> LaneId() const {
    Lanes<uint32_t> out;
    for (uint32_t i = 0; i < width_; ++i) out[i] = i;
    return out;
  }

  /// blockIdx.x * blockDim.x + threadIdx.x
  Lanes<uint32_t> GlobalThreadId() const {
    Lanes<uint32_t> out;
    uint32_t base = block_id_ * block_dim_ + warp_in_block_ * width_;
    for (uint32_t i = 0; i < width_; ++i) out[i] = base + i;
    return out;
  }

  /// threadIdx.x
  Lanes<uint32_t> BlockThreadId() const {
    Lanes<uint32_t> out;
    uint32_t base = warp_in_block_ * width_;
    for (uint32_t i = 0; i < width_; ++i) out[i] = base + i;
    return out;
  }

  /// Total threads in the grid (host scalar).
  uint64_t GridThreads() const {
    return static_cast<uint64_t>(grid_dim_) * block_dim_;
  }

  // ====================== Constants ====================================

  /// Broadcast of an immediate; free (folded into consuming instructions).
  template <typename T>
  Lanes<T> Splat(T value) const {
    return Lanes<T>::Splat(value);
  }

  // ====================== Arithmetic (VALU) ==============================

#define ADGRAPH_VGPU_BINOP(Name, expr)                                     \
  template <typename T>                                                    \
  Lanes<T> Name(const Lanes<T>& a, const Lanes<T>& b) {                    \
    CountValu();                                                           \
    Lanes<T> out;                                                          \
    ADGRAPH_VGPU_FOR_ACTIVE(i) {                                           \
      const T x = a[i];                                                    \
      const T y = b[i];                                                    \
      out[i] = (expr);                                                     \
    }                                                                      \
    return out;                                                            \
  }                                                                        \
  template <typename T>                                                    \
  Lanes<T> Name(const Lanes<T>& a, T scalar) {                             \
    return Name(a, Splat(scalar));                                         \
  }

  ADGRAPH_VGPU_BINOP(Add, x + y)
  ADGRAPH_VGPU_BINOP(Sub, x - y)
  ADGRAPH_VGPU_BINOP(Mul, x* y)
  ADGRAPH_VGPU_BINOP(Div, y == T{} ? T{} : x / y)
  ADGRAPH_VGPU_BINOP(Min, std::min(x, y))
  ADGRAPH_VGPU_BINOP(Max, std::max(x, y))
#undef ADGRAPH_VGPU_BINOP

#define ADGRAPH_VGPU_INT_BINOP(Name, expr)                                 \
  template <typename T>                                                    \
  Lanes<T> Name(const Lanes<T>& a, const Lanes<T>& b) {                    \
    static_assert(std::is_integral_v<T>);                                  \
    CountValu();                                                           \
    Lanes<T> out;                                                          \
    ADGRAPH_VGPU_FOR_ACTIVE(i) {                                           \
      const T x = a[i];                                                    \
      const T y = b[i];                                                    \
      out[i] = (expr);                                                     \
    }                                                                      \
    return out;                                                            \
  }                                                                        \
  template <typename T>                                                    \
  Lanes<T> Name(const Lanes<T>& a, T scalar) {                             \
    return Name(a, Splat(scalar));                                         \
  }

  ADGRAPH_VGPU_INT_BINOP(Rem, y == T{} ? T{} : x % y)
  ADGRAPH_VGPU_INT_BINOP(BitAnd, x& y)
  ADGRAPH_VGPU_INT_BINOP(BitOr, x | y)
  ADGRAPH_VGPU_INT_BINOP(BitXor, x ^ y)
  ADGRAPH_VGPU_INT_BINOP(Shl, static_cast<T>(x << y))
  ADGRAPH_VGPU_INT_BINOP(Shr, static_cast<T>(x >> y))
#undef ADGRAPH_VGPU_INT_BINOP

  /// Count of trailing zeros per lane (find-first-set; one VALU op).
  /// 64 for a zero input, like the hardware instruction.
  template <typename T>
  Lanes<uint32_t> Ctz(const Lanes<T>& a) {
    static_assert(std::is_integral_v<T>);
    CountValu();
    Lanes<uint32_t> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      out[i] = a[i] == T{0}
                   ? static_cast<uint32_t>(sizeof(T) * 8)
                   : static_cast<uint32_t>(std::countr_zero(
                         static_cast<std::make_unsigned_t<T>>(a[i])));
    }
    return out;
  }

  /// Lane-wise bitwise complement (one VALU op).
  template <typename T>
  Lanes<T> BitNot(const Lanes<T>& a) {
    static_assert(std::is_integral_v<T>);
    CountValu();
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) { out[i] = static_cast<T>(~a[i]); }
    return out;
  }

  /// Lane-wise type conversion (counts one VALU instruction).
  template <typename To, typename From>
  Lanes<To> Cast(const Lanes<From>& a) {
    CountValu();
    Lanes<To> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) { out[i] = static_cast<To>(a[i]); }
    return out;
  }

  // ====================== Comparisons -> predicate masks =================

#define ADGRAPH_VGPU_CMP(Name, op)                                         \
  template <typename T>                                                    \
  LaneMask Name(const Lanes<T>& a, const Lanes<T>& b) {                    \
    CountValu();                                                           \
    LaneMask m = 0;                                                        \
    ADGRAPH_VGPU_FOR_ACTIVE(i) {                                           \
      if (a[i] op b[i]) m |= 1ull << i;                                    \
    }                                                                      \
    return m;                                                              \
  }                                                                        \
  template <typename T>                                                    \
  LaneMask Name(const Lanes<T>& a, T scalar) {                             \
    return Name(a, Splat(scalar));                                         \
  }

  ADGRAPH_VGPU_CMP(Lt, <)
  ADGRAPH_VGPU_CMP(Le, <=)
  ADGRAPH_VGPU_CMP(Gt, >)
  ADGRAPH_VGPU_CMP(Ge, >=)
  ADGRAPH_VGPU_CMP(Eq, ==)
  ADGRAPH_VGPU_CMP(Ne, !=)
#undef ADGRAPH_VGPU_CMP

  /// Complement within the current active set (free mask algebra).
  LaneMask NotMask(LaneMask m) const { return active_ & ~m; }

  /// Writes `src` into `*dst` for *active lanes only* (a register move —
  /// free).  Inside `If`/`For` bodies plain C++ assignment would clobber
  /// the inactive lanes of an outer variable; use Assign instead.
  template <typename T>
  void Assign(Lanes<T>* dst, const Lanes<T>& src) const {
    ADGRAPH_VGPU_FOR_ACTIVE(i) { (*dst)[i] = src[i]; }
  }

  /// Lane-wise select: m ? a : b (predication, no divergence).
  template <typename T>
  Lanes<T> Select(LaneMask m, const Lanes<T>& a, const Lanes<T>& b) {
    CountValu();
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) { out[i] = LaneActive(m, i) ? a[i] : b[i]; }
    return out;
  }

  // ====================== Warp votes & collectives =======================

  /// True if any active lane's bit is set (warp vote, one instruction).
  bool Any(LaneMask m) {
    CountValu();
    return (m & active_) != 0;
  }
  /// True if every active lane's bit is set.
  bool All(LaneMask m) {
    CountValu();
    return (m & active_) == active_;
  }
  /// The predicate mask itself (like __ballot_sync).
  LaneMask Ballot(LaneMask m) {
    CountValu();
    return m & active_;
  }

  /// Butterfly reduction over active lanes; result broadcast host-side.
  template <typename T>
  T ReduceAdd(const Lanes<T>& a) {
    CountReduction();
    T sum{};
    ADGRAPH_VGPU_FOR_ACTIVE(i) { sum += a[i]; }
    return sum;
  }
  template <typename T>
  T ReduceMax(const Lanes<T>& a) {
    CountReduction();
    bool first = true;
    T best{};
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      best = first ? a[i] : std::max(best, a[i]);
      first = false;
    }
    return best;
  }
  template <typename T>
  T ReduceMin(const Lanes<T>& a) {
    CountReduction();
    bool first = true;
    T best{};
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      best = first ? a[i] : std::min(best, a[i]);
      first = false;
    }
    return best;
  }

  /// First-active-lane value read back to the host side of the kernel
  /// (readfirstlane-style scalarization; one scalar instruction).  Only
  /// meaningful for warp-uniform values (uniform loads, block ids).
  template <typename T>
  T ScalarOf(const Lanes<T>& a) {
    counters_->scalar_inst += 1;
    ADGRAPH_CHECK(active_ != 0) << "ScalarOf with no active lanes";
    return a[static_cast<uint32_t>(std::countr_zero(active_))];
  }

  /// Rank of each active lane among the active lanes (0-based), e.g. for
  /// warp-aggregated queue reservation.  Counts one instruction (computed
  /// from a ballot + popc on hardware).
  Lanes<uint32_t> RankAmong(LaneMask m) {
    CountValu();
    Lanes<uint32_t> out;
    uint32_t rank = 0;
    for (uint32_t i = 0; i < width_; ++i) {
      if (LaneActive(m & active_, i)) out[i] = rank++;
    }
    return out;
  }

  /// Value held by `src_lane`, broadcast to all active lanes (__shfl).
  template <typename T>
  Lanes<T> BroadcastLane(const Lanes<T>& a, uint32_t src_lane) {
    CountValu();
    return Splat(a[src_lane]);
  }

  // ====================== Global memory ==================================

  /// Gather: per-lane load of base[idx[lane]].
  template <typename T, typename I>
  Lanes<T> Load(DevPtr<T> base, const Lanes<I>& idx) {
    static_assert(std::is_integral_v<I>);
    Lanes<uint64_t> addrs = LaneAddrs(base.addr, idx, sizeof(T));
    AccountGlobal(addrs, sizeof(T), /*is_store=*/false);
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) { out[i] = global_->Load<T>(addrs[i]); }
    return out;
  }

  /// Scatter: per-lane store of val[lane] to base[idx[lane]].
  template <typename T, typename I>
  void Store(DevPtr<T> base, const Lanes<I>& idx, const Lanes<T>& val) {
    static_assert(std::is_integral_v<I>);
    Lanes<uint64_t> addrs = LaneAddrs(base.addr, idx, sizeof(T));
    AccountGlobal(addrs, sizeof(T), /*is_store=*/true);
    ADGRAPH_VGPU_FOR_ACTIVE(i) { global_->Store<T>(addrs[i], val[i]); }
  }

  /// Atomic fetch-add on global memory; returns per-lane old values.
  /// Same-address lanes are serialized in lane order (deterministic).
  template <typename T, typename I>
  Lanes<T> AtomicAdd(DevPtr<T> base, const Lanes<I>& idx,
                     const Lanes<T>& val) {
    return AtomicRmw(base, idx, val,
                     [](T old_value, T operand) { return old_value + operand; });
  }
  template <typename T, typename I>
  Lanes<T> AtomicMin(DevPtr<T> base, const Lanes<I>& idx,
                     const Lanes<T>& val) {
    return AtomicRmw(base, idx, val, [](T old_value, T operand) {
      return std::min(old_value, operand);
    });
  }
  template <typename T, typename I>
  Lanes<T> AtomicMax(DevPtr<T> base, const Lanes<I>& idx,
                     const Lanes<T>& val) {
    return AtomicRmw(base, idx, val, [](T old_value, T operand) {
      return std::max(old_value, operand);
    });
  }
  template <typename T, typename I>
  Lanes<T> AtomicOr(DevPtr<T> base, const Lanes<I>& idx,
                    const Lanes<T>& val) {
    static_assert(std::is_integral_v<T>);
    return AtomicRmw(base, idx, val,
                     [](T old_value, T operand) { return old_value | operand; });
  }
  template <typename T, typename I>
  Lanes<T> AtomicExch(DevPtr<T> base, const Lanes<I>& idx,
                      const Lanes<T>& val) {
    return AtomicRmw(base, idx, val, [](T, T operand) { return operand; });
  }

  /// Atomic compare-and-swap; returns per-lane old values.
  template <typename T, typename I>
  Lanes<T> AtomicCas(DevPtr<T> base, const Lanes<I>& idx,
                     const Lanes<T>& expected, const Lanes<T>& desired) {
    static_assert(std::is_integral_v<I>);
    Lanes<uint64_t> addrs = LaneAddrs(base.addr, idx, sizeof(T));
    AccountAtomic(addrs, sizeof(T));
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      T old_value = global_->Load<T>(addrs[i]);
      out[i] = old_value;
      if (old_value == expected[i]) global_->Store<T>(addrs[i], desired[i]);
    }
    return out;
  }

  // ====================== Shared memory / LDS ============================

  template <typename T, typename I>
  Lanes<T> SharedLoad(SmemPtr<T> base, const Lanes<I>& idx) {
    static_assert(std::is_integral_v<I>);
    ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
    Lanes<uint64_t> offs = LaneAddrs(base.offset, idx, sizeof(T));
    AccountShared(offs, sizeof(T), /*is_store=*/false);
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      out[i] = smem_->Load<T>(static_cast<uint32_t>(offs[i]));
    }
    return out;
  }

  template <typename T, typename I>
  void SharedStore(SmemPtr<T> base, const Lanes<I>& idx, const Lanes<T>& val) {
    static_assert(std::is_integral_v<I>);
    ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
    Lanes<uint64_t> offs = LaneAddrs(base.offset, idx, sizeof(T));
    AccountShared(offs, sizeof(T), /*is_store=*/true);
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      smem_->Store<T>(static_cast<uint32_t>(offs[i]), val[i]);
    }
  }

  /// Atomic fetch-add on shared memory (serialized per word, lane order).
  template <typename T, typename I>
  Lanes<T> SharedAtomicAdd(SmemPtr<T> base, const Lanes<I>& idx,
                           const Lanes<T>& val) {
    static_assert(std::is_integral_v<I>);
    ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
    Lanes<uint64_t> offs = LaneAddrs(base.offset, idx, sizeof(T));
    AccountShared(offs, sizeof(T), /*is_store=*/true);
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      uint32_t off = static_cast<uint32_t>(offs[i]);
      T old_value = smem_->Load<T>(off);
      out[i] = old_value;
      smem_->Store<T>(off, static_cast<T>(old_value + val[i]));
    }
    return out;
  }

  /// Atomic compare-and-swap on shared memory (hash-table insertion, e.g.
  /// the TC adjacency set); returns per-lane old values.  Same-word lanes
  /// serialize in lane order.
  template <typename T, typename I>
  Lanes<T> SharedAtomicCas(SmemPtr<T> base, const Lanes<I>& idx,
                           const Lanes<T>& expected, const Lanes<T>& desired) {
    static_assert(std::is_integral_v<T> && std::is_integral_v<I>);
    ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
    Lanes<uint64_t> offs = LaneAddrs(base.offset, idx, sizeof(T));
    AccountShared(offs, sizeof(T), /*is_store=*/true);
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      uint32_t off = static_cast<uint32_t>(offs[i]);
      T old_value = smem_->Load<T>(off);
      out[i] = old_value;
      if (old_value == expected[i]) smem_->Store<T>(off, desired[i]);
    }
    return out;
  }

  /// Atomic bitwise-or on shared memory (bitmap building, e.g. TC).
  template <typename T, typename I>
  Lanes<T> SharedAtomicOr(SmemPtr<T> base, const Lanes<I>& idx,
                          const Lanes<T>& val) {
    static_assert(std::is_integral_v<T> && std::is_integral_v<I>);
    ADGRAPH_CHECK(smem_ != nullptr) << "kernel launched without shared memory";
    Lanes<uint64_t> offs = LaneAddrs(base.offset, idx, sizeof(T));
    AccountShared(offs, sizeof(T), /*is_store=*/true);
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      uint32_t off = static_cast<uint32_t>(offs[i]);
      T old_value = smem_->Load<T>(off);
      out[i] = old_value;
      smem_->Store<T>(off, static_cast<T>(old_value | val[i]));
    }
    return out;
  }

  uint32_t shared_size_bytes() const {
    return smem_ ? smem_->size_bytes() : 0;
  }

  // ============== Fused shared-memory hash-set operations ===============
  //
  // Functionally identical to the open-addressing DSL loops they replace
  // (multiplicative hash, linear probing, lockstep rounds to the slowest
  // lane) and charged with the same instruction mix — fused only to keep
  // the simulator's wall-clock cost off the per-op path.  These are the
  // inner loops of set-intersection triangle counting.

  /// Inserts each active lane's key into the table (u32 slots, `empty`
  /// sentinel).  Same-slot collisions probe linearly; lane order resolves
  /// races deterministically.
  void SharedHashInsert(SmemPtr<uint32_t> table, uint32_t capacity,
                        const Lanes<uint32_t>& keys, uint32_t hash_mult,
                        uint32_t empty);

  /// Probes for each active lane's key; returns the mask of lanes whose
  /// key is present.  The table must have at least one `empty` slot.
  LaneMask SharedHashProbe(SmemPtr<uint32_t> table, uint32_t capacity,
                           const Lanes<uint32_t>& keys, uint32_t hash_mult,
                           uint32_t empty);

  /// Block-cooperative fill: this warp stores `value` to elements
  /// base[warp_in_block*width + lane + k*block_dim] below `count`.  Called
  /// from every warp (uniform control flow) + Sync, the block covers the
  /// whole range — the fused equivalent of the strided clear loop.
  void SharedBlockFill(SmemPtr<uint32_t> base, uint32_t count, uint32_t value);

  // ====================== Structured control flow ========================

  /// Executes `body` with the active mask narrowed to `cond`; skipped
  /// entirely when no lane takes it.  Divergence costs depend on paradigm.
  template <typename F>
  void If(LaneMask cond, F&& body) {
    cond &= active_;
    LaneMask not_taken = active_ & ~cond;
    AccountBranch(cond != 0 && not_taken != 0);
    if (cond == 0) return;
    PushMask(cond, /*divergent=*/not_taken != 0);
    body(*this);
    PopMask();
  }

  /// Two-sided branch; each side runs only if it has lanes.
  template <typename FT, typename FE>
  void IfElse(LaneMask cond, FT&& then_body, FE&& else_body) {
    cond &= active_;
    LaneMask not_taken = active_ & ~cond;
    bool divergent = cond != 0 && not_taken != 0;
    AccountBranch(divergent);
    if (cond != 0) {
      PushMask(cond, divergent);
      then_body(*this);
      PopMask();
    }
    if (not_taken != 0) {
      PushMask(not_taken, divergent);
      else_body(*this);
      PopMask();
    }
  }

  /// Lockstep counted loop with per-lane bounds [begin, end).  The warp
  /// iterates to the *maximum* trip count; lanes past their bound idle
  /// (intra-warp load imbalance — worse at wavefront width 64).
  /// `body(ctx, iter)` gets the per-lane induction value.
  template <typename I, typename F>
  void For(const Lanes<I>& begin, const Lanes<I>& end, F&& body) {
    static_assert(std::is_integral_v<I>);
    uint64_t max_trip = 0;
    uint64_t useful = 0;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      uint64_t trips =
          end[i] > begin[i] ? static_cast<uint64_t>(end[i] - begin[i]) : 0;
      max_trip = std::max(max_trip, trips);
      useful += trips;
    }
    counters_->loop_lane_iters_possible += max_trip * PopCount(active_);
    counters_->loop_lane_iters_useful += useful;
    if (max_trip == 0) return;

    Lanes<I> iter = begin;
    for (uint64_t t = 0; t < max_trip; ++t) {
      // Loop bookkeeping: compare + increment execute on the whole warp
      // every iteration, including for lanes that already finished.
      CountValu();
      CountValu();
      LaneMask m = 0;
      ADGRAPH_VGPU_FOR_ACTIVE(i) {
        if (iter[i] < end[i]) m |= 1ull << i;
      }
      bool divergent = m != active_;
      PushMask(m, divergent);
      body(*this, iter);
      PopMask();
      ADGRAPH_VGPU_FOR_ACTIVE(i) { ++iter[i]; }
    }
  }

  /// Data-dependent loop: `pred(ctx)` yields the continue-mask; `body`
  /// runs while any lane continues.  Bounded by a large iteration guard to
  /// surface accidental infinite loops in kernels.
  template <typename P, typename F>
  void While(P&& pred, F&& body) {
    uint64_t guard = 0;
    for (;;) {
      LaneMask m = pred(*this) & active_;
      AccountBranch(m != 0 && m != active_);
      if (m == 0) return;
      PushMask(m, m != active_);
      body(*this);
      PopMask();
      ADGRAPH_CHECK(++guard < (1ull << 34)) << "runaway While loop in kernel";
    }
  }

  // ====================== Block barrier ==================================

  /// Awaitable returned by Sync(); suspends the warp until every warp of
  /// the block reaches the barrier.
  struct BarrierAwaiter {
    Ctx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {
      ctx->at_barrier_ = true;
    }
    void await_resume() const noexcept {}
  };

  /// Block-level barrier (`__syncthreads()`); must be awaited in uniform
  /// control flow: `co_await c.Sync();`.
  BarrierAwaiter Sync() {
    ADGRAPH_CHECK(divergence_depth_ == 0)
        << "Sync() inside divergent control flow (kernel bug)";
    counters_->warp_inst_issued += 1;
    return BarrierAwaiter{this};
  }

  // Scheduler interface (Device::Launch).
  bool at_barrier() const { return at_barrier_; }
  void ClearBarrier() { at_barrier_ = false; }

 private:
  template <typename I>
  Lanes<uint64_t> LaneAddrs(uint64_t base, const Lanes<I>& idx,
                            uint64_t elem_size) const {
    Lanes<uint64_t> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      out[i] = base + static_cast<uint64_t>(idx[i]) * elem_size;
    }
    return out;
  }

  template <typename T, typename I, typename F>
  Lanes<T> AtomicRmw(DevPtr<T> base, const Lanes<I>& idx, const Lanes<T>& val,
                     F&& op) {
    static_assert(std::is_integral_v<I>);
    Lanes<uint64_t> addrs = LaneAddrs(base.addr, idx, sizeof(T));
    AccountAtomic(addrs, sizeof(T));
    Lanes<T> out;
    ADGRAPH_VGPU_FOR_ACTIVE(i) {
      T old_value = global_->Load<T>(addrs[i]);
      out[i] = old_value;
      global_->Store<T>(addrs[i], op(old_value, val[i]));
    }
    return out;
  }

  void CountValu() {
    counters_->warp_inst_issued += 1;
    counters_->valu_warp_inst += 1;
    counters_->lane_ops += PopCount(active_);
  }
  void CountReduction() {
    // log2(width) butterfly steps.
    uint32_t steps = 0;
    for (uint32_t w = width_; w > 1; w >>= 1) ++steps;
    counters_->warp_inst_issued += steps;
    counters_->valu_warp_inst += steps;
    counters_->lane_ops += static_cast<uint64_t>(steps) * PopCount(active_);
  }

  void PushMask(LaneMask m, bool divergent) {
    ADGRAPH_DCHECK(depth_ < kMaxDepth);
    mask_stack_[depth_++] = active_;
    active_ = m;
    if (divergent) ++divergence_depth_;
    divergent_stack_[depth_ - 1] = divergent;
  }
  void PopMask() {
    ADGRAPH_DCHECK(depth_ > 0);
    if (divergent_stack_[depth_ - 1]) --divergence_depth_;
    active_ = mask_stack_[--depth_];
  }

  // Non-template accounting implemented in ctx.cc.
  void AccountBranch(bool divergent);
  void AccountGlobal(const Lanes<uint64_t>& addrs, uint32_t access_bytes,
                     bool is_store);
  void AccountAtomic(const Lanes<uint64_t>& addrs, uint32_t access_bytes);
  void AccountShared(const Lanes<uint64_t>& offsets, uint32_t access_bytes,
                     bool is_store);
  void AccumulateLatency(double cycles);

  static constexpr uint32_t kMaxDepth = 64;

  const ArchConfig* arch_;
  const TimingParams* params_;
  AddressSpace* global_;
  CacheModel* l1_;
  CacheModel* l2_;
  SharedMemory* smem_;
  KernelCounters* counters_;

  uint32_t grid_dim_;
  uint32_t block_dim_;
  uint32_t block_id_;
  uint32_t warp_in_block_;
  uint32_t width_;

  LaneMask entry_mask_ = 0;
  LaneMask active_ = 0;
  LaneMask mask_stack_[kMaxDepth];
  bool divergent_stack_[kMaxDepth] = {};
  uint32_t depth_ = 0;
  uint32_t divergence_depth_ = 0;
  bool at_barrier_ = false;
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_CTX_H_
