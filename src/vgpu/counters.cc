#include "vgpu/counters.h"

namespace adgraph::vgpu {

void KernelCounters::Merge(const KernelCounters& other) {
  warp_inst_issued += other.warp_inst_issued;
  valu_warp_inst += other.valu_warp_inst;
  lane_ops += other.lane_ops;
  scalar_inst += other.scalar_inst;
  shared_load_inst += other.shared_load_inst;
  shared_store_inst += other.shared_store_inst;
  global_load_inst += other.global_load_inst;
  global_store_inst += other.global_store_inst;
  atomic_inst += other.atomic_inst;
  branches += other.branches;
  divergent_branches += other.divergent_branches;
  barriers += other.barriers;
  global_ld_transactions += other.global_ld_transactions;
  global_st_transactions += other.global_st_transactions;
  global_ld_bytes_requested += other.global_ld_bytes_requested;
  global_ld_bytes_transferred += other.global_ld_bytes_transferred;
  global_st_bytes_requested += other.global_st_bytes_requested;
  global_st_bytes_transferred += other.global_st_bytes_transferred;
  l1_hits += other.l1_hits;
  l1_misses += other.l1_misses;
  l2_hits += other.l2_hits;
  l2_misses += other.l2_misses;
  dram_read_bytes += other.dram_read_bytes;
  dram_write_bytes += other.dram_write_bytes;
  smem_accesses += other.smem_accesses;
  smem_bank_conflict_extra += other.smem_bank_conflict_extra;
  smem_bytes += other.smem_bytes;
  memory_latency_cycles += other.memory_latency_cycles;
  simt_overlap_saved_cycles += other.simt_overlap_saved_cycles;
  peer_bytes_sent += other.peer_bytes_sent;
  peer_bytes_received += other.peer_bytes_received;
  peer_exchanges += other.peer_exchanges;
  loop_lane_iters_possible += other.loop_lane_iters_possible;
  loop_lane_iters_useful += other.loop_lane_iters_useful;
  blocks_launched += other.blocks_launched;
  warps_launched += other.warps_launched;
}

void KernelCounters::Scale(uint64_t factor) {
  warp_inst_issued *= factor;
  valu_warp_inst *= factor;
  lane_ops *= factor;
  scalar_inst *= factor;
  shared_load_inst *= factor;
  shared_store_inst *= factor;
  global_load_inst *= factor;
  global_store_inst *= factor;
  atomic_inst *= factor;
  branches *= factor;
  divergent_branches *= factor;
  barriers *= factor;
  global_ld_transactions *= factor;
  global_st_transactions *= factor;
  global_ld_bytes_requested *= factor;
  global_ld_bytes_transferred *= factor;
  global_st_bytes_requested *= factor;
  global_st_bytes_transferred *= factor;
  l1_hits *= factor;
  l1_misses *= factor;
  l2_hits *= factor;
  l2_misses *= factor;
  dram_read_bytes *= factor;
  dram_write_bytes *= factor;
  smem_accesses *= factor;
  smem_bank_conflict_extra *= factor;
  smem_bytes *= factor;
  memory_latency_cycles *= static_cast<double>(factor);
  simt_overlap_saved_cycles *= static_cast<double>(factor);
  peer_bytes_sent *= factor;
  peer_bytes_received *= factor;
  peer_exchanges *= factor;
  loop_lane_iters_possible *= factor;
  loop_lane_iters_useful *= factor;
  blocks_launched *= factor;
  warps_launched *= factor;
}

}  // namespace adgraph::vgpu
