#ifndef ADGRAPH_VGPU_ARCH_H_
#define ADGRAPH_VGPU_ARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace adgraph::vgpu {

/// Execution paradigm of the simulated GPU (paper §2.2–§2.4).
///
/// kSimt: NVIDIA-style Single-Instruction-Multiple-Threads.  Divergent
/// branch paths are serialized, but (Volta+) independent thread scheduling
/// lets the memory stalls of the serialized paths overlap.
///
/// kSimd: AMD-GCN-style Single-Instruction-Multiple-Data over a wavefront.
/// Divergent paths are serialized under an execution mask, mask management
/// costs scalar instructions, and there is no cross-path stall overlap.
enum class Paradigm { kSimt, kSimd };

/// How the shared memory (NVIDIA) / Local Data Store (AMD-like) is wired
/// (paper §2.4, third bullet).
///
/// kUnifiedWithL1: shared memory and the L1 cache share one data path; L1
/// miss traffic contends with shared-memory bandwidth (Hypothesis 4's cost).
///
/// kIndependentLds: the LDS has its own data path — immune to L1 traffic —
/// at the price of a higher base access latency (Hypothesis 2's trade-off).
enum class SharedMemPath { kUnifiedWithL1, kIndependentLds };

/// \brief Full parameterization of a simulated GPU.
///
/// The four built-in instances mirror paper Table 3; the remaining
/// microarchitectural constants are set from public architecture documents
/// (A100/V100 whitepapers, GCN ISA guide) and are identical across vendors
/// wherever Table 3 does not distinguish them, so that cross-vendor deltas
/// come only from the parameters the paper studies.
struct ArchConfig {
  std::string name;    ///< e.g. "A100"
  std::string vendor;  ///< "NVIDIA" or "AMD-like"
  Paradigm paradigm = Paradigm::kSimt;
  SharedMemPath shared_path = SharedMemPath::kUnifiedWithL1;

  // --- Thread hierarchy -----------------------------------------------
  uint32_t warp_width = 32;       ///< 32 (warp) or 64 (wavefront)
  uint32_t num_sms = 0;           ///< SM (NVIDIA) or CU (AMD-like) count
  uint32_t max_warps_per_sm = 64; ///< resident warp/wavefront limit
  uint32_t schedulers_per_sm = 4; ///< warp instructions issued per SM-cycle
  uint32_t lanes_per_sm = 64;     ///< "cores": lane-ops retired per SM-cycle

  // --- Clocks and compute ----------------------------------------------
  double clock_ghz = 1.4;
  /// Per-kernel launch + host-synchronization overhead of the platform's
  /// software stack (microseconds).  Measured CUDA stacks sit near 4-6 us;
  /// the paper's ROCm-like toolkit exhibits lower per-launch cost — the
  /// driver of the paper's small-graph adGRAPH wins (Table 5), which its
  /// threat-to-validity #1 attributes to platform differences.
  double launch_overhead_us = 3.0;
  double fp64_tflops = 0;  ///< Table 3 row, reporting only
  double fp32_tflops = 0;  ///< Table 3 row, reporting only

  // --- Device memory (Table 3 "RAM") -----------------------------------
  double dram_bandwidth_gbps = 900;
  double dram_latency_cycles = 600;
  uint64_t dram_capacity_bytes = 16ull << 30;  ///< paper-scale capacity
  std::string ram_type = "HBM2";
  uint32_t ram_bitwidth = 4096;

  // --- Caches ------------------------------------------------------------
  uint32_t l1_size_bytes = 128 << 10;  ///< per SM
  uint32_t l1_assoc = 4;
  double l1_latency_cycles = 28;
  uint64_t l2_size_bytes = 6ull << 20;  ///< device-wide
  uint32_t l2_assoc = 16;
  double l2_latency_cycles = 200;
  double l2_bandwidth_gbps = 2500;
  uint32_t cache_line_bytes = 128;
  uint32_t mem_segment_bytes = 32;  ///< coalescing sector granularity

  // --- Shared memory / LDS ------------------------------------------------
  uint32_t smem_bytes_per_sm = 96 << 10;
  uint32_t smem_banks = 32;
  double smem_latency_cycles = 20;  ///< higher when kIndependentLds

  /// Lane-coverage of one issued instruction: wavefront-64 retires twice
  /// the threads per issue slot of a warp-32 (Hypothesis 1's mechanism).
  uint32_t threads_per_issue() const { return warp_width; }
};

/// Validates an ArchConfig at the point it enters the system (scheduler
/// pool construction, partitioned-engine creation, CLI/bench custom archs).
/// The timing model divides by clock_ghz, num_sms, schedulers_per_sm,
/// lanes_per_sm and the two bandwidth figures, so a zero / negative /
/// non-finite value would turn every cycle count into inf/NaN and poison
/// the MTEPS tables downstream; such configs are rejected with
/// kInvalidArgument instead.
Status ValidateArchConfig(const ArchConfig& config);

/// Built-in configs reproducing paper Table 3.  References stay valid for
/// the program lifetime.
const ArchConfig& V100Config();
const ArchConfig& A100Config();
const ArchConfig& Z100Config();
const ArchConfig& Z100LConfig();

/// The four paper GPUs in Table 3 column order: Z100, V100, Z100L, A100.
std::vector<const ArchConfig*> PaperGpus();

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_ARCH_H_
