#ifndef ADGRAPH_VGPU_DEVICE_H_
#define ADGRAPH_VGPU_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/arch.h"
#include "vgpu/counters.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"
#include "vgpu/mem/address_space.h"
#include "vgpu/mem/cache.h"
#include "vgpu/timing.h"

namespace adgraph::vgpu {

/// Grid shape of one kernel launch (1-D, as all library kernels are 1-D).
struct LaunchDims {
  uint32_t grid = 1;          ///< number of thread blocks
  uint32_t block = 256;       ///< threads per block (multiple of warp width
                              ///< recommended; partial warps are masked)
  uint32_t shared_bytes = 0;  ///< dynamic shared memory / LDS per block
  /// Sampled-simulation extrapolation: the kernel executes 1/N of the work
  /// (the caller's contract) and all event counters are multiplied by N
  /// before timing roll-up.  1 = exact simulation (the default).
  uint32_t work_replication = 1;
};

/// \brief One simulated GPU: an architecture config plus memory, caches and
/// the kernel launch engine.
///
/// Thread-compatibility: a Device is single-threaded (like a CUDA context
/// used from one host thread).  Determinism: given the same sequence of
/// calls, every counter and timing result is bit-identical across runs.
class Device {
 public:
  struct Options {
    /// Divides the paper-scale RAM capacity.  The paper-reproduction
    /// benches scale device memory and dataset sizes by the same factor so
    /// capacity phenomena (ESBV twitter-mpi OOM) are preserved.
    double memory_scale = 1.0;
    TimingParams timing;
  };

  explicit Device(const ArchConfig& arch);
  Device(const ArchConfig& arch, Options options);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const ArchConfig& arch() const { return arch_; }
  const std::string& name() const { return arch_.name; }

  // ====================== Memory API ====================================

  /// Allocates `count` elements of T in device global memory.
  template <typename T>
  Result<DevPtr<T>> Alloc(uint64_t count) {
    ADGRAPH_ASSIGN_OR_RETURN(uint64_t addr, mem_.Allocate(count * sizeof(T)));
    return DevPtr<T>{addr};
  }

  template <typename T>
  Status Free(DevPtr<T> ptr) {
    return mem_.Free(ptr.addr);
  }

  /// Host-to-device copy (models the PCIe transfer into transfer_ms()).
  template <typename T>
  Status CopyToDevice(DevPtr<T> dst, const T* src, uint64_t count) {
    if (dst.is_null() && count > 0) {
      return Status::InvalidArgument("CopyToDevice to null pointer");
    }
    trace::Span span(trace_track_, "memcpy_h2d", "memcpy");
    mem_.Write(dst.addr, src, count * sizeof(T));
    AccountTransfer(count * sizeof(T));
    span.ArgNum("bytes", count * sizeof(T));
    return Status::OK();
  }

  /// Device-to-host copy.
  template <typename T>
  Status CopyToHost(T* dst, DevPtr<T> src, uint64_t count) {
    if (src.is_null() && count > 0) {
      return Status::InvalidArgument("CopyToHost from null pointer");
    }
    trace::Span span(trace_track_, "memcpy_d2h", "memcpy");
    mem_.Read(src.addr, dst, count * sizeof(T));
    AccountTransfer(count * sizeof(T));
    span.ArgNum("bytes", count * sizeof(T));
    return Status::OK();
  }

  /// Device-to-device copy.
  template <typename T>
  Status CopyDeviceToDevice(DevPtr<T> dst, DevPtr<T> src, uint64_t count) {
    std::vector<uint8_t> tmp(count * sizeof(T));
    mem_.Read(src.addr, tmp.data(), tmp.size());
    mem_.Write(dst.addr, tmp.data(), tmp.size());
    return Status::OK();
  }

  /// Raw device-memory read without PCIe transfer accounting — the leg of
  /// a peer (device-to-device) copy whose bytes are charged to the
  /// Interconnect model by rt::PeerCopy, not to this device's transfer
  /// clock.  Not for host readbacks; use CopyToHost for those.
  template <typename T>
  Status ReadForPeer(T* dst, DevPtr<T> src, uint64_t count) {
    if (src.is_null() && count > 0) {
      return Status::InvalidArgument("ReadForPeer from null pointer");
    }
    mem_.Read(src.addr, dst, count * sizeof(T));
    return Status::OK();
  }

  /// Raw device-memory write without PCIe transfer accounting (the arrival
  /// leg of a peer copy; see ReadForPeer).
  template <typename T>
  Status WriteFromPeer(DevPtr<T> dst, const T* src, uint64_t count) {
    if (dst.is_null() && count > 0) {
      return Status::InvalidArgument("WriteFromPeer to null pointer");
    }
    mem_.Write(dst.addr, src, count * sizeof(T));
    return Status::OK();
  }

  /// Byte-fill (cudaMemset semantics).
  template <typename T>
  Status Memset(DevPtr<T> ptr, uint8_t byte, uint64_t count) {
    mem_.Fill(ptr.addr, byte, count * sizeof(T));
    return Status::OK();
  }

  uint64_t memory_capacity_bytes() const { return mem_.capacity_bytes(); }
  uint64_t memory_used_bytes() const { return mem_.used_bytes(); }
  uint64_t memory_free_bytes() const { return mem_.free_bytes(); }
  uint64_t memory_peak_bytes() const { return mem_.peak_used_bytes(); }

  // ====================== Kernel launch ==================================

  /// A kernel entry point: invoked once per warp to create its coroutine.
  using KernelFn = std::function<KernelTask(Ctx&)>;

  /// Synchronously executes the kernel over the whole grid, returning its
  /// counters and modeled timing.  Fails on barrier deadlock or invalid
  /// launch shapes.  Device time (elapsed_ms) accumulates.
  Result<KernelStats> Launch(std::string_view name, LaunchDims dims,
                             const KernelFn& kernel);

  // ====================== Introspection ==================================

  /// Total modeled kernel time since construction / ResetElapsed().
  double elapsed_ms() const { return elapsed_ms_; }
  void ResetElapsed() { elapsed_ms_ = 0; }

  /// Modeled host<->device transfer time (not part of elapsed_ms; the paper
  /// reports on-device algorithm runtimes).
  double transfer_ms() const { return transfer_ms_; }

  /// Per-launch records in launch order (ground truth for profiling).
  const std::vector<KernelStats>& kernel_log() const { return kernel_log_; }
  void ClearKernelLog() { kernel_log_.clear(); }

  /// Empties L1/L2 (fresh-cache experiment conditions between algorithms).
  void ClearCaches();

  /// The device's timeline in the tracing subsystem (one track per
  /// simulated device — the Figure 7/8 "one row per GPU" view).
  uint64_t trace_track() const { return trace_track_; }

  /// Returns the device to fresh-boot profiling state between jobs: zeroes
  /// the modeled clocks (elapsed_ms, transfer_ms), drops the kernel log,
  /// and empties the caches.  Live allocations are untouched — callers that
  /// reuse a resident graph keep it.  The serving layer calls this between
  /// requests so one job's counters never bleed into the next job's
  /// profile.
  void ResetCounters();

 private:
  void AccountTransfer(uint64_t bytes) {
    constexpr double kPcieGbps = 16.0;
    transfer_ms_ += static_cast<double>(bytes) / (kPcieGbps * 1e6);
  }

  ArchConfig arch_;
  Options options_;
  AddressSpace mem_;
  std::vector<std::unique_ptr<CacheModel>> l1_;  // one per SM
  std::unique_ptr<CacheModel> l2_;
  std::vector<KernelStats> kernel_log_;
  double elapsed_ms_ = 0;
  double transfer_ms_ = 0;
  uint64_t trace_track_ = 0;  ///< registered once at construction
};

}  // namespace adgraph::vgpu

#endif  // ADGRAPH_VGPU_DEVICE_H_
