#ifndef ADGRAPH_PROF_SESSION_H_
#define ADGRAPH_PROF_SESSION_H_

#include <cstddef>

#include "prof/metrics.h"
#include "vgpu/device.h"

namespace adgraph::prof {

/// \brief Scoped profiling window over a device's kernel log: the
/// simulator's stand-in for attaching ncu / hiprof to an application run.
///
/// \code
///   prof::Session session(&device);
///   RunAlgorithm(&device, ...);
///   AlgoProfile p = session.Finish();
/// \endcode
class Session {
 public:
  explicit Session(const vgpu::Device* device)
      : device_(device), start_index_(device->kernel_log().size()) {}

  /// Aggregates every kernel launched since construction.  May be called
  /// repeatedly; each call re-aggregates the window so far.
  AlgoProfile Finish() const {
    AlgoProfile profile;
    const auto& log = device_->kernel_log();
    for (size_t i = start_index_; i < log.size(); ++i) {
      profile.Add(log[i]);
    }
    return profile;
  }

  /// First kernel-log index inside this window — the start of the slice
  /// BuildJobProfile aggregates for per-job attribution.
  size_t start_index() const { return start_index_; }

 private:
  const vgpu::Device* device_;
  size_t start_index_;
};

}  // namespace adgraph::prof

#endif  // ADGRAPH_PROF_SESSION_H_
