#ifndef ADGRAPH_PROF_REPORT_H_
#define ADGRAPH_PROF_REPORT_H_

#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/export.h"
#include "prof/metrics.h"
#include "prof/server_stats.h"
#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::prof {

/// \brief Human-readable per-kernel report of a device's launch history —
/// the simulator's equivalent of an `ncu --print-summary` / `rocprof`
/// session dump.
///
/// Columns: kernel name, launches (consecutive same-name launches are
/// folded), grid x block, total modeled time, share of device time, and
/// the headline counters (instructions, global transactions, L2 hit rate,
/// shared accesses, divergent branches).
std::string FormatKernelLog(const vgpu::Device& device,
                            size_t start_index = 0);

/// Raw per-launch CSV (one row per kernel launch, all counters) for
/// offline analysis.
Status WriteKernelLogCsv(const vgpu::Device& device, const std::string& path,
                         size_t start_index = 0);

/// Human-readable dump of a serving-pool snapshot: a totals block (jobs
/// completed/rejected/queued, throughput, p50/p95 modeled and wall
/// latency) followed by a per-device utilization table.
std::string FormatServerStats(const ServerStats& stats);

/// Compact text companion to the Chrome trace-event JSON export: a
/// per-track table (spans, busy wall time) followed by the top span names
/// by total duration — a readable answer to "where did the time go"
/// without loading Perfetto.
std::string FormatTraceSummary(const std::vector<trace::TraceEvent>& events);

/// Same, plus a trailing WARNING line when `dropped_spans` > 0 — the
/// human-readable face of `adgraph_trace_dropped_spans_total`: a summary
/// over a ring that silently overwrote events is not the whole story.
std::string FormatTraceSummary(const std::vector<trace::TraceEvent>& events,
                               uint64_t dropped_spans);

/// Table 6–style per-job attribution report (DESIGN.md §2.14): the
/// JobProfile's derived ratios — divergence, coalescing, cache hit rates,
/// occupancy, exposed latency — followed by the top-kernels-by-cycles
/// table.  What `adgraph_cli inspect` prints under a job's span tree.
std::string FormatJobProfile(const JobProfile& profile);

/// Human-readable tail of a metrics sampling session (DESIGN.md §2.9):
/// sample/drop counts, the latest batch's headline series (jobs, queue,
/// cache, per-worker instruction/DRAM counters), and every alert
/// transition of the run — the serve report's answer to "what did the
/// sampler see" without opening the exported file.
std::string FormatMetricsReport(const std::vector<obs::SampleBatch>& batches,
                                const std::vector<obs::AlertEvent>& alert_log,
                                uint64_t dropped_batches);

}  // namespace adgraph::prof

#endif  // ADGRAPH_PROF_REPORT_H_
