#ifndef ADGRAPH_PROF_SERVER_STATS_H_
#define ADGRAPH_PROF_SERVER_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adgraph::prof {

/// \brief Per-device slice of a serving-pool snapshot.
///
/// One entry per worker/device of the pool (workers own their device
/// exclusively, so "device" and "worker" are interchangeable here).
struct DeviceStats {
  std::string name;               ///< arch name, e.g. "A100"
  std::string vendor;             ///< "NVIDIA" / "AMD-like"
  uint64_t jobs_completed = 0;    ///< jobs finished OK on this device
  uint64_t jobs_failed = 0;       ///< jobs that ended with a non-OK status
  uint64_t jobs_rejected = 0;     ///< admission-control rejections
  double busy_wall_ms = 0;        ///< host wall time spent executing jobs
  double modeled_ms = 0;          ///< summed modeled device (kernel) time
  /// busy_wall_ms / pool uptime, clamped to [0,1] — the fraction of wall
  /// time this device had a job resident.
  double utilization = 0;
  uint64_t memory_capacity_bytes = 0;
  // Graph residency cache (DESIGN.md §2.6) — this worker's private cache.
  uint64_t cache_hits = 0;            ///< Acquire() served from residency
  uint64_t cache_misses = 0;          ///< Acquire() had to build + upload
  uint64_t cache_evictions = 0;       ///< entries evicted (LRU / for space)
  uint64_t cache_bytes_evicted = 0;   ///< device bytes freed by eviction
  uint64_t cache_resident_bytes = 0;  ///< device bytes currently cached
  uint64_t cache_stale_invalidated = 0;  ///< stale epochs dropped (§2.12)
  // Gang (multi-device partitioned) jobs this worker drove (DESIGN.md §2.7).
  uint64_t gang_jobs = 0;             ///< gang jobs completed OK
  uint64_t exchange_bytes = 0;        ///< interconnect bytes those jobs moved
  uint64_t exchange_rounds = 0;       ///< bulk-synchronous exchange rounds
};

/// \brief Per-tenant slice of a serving-pool snapshot (multi-tenant QoS,
/// DESIGN.md §2.10).  One entry per tenant name seen by Submit(); the
/// anonymous tenant (jobs with no tenant set) reports as "-".
struct TenantStats {
  std::string name;
  uint32_t priority = 0;          ///< priority class of the tenant's jobs
  uint64_t jobs_submitted = 0;    ///< accepted into the queue
  uint64_t jobs_completed = 0;    ///< finished OK
  uint64_t jobs_failed = 0;       ///< non-OK, non-shed, non-admission
  uint64_t jobs_rejected = 0;     ///< admission-control rejections
  /// Shed with kDeadlineExceeded: queue-wait passed the job's deadline
  /// before a worker could take it.
  uint64_t jobs_shed_deadline = 0;
  double queue_wait_ms_total = 0; ///< summed queue wait of dequeued jobs
};

/// \brief Point-in-time snapshot of a serving pool (`serve::Scheduler`),
/// shaped like the summary block a production inference/analytics server
/// exports to its metrics endpoint.
///
/// Defined in prof (not serve) so the report layer can format it without a
/// dependency cycle: serve fills it, prof renders it.
struct ServerStats {
  uint64_t jobs_submitted = 0;    ///< accepted into the queue
  uint64_t jobs_completed = 0;    ///< finished with an OK status
  uint64_t jobs_failed = 0;       ///< finished with a non-OK status
  /// Rejected by memory-aware admission control (kResourceExhausted).
  uint64_t jobs_rejected_admission = 0;
  /// Refused at Submit() because the bounded queue was full under the
  /// reject overflow policy.
  uint64_t jobs_rejected_backpressure = 0;
  /// Shed at dequeue with kDeadlineExceeded (queue-wait > deadline).
  uint64_t jobs_shed_deadline = 0;
  uint64_t jobs_queued = 0;       ///< waiting in the queue right now
  uint64_t jobs_running = 0;      ///< resident on a device right now
  double uptime_ms = 0;           ///< wall time since the pool started
  /// Wall-clock completed-jobs throughput over the pool lifetime.
  double jobs_per_sec = 0;
  // Latency distribution over completed jobs.  Estimated from the
  // fixed-memory exponential-bucket histograms (obs::Histogram) the
  // scheduler keeps per worker — bounded state even for million-job runs.
  double p50_modeled_ms = 0;      ///< median modeled device time per job
  double p95_modeled_ms = 0;
  double p99_modeled_ms = 0;
  double p50_wall_ms = 0;         ///< median submit->done wall latency
  double p95_wall_ms = 0;
  double p99_wall_ms = 0;
  // Graph residency cache, summed over the per-device caches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes_evicted = 0;
  uint64_t cache_resident_bytes = 0;
  uint64_t cache_stale_invalidated = 0;
  // Gang (multi-device partitioned) execution, summed over workers.
  uint64_t gang_jobs_completed = 0;
  uint64_t exchange_bytes_total = 0;   ///< interconnect traffic of gang jobs
  uint64_t exchange_rounds_total = 0;  ///< bulk-synchronous exchange rounds
  std::vector<DeviceStats> devices;
  /// Per-tenant accounting, sorted by tenant name; empty when every job was
  /// anonymous (keeps pre-tenancy report output unchanged).
  std::vector<TenantStats> tenants;
};

}  // namespace adgraph::prof

#endif  // ADGRAPH_PROF_SERVER_STATS_H_
