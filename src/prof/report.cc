#include "prof/report.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "prof/metrics.h"
#include "util/table.h"

namespace adgraph::prof {

namespace {

struct KernelGroup {
  uint64_t launches = 0;
  uint32_t grid = 0;
  uint32_t block = 0;
  double time_ms = 0;
  vgpu::KernelCounters counters;
};

}  // namespace

std::string FormatKernelLog(const vgpu::Device& device, size_t start_index) {
  const auto& log = device.kernel_log();
  // Fold by kernel name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, KernelGroup> groups;
  double total_ms = 0;
  for (size_t i = start_index; i < log.size(); ++i) {
    const auto& stats = log[i];
    auto [it, inserted] = groups.try_emplace(stats.kernel_name);
    if (inserted) order.push_back(stats.kernel_name);
    it->second.launches += 1;
    it->second.grid = stats.grid;
    it->second.block = stats.block;
    it->second.time_ms += stats.time_ms;
    it->second.counters.Merge(stats.counters);
    total_ms += stats.time_ms;
  }

  TablePrinter table({"kernel", "launches", "grid x block", "time (ms)",
                      "share", "warp inst", "gld trans", "L2 hit",
                      "smem acc", "div branches"});
  for (const auto& name : order) {
    const KernelGroup& g = groups.at(name);
    table.AddRow({name, std::to_string(g.launches),
                  std::to_string(g.grid) + " x " + std::to_string(g.block),
                  FormatFixed(g.time_ms, 4),
                  FormatFixed(total_ms > 0 ? 100 * g.time_ms / total_ms : 0, 1)
                      + "%",
                  FormatWithCommas(g.counters.warp_inst_issued),
                  FormatWithCommas(g.counters.global_ld_transactions),
                  FormatFixed(100 * g.counters.l2_hit_rate(), 1) + "%",
                  FormatWithCommas(g.counters.smem_accesses),
                  FormatWithCommas(g.counters.divergent_branches)});
  }
  table.AddSeparator();
  table.AddRow({"total", std::to_string(log.size() - start_index), "",
                FormatFixed(total_ms, 4), "100%"});

  std::ostringstream out;
  out << "Kernel log of " << device.name() << " ("
      << device.arch().vendor << ")\n";
  table.Print(out);
  return out.str();
}

Status WriteKernelLogCsv(const vgpu::Device& device, const std::string& path,
                         size_t start_index) {
  TablePrinter table(
      {"kernel", "grid", "block", "time_ms", "cycles", "warp_inst_issued",
       "valu_warp_inst", "lane_ops", "scalar_inst", "shared_load_inst",
       "shared_store_inst", "global_load_inst", "global_store_inst",
       "atomic_inst", "branches", "divergent_branches", "barriers",
       "gld_transactions", "gst_transactions", "l1_hits", "l1_misses",
       "l2_hits", "l2_misses", "dram_read_bytes", "dram_write_bytes",
       "smem_accesses", "smem_conflict_extra", "achieved_occupancy"});
  const auto& log = device.kernel_log();
  for (size_t i = start_index; i < log.size(); ++i) {
    const auto& s = log[i];
    const auto& c = s.counters;
    table.AddRow({s.kernel_name, std::to_string(s.grid),
                  std::to_string(s.block), FormatFixed(s.time_ms, 6),
                  FormatFixed(s.cycles, 0),
                  std::to_string(c.warp_inst_issued),
                  std::to_string(c.valu_warp_inst), std::to_string(c.lane_ops),
                  std::to_string(c.scalar_inst),
                  std::to_string(c.shared_load_inst),
                  std::to_string(c.shared_store_inst),
                  std::to_string(c.global_load_inst),
                  std::to_string(c.global_store_inst),
                  std::to_string(c.atomic_inst), std::to_string(c.branches),
                  std::to_string(c.divergent_branches),
                  std::to_string(c.barriers),
                  std::to_string(c.global_ld_transactions),
                  std::to_string(c.global_st_transactions),
                  std::to_string(c.l1_hits), std::to_string(c.l1_misses),
                  std::to_string(c.l2_hits), std::to_string(c.l2_misses),
                  std::to_string(c.dram_read_bytes),
                  std::to_string(c.dram_write_bytes),
                  std::to_string(c.smem_accesses),
                  std::to_string(c.smem_bank_conflict_extra),
                  FormatFixed(s.achieved_occupancy, 4)});
  }
  return table.WriteCsv(path);
}

std::string FormatServerStats(const ServerStats& stats) {
  std::ostringstream out;
  out << "Serving pool snapshot (uptime " << FormatFixed(stats.uptime_ms, 1)
      << " ms)\n"
      << "  jobs: " << stats.jobs_submitted << " submitted, "
      << stats.jobs_completed << " completed, " << stats.jobs_failed
      << " failed, " << stats.jobs_rejected_admission
      << " rejected (admission), " << stats.jobs_rejected_backpressure
      << " rejected (backpressure), " << stats.jobs_shed_deadline
      << " shed (deadline), " << stats.jobs_queued << " queued, "
      << stats.jobs_running << " running\n"
      << "  throughput: " << FormatFixed(stats.jobs_per_sec, 2)
      << " jobs/s\n"
      << "  modeled latency: p50 " << FormatFixed(stats.p50_modeled_ms, 4)
      << " ms, p95 " << FormatFixed(stats.p95_modeled_ms, 4) << " ms, p99 "
      << FormatFixed(stats.p99_modeled_ms, 4) << " ms\n"
      << "  wall latency:    p50 " << FormatFixed(stats.p50_wall_ms, 2)
      << " ms, p95 " << FormatFixed(stats.p95_wall_ms, 2) << " ms, p99 "
      << FormatFixed(stats.p99_wall_ms, 2) << " ms\n";
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  out << "  graph cache: " << stats.cache_hits << " hits / " << lookups
      << " lookups ("
      << FormatFixed(lookups > 0 ? 100.0 * static_cast<double>(
                                       stats.cache_hits) /
                                       static_cast<double>(lookups)
                                 : 0,
                     1)
      << "%), " << stats.cache_evictions << " evictions ("
      << FormatFixed(static_cast<double>(stats.cache_bytes_evicted) /
                         (1024.0 * 1024.0),
                     1)
      << " MiB), "
      << FormatFixed(static_cast<double>(stats.cache_resident_bytes) /
                         (1024.0 * 1024.0),
                     1)
      << " MiB resident\n";
  if (stats.gang_jobs_completed > 0) {
    out << "  gang jobs: " << stats.gang_jobs_completed << " completed, "
        << FormatFixed(static_cast<double>(stats.exchange_bytes_total) /
                           (1024.0 * 1024.0),
                       3)
        << " MiB exchanged over " << stats.exchange_rounds_total
        << " interconnect rounds\n";
  }

  if (!stats.tenants.empty()) {
    TablePrinter tenant_table({"tenant", "prio", "submitted", "done",
                               "failed", "rejected", "shed",
                               "mean queue (ms)"});
    for (const TenantStats& t : stats.tenants) {
      const uint64_t dequeued = t.jobs_completed + t.jobs_failed +
                                t.jobs_rejected + t.jobs_shed_deadline;
      tenant_table.AddRow(
          {t.name.empty() ? "-" : t.name, std::to_string(t.priority),
           std::to_string(t.jobs_submitted), std::to_string(t.jobs_completed),
           std::to_string(t.jobs_failed), std::to_string(t.jobs_rejected),
           std::to_string(t.jobs_shed_deadline),
           FormatFixed(dequeued > 0 ? t.queue_wait_ms_total /
                                          static_cast<double>(dequeued)
                                    : 0,
                       2)});
    }
    tenant_table.Print(out);
  }

  TablePrinter table({"device", "vendor", "done", "failed", "rejected",
                      "busy (ms)", "modeled (ms)", "util", "RAM",
                      "hit/miss", "resident"});
  for (const DeviceStats& d : stats.devices) {
    table.AddRow({d.name, d.vendor, std::to_string(d.jobs_completed),
                  std::to_string(d.jobs_failed),
                  std::to_string(d.jobs_rejected),
                  FormatFixed(d.busy_wall_ms, 1),
                  FormatFixed(d.modeled_ms, 3),
                  FormatFixed(100 * d.utilization, 1) + "%",
                  FormatFixed(static_cast<double>(d.memory_capacity_bytes) /
                                  (1024.0 * 1024.0),
                              1) +
                      " MiB",
                  std::to_string(d.cache_hits) + "/" +
                      std::to_string(d.cache_misses),
                  FormatFixed(static_cast<double>(d.cache_resident_bytes) /
                                  (1024.0 * 1024.0),
                              1) +
                      " MiB"});
  }
  table.Print(out);
  return out.str();
}

std::string FormatTraceSummary(
    const std::vector<trace::TraceEvent>& events) {
  return FormatTraceSummary(events, /*dropped_spans=*/0);
}

std::string FormatTraceSummary(const std::vector<trace::TraceEvent>& events,
                               uint64_t dropped_spans) {
  std::ostringstream out;
  if (events.empty()) {
    out << "Trace summary: no spans recorded\n";
    if (dropped_spans > 0) {
      out << "WARNING: " << dropped_spans
          << " spans were dropped from the trace ring — the summary is "
             "incomplete (see adgraph_trace_dropped_spans_total)\n";
    }
    return out.str();
  }

  struct TrackGroup {
    uint64_t spans = 0;
    double busy_us = 0;
    double first_ts = 0;
    double last_end = 0;
  };
  std::map<uint64_t, TrackGroup> tracks;
  // Per span name: every duration (us), for count / total / p95.
  std::map<std::string, std::vector<double>> by_name;
  for (const trace::TraceEvent& e : events) {
    auto [it, inserted] = tracks.try_emplace(e.track);
    TrackGroup& g = it->second;
    if (inserted || e.ts_us < g.first_ts) g.first_ts = e.ts_us;
    g.last_end = std::max(g.last_end, e.ts_us + e.dur_us);
    g.spans += 1;
    g.busy_us += e.dur_us;
    by_name[e.category + ":" + e.name].push_back(e.dur_us);
  }

  const std::vector<std::string> names = trace::TrackNames();
  out << "Trace summary: " << events.size() << " spans across "
      << tracks.size() << " tracks\n";
  TablePrinter table({"track", "spans", "busy (ms)", "span (ms)"});
  for (const auto& [track, g] : tracks) {
    std::string name = track < names.size() ? names[track]
                                            : "track " + std::to_string(track);
    table.AddRow({name, std::to_string(g.spans),
                  FormatFixed(g.busy_us / 1000.0, 3),
                  FormatFixed((g.last_end - g.first_ts) / 1000.0, 3)});
  }
  table.Print(out);

  // Top span names by accumulated duration — the "where did it go" list.
  struct NameGroup {
    std::string name;
    uint64_t count = 0;
    double total_us = 0;
    double p95_us = 0;
    double p99_us = 0;
  };
  std::vector<NameGroup> ranked;
  ranked.reserve(by_name.size());
  for (auto& [name, durations] : by_name) {
    NameGroup g;
    g.name = name;
    g.count = durations.size();
    for (double d : durations) g.total_us += d;
    g.p95_us = Percentile(durations, 0.95);
    g.p99_us = Percentile(std::move(durations), 0.99);
    ranked.push_back(std::move(g));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.total_us > b.total_us;
  });
  constexpr size_t kTop = 10;
  out << "Top spans by total duration:\n";
  TablePrinter top({"span", "count", "total (ms)", "p95 (ms)", "p99 (ms)"});
  for (size_t i = 0; i < std::min(kTop, ranked.size()); ++i) {
    top.AddRow({ranked[i].name, std::to_string(ranked[i].count),
                FormatFixed(ranked[i].total_us / 1000.0, 3),
                FormatFixed(ranked[i].p95_us / 1000.0, 3),
                FormatFixed(ranked[i].p99_us / 1000.0, 3)});
  }
  top.Print(out);
  if (dropped_spans > 0) {
    out << "WARNING: " << dropped_spans
        << " spans were dropped from the trace ring — the summary is "
           "incomplete (see adgraph_trace_dropped_spans_total)\n";
  }
  return out.str();
}

std::string FormatJobProfile(const JobProfile& profile) {
  std::ostringstream out;
  out << "Job profile: " << profile.num_kernels << " kernels, modeled "
      << FormatFixed(profile.total_ms, 4) << " ms, "
      << FormatWithCommas(static_cast<uint64_t>(profile.total_cycles))
      << " cycles\n";
  TablePrinter metrics_table({"metric", "value"});
  metrics_table.AddRow(
      {"divergent_branch_ratio",
       FormatFixed(100 * profile.divergent_branch_ratio, 1) + "% (" +
           FormatWithCommas(profile.divergent_branches) + " / " +
           FormatWithCommas(profile.branches) + " branches)"});
  metrics_table.AddRow(
      {"gld_efficiency", FormatFixed(100 * profile.gld_efficiency, 1) + "%"});
  metrics_table.AddRow(
      {"gst_efficiency", FormatFixed(100 * profile.gst_efficiency, 1) + "%"});
  metrics_table.AddRow(
      {"l1_hit_rate", FormatFixed(100 * profile.l1_hit_rate, 1) + "%"});
  metrics_table.AddRow(
      {"l2_hit_rate", FormatFixed(100 * profile.l2_hit_rate, 1) + "%"});
  metrics_table.AddRow({"achieved_occupancy",
                        FormatFixed(100 * profile.achieved_occupancy, 1) +
                            "%"});
  metrics_table.AddRow(
      {"exposed_latency_cycles",
       FormatWithCommas(
           static_cast<uint64_t>(profile.exposed_latency_cycles))});
  metrics_table.AddRow(
      {"warp_inst_issued", FormatWithCommas(profile.warp_inst_issued)});
  metrics_table.AddRow(
      {"dram_bytes", FormatWithCommas(profile.dram_bytes)});
  metrics_table.Print(out);
  if (!profile.top_kernels.empty()) {
    out << "Top kernels by cycles:\n";
    TablePrinter kernels({"kernel", "launches", "cycles", "time (ms)",
                          "share"});
    for (const JobKernelEntry& k : profile.top_kernels) {
      kernels.AddRow(
          {k.kernel_name, std::to_string(k.launches),
           FormatWithCommas(static_cast<uint64_t>(k.cycles)),
           FormatFixed(k.time_ms, 4),
           FormatFixed(profile.total_cycles > 0
                           ? 100 * k.cycles / profile.total_cycles
                           : 0,
                       1) +
               "%"});
    }
    kernels.Print(out);
  }
  return out.str();
}

std::string FormatMetricsReport(const std::vector<obs::SampleBatch>& batches,
                                const std::vector<obs::AlertEvent>& alert_log,
                                uint64_t dropped_batches) {
  std::ostringstream out;
  if (batches.empty()) {
    out << "Metrics: no samples collected\n";
    return out.str();
  }
  const obs::SampleBatch& latest = batches.back();
  out << "Metrics: " << batches.size() << " sample batches retained ("
      << dropped_batches << " overwritten), last at "
      << FormatFixed(latest.ts_ms, 1) << " ms\n";

  // Latest values of the headline families, one row per labeled series.
  // Histograms render as count/sum plus the estimated p95.
  TablePrinter table({"series", "value"});
  size_t rows = 0;
  constexpr size_t kMaxRows = 40;
  for (const obs::FamilySnapshot& family : latest.families) {
    for (const obs::SeriesSnapshot& series : family.series) {
      if (rows >= kMaxRows) break;
      std::string name = family.name;
      if (!series.labels.empty()) {
        name += '{';
        for (size_t i = 0; i < series.labels.size(); ++i) {
          if (i) name += ',';
          name += series.labels[i].first + "=" + series.labels[i].second;
        }
        name += '}';
      }
      std::string value;
      if (family.kind == obs::MetricKind::kHistogram) {
        value = std::to_string(series.histogram.count) + " obs, p95 " +
                FormatFixed(series.histogram.Quantile(0.95), 3);
      } else {
        value = FormatFixed(series.value, 3);
      }
      table.AddRow({name, value});
      ++rows;
    }
  }
  table.Print(out);

  if (!alert_log.empty()) {
    out << "Alert transitions:\n";
    TablePrinter alerts({"t (ms)", "rule", "state", "value", "threshold"});
    for (const obs::AlertEvent& event : alert_log) {
      alerts.AddRow({FormatFixed(event.ts_ms, 1), event.rule,
                     event.state == obs::AlertEvent::State::kFiring
                         ? "FIRING"
                         : "resolved",
                     FormatFixed(event.value, 3),
                     FormatFixed(event.threshold, 3)});
    }
    alerts.Print(out);
  } else {
    out << "Alerts: none fired\n";
  }
  return out.str();
}

}  // namespace adgraph::prof
