#include "prof/metrics.h"

#include <algorithm>
#include <cmath>

namespace adgraph::prof {

void AlgoProfile::Add(const vgpu::KernelStats& stats) {
  counters.Merge(stats.counters);
  total_ms += stats.time_ms;
  total_cycles += stats.cycles;
  num_kernels += 1;
  issue_cycles += stats.issue_cycles;
  valu_cycles += stats.valu_cycles;
  dram_cycles += stats.dram_cycles;
  l2_cycles += stats.l2_cycles;
  smem_cycles += stats.smem_cycles;
  exposed_cycles += stats.exposed_latency_cycles;
  occupancy_weighted += stats.achieved_occupancy * stats.cycles;
}

JobProfile BuildJobProfile(const AlgoProfile& profile,
                           const std::vector<vgpu::KernelStats>& kernel_log,
                           size_t start_index, size_t top_n) {
  JobProfile job;
  job.num_kernels = profile.num_kernels;
  job.total_ms = profile.total_ms;
  job.total_cycles = profile.total_cycles;
  const vgpu::KernelCounters& c = profile.counters;
  job.warp_inst_issued = c.warp_inst_issued;
  job.branches = c.branches;
  job.divergent_branches = c.divergent_branches;
  job.dram_bytes = c.dram_read_bytes + c.dram_write_bytes;
  job.divergent_branch_ratio = c.divergent_branch_ratio();
  job.gld_efficiency = c.gld_efficiency();
  job.gst_efficiency = c.gst_efficiency();
  job.l1_hit_rate = c.l1_hit_rate();
  job.l2_hit_rate = c.l2_hit_rate();
  job.achieved_occupancy = profile.achieved_occupancy();
  job.exposed_latency_cycles = profile.exposed_cycles;

  // Fold the window's launches by kernel name (first-seen order), then
  // rank by cycles for the top-N table.
  std::vector<JobKernelEntry> folded;
  for (size_t i = start_index; i < kernel_log.size(); ++i) {
    const vgpu::KernelStats& stats = kernel_log[i];
    JobKernelEntry* entry = nullptr;
    for (JobKernelEntry& existing : folded) {
      if (existing.kernel_name == stats.kernel_name) {
        entry = &existing;
        break;
      }
    }
    if (entry == nullptr) {
      folded.push_back(JobKernelEntry{stats.kernel_name, 0, 0, 0});
      entry = &folded.back();
    }
    entry->launches += 1;
    entry->cycles += stats.cycles;
    entry->time_ms += stats.time_ms;
  }
  std::stable_sort(folded.begin(), folded.end(),
                   [](const JobKernelEntry& a, const JobKernelEntry& b) {
                     return a.cycles > b.cycles;
                   });
  if (folded.size() > top_n) folded.resize(top_n);
  job.top_kernels = std::move(folded);
  return job;
}

FineGrainedCounts ComputeFineGrained(const AlgoProfile& profile,
                                     rt::Platform platform) {
  const vgpu::KernelCounters& c = profile.counters;
  FineGrainedCounts out;
  if (platform == rt::Platform::kCuda) {
    // ncu view: inst_issued counts every issued warp instruction;
    // the shared/global rows count warp-level instructions of that class.
    out.type1 = c.warp_inst_issued;
    out.type2 = c.shared_store_inst;
    out.type3 = c.global_load_inst;
    out.type4 = c.global_store_inst;
  } else {
    // hiprof view: SQ_INSTS_VALU counts vector-ALU issue slots — a 64-wide
    // wavefront op executes as four SIMD16 passes, each counted (which is
    // why the paper's Table 6 Type-1 rates favor the AMD-like parts on
    // issue-efficient kernels);
    // SQ_INSTS_LDS counts all LDS traffic (loads + stores);
    // VMEM_RD/WR count vector-memory issues (atomics are writes).
    out.type1 = 4 * c.valu_warp_inst;
    out.type2 = c.shared_load_inst + c.shared_store_inst;
    out.type3 = c.global_load_inst;
    out.type4 = c.global_store_inst + c.atomic_inst;
  }
  return out;
}

CoarseMetrics ComputeCoarse(const AlgoProfile& profile, rt::Platform platform,
                            const vgpu::ArchConfig& arch,
                            const vgpu::TimingParams& params) {
  const vgpu::KernelCounters& c = profile.counters;
  CoarseMetrics out;
  double cycles = std::max(profile.total_cycles, 1.0);

  if (platform == rt::Platform::kCuda) {
    // achieved_occupancy: time-weighted resident-warp ratio.
    out.warp_utilization = profile.achieved_occupancy();
    // shared_efficiency: requested / required shared throughput.  Bank
    // conflicts add required passes; on the unified data path, L1 refill
    // traffic steals shared bandwidth (paper Hypothesis 4's cost side).
    double accesses = static_cast<double>(c.smem_accesses);
    double required = accesses + static_cast<double>(c.smem_bank_conflict_extra);
    double efficiency = required > 0 ? accesses / required : 1.0;
    if (arch.shared_path == vgpu::SharedMemPath::kUnifiedWithL1) {
      double miss_bytes =
          static_cast<double>(c.l1_misses) * arch.mem_segment_bytes;
      double smem_bytes = static_cast<double>(c.smem_bytes);
      double total = miss_bytes + smem_bytes;
      if (total > 0 && smem_bytes > 0) {
        efficiency /= 1.0 + params.smem_l1_contention_alpha * (miss_bytes / total);
      }
    }
    out.shared_memory = efficiency;
    out.l2_hit = c.l2_hit_rate();
    out.global_memory = c.gld_efficiency();
  } else {
    // VALUBusy: share of GPU time the vector ALUs were processing.
    out.warp_utilization = std::min(1.0, profile.valu_cycles / cycles);
    // 1 - ALUStalledByLDS: share of time ALUs were NOT stalled on the LDS
    // queues.  The independent LDS path keeps this high.
    out.shared_memory = std::max(0.0, 1.0 - profile.smem_cycles / cycles);
    out.l2_hit = c.l2_hit_rate();
    // MemUnitBusy: share of GPU time the memory unit was active.
    out.global_memory = std::min(1.0, profile.dram_cycles / cycles);
  }
  return out;
}

std::vector<std::string> FineGrainedMetricNames(rt::Platform platform) {
  if (platform == rt::Platform::kCuda) {
    return {"inst_issued", "inst_executed_shared_stores",
            "inst_executed_global_loads", "inst_executed_global_stores"};
  }
  return {"SQ_INSTS_VALU", "SQ_INSTS_LDS", "SQ_INSTS_VMEM_RD",
          "SQ_INSTS_VMEM_WR"};
}

std::vector<std::string> CoarseMetricNames(rt::Platform platform) {
  if (platform == rt::Platform::kCuda) {
    return {"achieved_occupancy", "shared_efficiency", "l2_tex_hit_rate",
            "gld_efficiency"};
  }
  return {"VALUBusy", "1-ALUStalledByLDS", "L2CacheHit", "MemUnitBusy"};
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const size_t n = values.size();
  // Nearest-rank: the smallest value such that at least p*n of the sample
  // is <= it, i.e. 1-based rank ceil(p*n), clamped into [1, n].
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<size_t>(rank, 1, n);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(rank - 1),
                   values.end());
  return values[rank - 1];
}

}  // namespace adgraph::prof
