#ifndef ADGRAPH_PROF_METRICS_H_
#define ADGRAPH_PROF_METRICS_H_

#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "vgpu/counters.h"

namespace adgraph::prof {

/// \brief Aggregated profile of one algorithm run: all kernel launches
/// merged, with the timing-component breakdown preserved.
struct AlgoProfile {
  vgpu::KernelCounters counters;
  double total_ms = 0;
  double total_cycles = 0;
  uint64_t num_kernels = 0;
  // Time-weighted component sums (cycles).
  double issue_cycles = 0;
  double valu_cycles = 0;
  double dram_cycles = 0;
  double l2_cycles = 0;
  double smem_cycles = 0;
  double exposed_cycles = 0;
  // Time-weighted achieved occupancy.
  double occupancy_weighted = 0;

  void Add(const vgpu::KernelStats& stats);
  double achieved_occupancy() const {
    return total_cycles > 0 ? occupancy_weighted / total_cycles : 0;
  }
};

/// One row of a JobProfile's per-kernel breakdown: all launches of one
/// kernel name inside the job's window, folded.
struct JobKernelEntry {
  std::string kernel_name;
  uint64_t launches = 0;
  double cycles = 0;
  double time_ms = 0;
};

/// \brief Compact per-job architectural attribution (DESIGN.md §2.14):
/// the Table 6–style derived ratios of one job's kernel window, plus the
/// top-N kernels by cycles.  Carried on serve::JobOutcome, serialized in
/// POLL under "profile", rolled into the adgraph_job_* histograms, and
/// retained by the flight recorder.  Every ratio is derivable from the
/// merged vgpu::KernelCounters, so wire consumers and in-process callers
/// agree by construction.
struct JobProfile {
  uint64_t num_kernels = 0;
  double total_ms = 0;
  double total_cycles = 0;
  // Raw counts the ratios derive from (kept for cross-checking).
  uint64_t warp_inst_issued = 0;
  uint64_t branches = 0;
  uint64_t divergent_branches = 0;
  uint64_t dram_bytes = 0;
  // Table 6–style derived ratios.
  double divergent_branch_ratio = 0;  ///< divergent_branches / branches
  double gld_efficiency = 1;          ///< requested / transferred load bytes
  double gst_efficiency = 1;          ///< requested / transferred store bytes
  double l1_hit_rate = 0;
  double l2_hit_rate = 0;
  double achieved_occupancy = 0;      ///< time-weighted
  double exposed_latency_cycles = 0;  ///< unhidden memory latency
  std::vector<JobKernelEntry> top_kernels;  ///< by cycles, descending
};

/// Builds the per-job attribution from a Session window: `profile` is the
/// window's merged AlgoProfile, `kernel_log` the device's full launch log,
/// `start_index` the window start (Session::start_index()).  The top-N
/// table folds launches by kernel name before ranking.
JobProfile BuildJobProfile(const AlgoProfile& profile,
                           const std::vector<vgpu::KernelStats>& kernel_log,
                           size_t start_index, size_t top_n = 5);

/// The four fine-grained metric rows of paper Table 6 ("Type 1..4").
/// Values are instruction counts; the Table 6 bench divides by runtime to
/// print rates, as the paper does.
struct FineGrainedCounts {
  /// Type 1: inst_issued (CUDA) / SQ_INSTS_VALU (ROCm-like).
  uint64_t type1 = 0;
  /// Type 2: inst_executed_shared_stores (CUDA) / SQ_INSTS_LDS (ROCm-like).
  uint64_t type2 = 0;
  /// Type 3: inst_executed_global_loads (CUDA) / SQ_INSTS_VMEM_RD.
  uint64_t type3 = 0;
  /// Type 4: inst_executed_global_stores (CUDA) / SQ_INSTS_VMEM_WR.
  uint64_t type4 = 0;
};

/// Extracts the Table 1 (CUDA) or Table 1-right (ROCm) fine-grained
/// counters from an aggregated profile.  Both views read the same simulated
/// ground truth — the two profiling "tools" differ only in which events a
/// metric name selects, mirroring ncu vs. hiprof.
FineGrainedCounts ComputeFineGrained(const AlgoProfile& profile,
                                     rt::Platform platform);

/// The four coarse-grained metrics of paper Table 2 / Figures 7-8, as
/// fractions in [0,1].
struct CoarseMetrics {
  /// achieved_occupancy (CUDA) / VALUBusy (ROCm-like).
  double warp_utilization = 0;
  /// shared_efficiency (CUDA) / 1-ALUStalledByLDS (ROCm-like).
  double shared_memory = 0;
  /// l2_tex_hit_rate (CUDA) / L2CacheHit (ROCm-like).
  double l2_hit = 0;
  /// gld_efficiency (CUDA) / MemUnitBusy (ROCm-like).
  double global_memory = 0;
};

CoarseMetrics ComputeCoarse(const AlgoProfile& profile, rt::Platform platform,
                            const vgpu::ArchConfig& arch,
                            const vgpu::TimingParams& params);

/// Paper Tables 1-2 metric names per platform, in row order.
std::vector<std::string> FineGrainedMetricNames(rt::Platform platform);
std::vector<std::string> CoarseMetricNames(rt::Platform platform);

/// Nearest-rank percentile of an unsorted sample (p in [0,1], clamped).
/// The value at rank ceil(p*n) (1-based) of the sorted sample: p=0.5 of
/// {a,b} is a, p=1.0 is the max, and any p on a single sample returns it.
/// Empty samples yield 0.  Shared by the serve scheduler's latency
/// snapshot and the trace-summary report.
double Percentile(std::vector<double> values, double p);

}  // namespace adgraph::prof

#endif  // ADGRAPH_PROF_METRICS_H_
