#ifndef ADGRAPH_NET_SERVER_H_
#define ADGRAPH_NET_SERVER_H_

/// \file
/// TCP front door for `serve::Scheduler` (DESIGN.md §2.10).
///
/// Protocol: line-delimited JSON over a plain TCP socket, one session per
/// connection.  A session opens with HELLO (naming its tenant), then issues
/// SUBMIT / POLL / CANCEL / STATS requests; every request line gets exactly
/// one response line, in order.
///
/// Threading: one accept thread hands each new connection to one of a small
/// pool of handler shards, round-robin.  Each shard runs a poll(2) loop
/// over its connections plus a self-pipe for wakeups; a connection is owned
/// by exactly one shard thread for its whole life, so per-connection state
/// needs no locks.  Slow readers and slow-loris writers are handled by
/// buffering: requests accumulate in a per-connection input buffer until a
/// newline arrives (bounded by max_line_bytes), responses drain through an
/// output buffer under POLLOUT.
///
/// Tenancy: SUBMIT charges the tenant's token-bucket / concurrency / byte
/// quotas (TenantTable) *before* the scheduler sees the job, and the charge
/// is released when the outcome is delivered — or by the orphan reaper when
/// the session disconnects first, so a dropped connection never leaks
/// reserved admission bytes.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr.h"
#include "graph/delta.h"
#include "net/json.h"
#include "net/tenant.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "serve/scheduler.h"
#include "util/status.h"

namespace adgraph::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is readable via Server::port()).
  uint16_t port = 0;
  size_t handler_threads = 2;
  size_t max_line_bytes = kDefaultMaxLineBytes;
  /// Live-session cap; excess connections get one error line and a close.
  size_t max_sessions = 256;
  /// Tenant quota contracts.  Empty = open access: any HELLO tenant name is
  /// accepted with no quotas (jobs still pass scheduler admission).
  std::vector<TenantConfig> tenants;
};

/// Aggregate request counters (atomics snapshot; also exported as obs
/// series on the scheduler's registry).
struct ServerCounters {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t requests = 0;
  uint64_t protocol_errors = 0;
  uint64_t lines_oversized = 0;
  uint64_t submits_accepted = 0;
  uint64_t submits_rejected_quota = 0;
  uint64_t submits_rejected_scheduler = 0;
  uint64_t jobs_orphaned = 0;
  uint64_t mutations_applied = 0;
};

class Server {
 public:
  /// Graphs a SUBMIT may name (request field "graph"; "default" when
  /// absent).  Shared-const, so sessions and workers share them freely.
  using GraphMap = std::map<std::string, std::shared_ptr<const graph::CsrGraph>>;

  /// Binds, listens and starts the accept + handler threads.  The
  /// scheduler must outlive the returned server.
  static Result<std::unique_ptr<Server>> Start(serve::Scheduler* scheduler,
                                               GraphMap graphs,
                                               ServerOptions options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves port 0 to the kernel's pick).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every session (flushing pending output
  /// best-effort), releases all outstanding tenant charges and joins the
  /// threads.  Idempotent; the destructor calls it.  Jobs already handed
  /// to the scheduler keep running there — drain the scheduler afterwards.
  void Shutdown();

  ServerCounters Counters() const;
  TenantTable* tenants() { return &tenants_; }

 private:
  struct Shard;

  /// One job a session has in flight: the scheduler future plus the quota
  /// charge that must be released exactly once when the outcome lands.
  struct PendingJob {
    std::future<serve::JobOutcome> future;
    uint64_t charged_bytes = 0;
    bool charged = false;
    bool cancelled = false;
    bool done = false;
    serve::JobOutcome outcome;
    /// Non-empty when the job ran on a mutable graph: the name whose
    /// warm-start store a successful outcome seeds (DESIGN.md §2.12).
    std::string dynamic_graph;
    size_t algo_index = 0;
    /// Delta version of the snapshot the job was submitted against.
    uint64_t snapshot_version = 0;
    bool incremental_requested = false;
    /// Incremental was asked for but no previous result existed; the
    /// scheduler ran a plain full job, and POLL reports the fallback.
    bool cold_warm_start = false;
  };

  struct Connection {
    int fd = -1;
    uint64_t session_id = 0;
    bool hello_done = false;
    std::string tenant;
    /// Effective contract (configured tenant's, or defaults in open
    /// access); priority/weight/deadline are stamped from here.
    TenantConfig contract;
    bool quotas_enforced = false;
    std::string inbuf;
    std::string outbuf;
    /// Close once outbuf drains (set after a fatal protocol error).
    bool drop_after_flush = false;
    uint64_t next_job_id = 1;
    std::map<uint64_t, PendingJob> jobs;
    uint64_t trace_track = 0;  ///< lazily registered when tracing is on
    /// Owning shard; lets request handlers orphan a still-charged future
    /// (POLL on a cancelled job) without waiting for the session to die.
    Shard* shard = nullptr;
  };

  /// A job whose session died before its outcome arrived; the reaper polls
  /// the future and releases the tenant charge when it resolves.
  struct OrphanJob {
    std::string tenant;
    uint64_t charged_bytes = 0;
    std::future<serve::JobOutcome> future;
  };

  /// One handler thread's world.  `incoming` is the only cross-thread
  /// surface (accept thread pushes, handler adopts); everything else is
  /// owned by the shard thread.
  struct Shard {
    std::thread thread;
    int wake_fds[2] = {-1, -1};  ///< self-pipe: [0] read, [1] write
    std::mutex mutex;
    std::vector<int> incoming;
    std::vector<std::unique_ptr<Connection>> connections;
    std::vector<OrphanJob> orphans;
  };

  /// Lazily-registered per-tenant obs handles (server-side series).
  struct TenantMetrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected_quota = nullptr;
    obs::Counter* shed_wire = nullptr;  ///< deadline_exceeded outcomes served
  };

  Server(serve::Scheduler* scheduler, GraphMap graphs, ServerOptions options);

  Status Listen();
  void RegisterMetrics();
  void AcceptLoop();
  void HandlerLoop(Shard* shard);
  void AdoptIncoming(Shard* shard);
  void WakeShard(Shard* shard);

  /// Drains readable bytes into the connection's input buffer and handles
  /// complete lines.  False = the connection must be dropped.
  bool HandleReadable(Connection* conn);
  /// Flushes as much of outbuf as the socket accepts.  False = drop.
  bool FlushOutput(Connection* conn);
  void ProcessBufferedLines(Connection* conn);

  Json HandleRequest(Connection* conn, const std::string& line);
  Json HandleHello(Connection* conn, const Json& request);
  Json HandleSubmit(Connection* conn, const Json& request);
  Json HandlePoll(Connection* conn, const Json& request);
  Json HandleCancel(Connection* conn, const Json& request);
  Json HandleMutate(Connection* conn, const Json& request);
  Json HandleStats(Connection* conn, const Json& request);
  Json HandleInspect(Connection* conn, const Json& request);

  /// Checks a pending job's future without blocking; moves the outcome in
  /// and releases the quota charge once, the first time it is ready.
  void RefreshPendingJob(Connection* conn, uint64_t job_id, PendingJob* job);
  void ReleaseCharge(const std::string& tenant, PendingJob* job);

  void DropConnection(Shard* shard, std::unique_ptr<Connection> conn);
  /// Releases charges of orphaned jobs whose futures resolved; `final`
  /// releases everything unconditionally (server teardown).
  void ReapOrphans(Shard* shard, bool final);

  TenantMetrics* MetricsFor(const std::string& tenant);

  /// Mutable state of one served graph: the delta layered over the start-up
  /// base, plus the published snapshot SUBMIT reads.  Mutations serialize on
  /// the per-graph mutex; submits only copy the snapshot pointer under it.
  struct DynamicGraph {
    std::mutex mutex;
    graph::DeltaGraph delta;
    std::shared_ptr<const graph::CsrGraph> snapshot;
    /// Warm-start source of `"incremental": true` submits: the newest
    /// successful payload per algorithm (keyed by the params variant
    /// index) and the delta version it corresponds to.  Guarded by
    /// `mutex`; seeded by every successful job on this graph.
    struct PreviousResult {
      std::shared_ptr<const serve::JobPayload> payload;
      uint64_t version = 0;
    };
    std::map<size_t, PreviousResult> previous;
  };

  serve::Scheduler* scheduler_;
  GraphMap graphs_;
  /// Per-name mutation state; a graph missing here (non-normal-form base)
  /// stays static and MUTATE on it is failed_precondition.
  std::map<std::string, std::unique_ptr<DynamicGraph>> dynamic_;
  ServerOptions options_;
  TenantTable tenants_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int accept_wake_fds_[2] = {-1, -1};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool shutdown_done_ = false;
  std::mutex shutdown_mutex_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<size_t> live_sessions_{0};

  // Counters (relaxed atomics; snapshot via Counters()).
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> lines_oversized_{0};
  std::atomic<uint64_t> submits_accepted_{0};
  std::atomic<uint64_t> submits_rejected_quota_{0};
  std::atomic<uint64_t> submits_rejected_scheduler_{0};
  std::atomic<uint64_t> jobs_orphaned_{0};
  std::atomic<uint64_t> mutations_applied_{0};

  // obs handles on the scheduler's registry (stable pointers).
  obs::Counter* metric_sessions_opened_ = nullptr;
  obs::Counter* metric_sessions_closed_ = nullptr;
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_protocol_errors_ = nullptr;
  obs::Gauge* metric_live_sessions_ = nullptr;
  std::mutex tenant_metrics_mutex_;
  std::map<std::string, TenantMetrics> tenant_metrics_;
};

}  // namespace adgraph::net

#endif  // ADGRAPH_NET_SERVER_H_
