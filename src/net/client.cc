#include "net/client.h"

#include "net/wire.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace adgraph::net {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  inbuf_.clear();
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                       &addrs);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  std::string error = "no usable address";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    error = std::string("connect: ") + std::strerror(errno);
    close(fd);
    fd = -1;
  }
  freeaddrinfo(addrs);
  if (fd < 0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + error);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Result<std::string> Client::ReadLine(double timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (true) {
    size_t newline = inbuf_.find('\n');
    if (newline != std::string::npos) {
      std::string line = inbuf_.substr(0, newline);
      inbuf_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded("no response line within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // deadline check handles expiry
    char buf[4096];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<Json> Client::Call(const Json& request, double timeout_ms) {
  ADGRAPH_RETURN_NOT_OK(SendLine(request.Dump()));
  ADGRAPH_ASSIGN_OR_RETURN(std::string line, ReadLine(timeout_ms));
  return Json::Parse(line);
}

Result<Json> Client::Hello(const std::string& tenant, double timeout_ms) {
  Json hello = Json::MakeObject();
  hello.Set("op", "HELLO");
  hello.Set("proto", kProtocolVersion);
  hello.Set("tenant", tenant);
  ADGRAPH_ASSIGN_OR_RETURN(Json response, Call(hello, timeout_ms));
  if (!response.GetBool("ok", false)) {
    return Status::NotFound("HELLO rejected: " +
                            response.GetString("error", "(no error field)"));
  }
  return response;
}

Result<Json> Client::WaitJob(uint64_t job_id, double timeout_ms,
                             double poll_interval_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (true) {
    Json poll_request = Json::MakeObject();
    poll_request.Set("op", "POLL");
    poll_request.Set("job", job_id);
    ADGRAPH_ASSIGN_OR_RETURN(Json response, Call(poll_request, timeout_ms));
    if (!response.GetBool("ok", false)) {
      return Status::Internal("POLL failed: " +
                              response.GetString("error", "(no error field)"));
    }
    if (response.GetBool("done", false)) return response;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("job " + std::to_string(job_id) +
                                      " not done within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll_interval_ms));
  }
}

Result<Json> Client::Mutate(const std::string& graph, Json updates,
                            bool compact, double timeout_ms) {
  Json request = Json::MakeObject();
  request.Set("op", "MUTATE");
  request.Set("graph", graph);
  request.Set("updates", std::move(updates));
  if (compact) request.Set("compact", true);
  ADGRAPH_ASSIGN_OR_RETURN(Json response, Call(request, timeout_ms));
  if (!response.GetBool("ok", false)) {
    return Status::Internal("MUTATE failed: " +
                            response.GetString("error", "(no error field)"));
  }
  return response;
}

Result<Json> Client::Inspect(uint64_t wire_job_id,
                             const std::string& trace_id_hex,
                             double timeout_ms) {
  Json request = Json::MakeObject();
  request.Set("op", "INSPECT");
  if (wire_job_id != 0) {
    request.Set("job", wire_job_id);
  } else if (!trace_id_hex.empty()) {
    request.Set("trace_id", trace_id_hex);
  }
  ADGRAPH_ASSIGN_OR_RETURN(Json response, Call(request, timeout_ms));
  if (!response.GetBool("ok", false)) {
    return Status::NotFound("INSPECT failed: " +
                            response.GetString("error", "(no error field)"));
  }
  return response;
}

}  // namespace adgraph::net
