#include "net/wire.h"

#include <cstdio>
#include <cstdlib>

#include "core/subgraph.h"

namespace adgraph::net {
namespace {

/// strtod-based number parse of an untrusted kv value; no exceptions.
Result<double> ParseNumericValue(const std::string& key,
                                 const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    return Status::InvalidArgument("param '" + key + "' wants a number, got '" +
                                   value + "'");
  }
  return v;
}

}  // namespace

std::string_view WireStatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfMemory: return "out_of_memory";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kDeadlock: return "deadlock";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "internal";
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

Result<serve::JobParams> BuildJobParams(
    serve::Algorithm algo, const std::map<std::string, std::string>& kv,
    graph::vid_t num_vertices) {
  auto get_number = [&](const char* key, double dflt) -> Result<double> {
    auto it = kv.find(key);
    if (it == kv.end()) return dflt;
    return ParseNumericValue(key, it->second);
  };
  switch (algo) {
    case serve::Algorithm::kBfs: {
      core::BfsOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double source, get_number("source", 0));
      ADGRAPH_ASSIGN_OR_RETURN(double symmetric, get_number("symmetric", 0));
      o.source = static_cast<graph::vid_t>(source);
      o.assume_symmetric = symmetric != 0;
      return serve::JobParams(o);
    }
    case serve::Algorithm::kSssp: {
      core::SsspOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double source, get_number("source", 0));
      o.source = static_cast<graph::vid_t>(source);
      return serve::JobParams(o);
    }
    case serve::Algorithm::kPageRank: {
      core::PageRankOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double iters,
                               get_number("iters", o.max_iterations));
      o.max_iterations = static_cast<uint32_t>(iters);
      return serve::JobParams(o);
    }
    case serve::Algorithm::kTriangleCount: {
      core::TcOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double orient, get_number("orient", 1));
      o.orient = orient != 0;
      return serve::JobParams(o);
    }
    case serve::Algorithm::kConnectedComponents:
      return serve::JobParams(core::CcOptions{});
    case serve::Algorithm::kKCore: {
      core::KCoreOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double k, get_number("k", 3));
      o.k = static_cast<uint32_t>(k);
      return serve::JobParams(o);
    }
    case serve::Algorithm::kJaccard:
      return serve::JobParams(core::JaccardOptions{});
    case serve::Algorithm::kWidestPath: {
      core::WidestPathOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double source, get_number("source", 0));
      o.source = static_cast<graph::vid_t>(source);
      return serve::JobParams(o);
    }
    case serve::Algorithm::kColoring:
      return serve::JobParams(core::ColoringOptions{});
    case serve::Algorithm::kEsbv: {
      core::EsbvOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double fraction, get_number("fraction", 0.5));
      ADGRAPH_ASSIGN_OR_RETURN(double seed, get_number("seed", 7));
      o.vertices = core::SelectPseudoCluster(num_vertices, fraction,
                                             static_cast<uint64_t>(seed));
      return serve::JobParams(o);
    }
    case serve::Algorithm::kBetweenness: {
      core::BcOptions o;
      ADGRAPH_ASSIGN_OR_RETURN(double source, get_number("source", 0));
      o.source = static_cast<graph::vid_t>(source);
      return serve::JobParams(o);
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<serve::JobParams> JobParamsFromJson(serve::Algorithm algo,
                                           const Json* params,
                                           graph::vid_t num_vertices) {
  std::map<std::string, std::string> kv;
  if (params != nullptr && !params->is_null()) {
    if (!params->is_object()) {
      return Status::InvalidArgument("'params' must be a JSON object");
    }
    for (const auto& [key, value] : params->members()) {
      if (value.is_number()) {
        // Json(value).Dump() prints integral doubles without a decimal
        // point, which is what the numeric param parser wants.
        kv[key] = value.Dump();
      } else if (value.is_string()) {
        kv[key] = value.AsString();
      } else if (value.is_bool()) {
        kv[key] = std::string(value.AsBool() ? "1" : "0");
      } else {
        return Status::InvalidArgument("param '" + key +
                                       "' must be a number, string or bool");
      }
    }
  }
  return BuildJobParams(algo, kv, num_vertices);
}

Json OutcomeToJson(const serve::JobOutcome& outcome) {
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("done", true);
  response.Set("status", std::string(WireStatusName(outcome.status.code())));
  if (!outcome.status.ok()) {
    response.Set("error", outcome.status.message());
  }
  if (!outcome.tag.empty()) response.Set("tag", outcome.tag);
  response.Set("device", outcome.device_name);
  response.Set("queue_ms", outcome.queue_wall_ms);
  response.Set("exec_ms", outcome.exec_wall_ms);
  // Trace identity (DESIGN.md §2.14): the propagated end-to-end id plus
  // the scheduler's job id, so a caller holding either can INSPECT.  The
  // wire job id ("job") is stamped by the POLL handler, which owns it.
  if (outcome.trace_id != 0) {
    response.Set("trace_id", trace::TraceIdHex(outcome.trace_id));
  }
  response.Set("sched_job_id", outcome.job_id);
  if (outcome.status.ok()) {
    response.Set("algo",
                 std::string(serve::AlgorithmName(static_cast<serve::Algorithm>(
                     outcome.payload.index()))));
    response.Set("modeled_ms", outcome.modeled_ms);
    response.Set("transfer_ms", outcome.modeled_transfer_ms);
    response.Set("cache_hit", outcome.cache_hit);
    response.Set("fingerprint",
                 FingerprintHex(serve::FingerprintPayload(outcome.payload)));
    if (outcome.gang_devices > 1) {
      response.Set("gang_devices", static_cast<uint64_t>(outcome.gang_devices));
      response.Set("exchange_bytes", outcome.exchange_bytes);
      response.Set("exchange_rounds", outcome.exchange_rounds);
    }
    if (outcome.streamed) {
      // Out-of-core streamed execution (submit field "ooc": true).
      response.Set("streamed", true);
      response.Set("ooc_shards", static_cast<uint64_t>(outcome.ooc_shards));
      response.Set("ooc_staged_bytes", outcome.ooc_staged_bytes);
      response.Set("ooc_overlap_speedup", outcome.ooc_overlap_speedup);
    }
    if (outcome.job_profile.num_kernels > 0) {
      response.Set("profile", JobProfileToJson(outcome.job_profile));
    }
  }
  if (outcome.incremental_requested) {
    // Incremental recompute (submit field "incremental": true): whether
    // the delta path actually ran, and why not when it did not — the
    // silent-fallback observability this field exists for.
    response.Set("incremental", outcome.incremental);
    if (!outcome.fallback_reason.empty()) {
      response.Set("fallback_reason", outcome.fallback_reason);
    }
    response.Set("version", outcome.result_version);
  }
  return response;
}

Json JobProfileToJson(const prof::JobProfile& profile) {
  Json p = Json::MakeObject();
  p.Set("num_kernels", profile.num_kernels);
  p.Set("total_ms", profile.total_ms);
  p.Set("total_cycles", profile.total_cycles);
  p.Set("warp_inst_issued", profile.warp_inst_issued);
  p.Set("branches", profile.branches);
  p.Set("divergent_branches", profile.divergent_branches);
  p.Set("dram_bytes", profile.dram_bytes);
  p.Set("divergent_branch_ratio", profile.divergent_branch_ratio);
  p.Set("gld_efficiency", profile.gld_efficiency);
  p.Set("gst_efficiency", profile.gst_efficiency);
  p.Set("l1_hit_rate", profile.l1_hit_rate);
  p.Set("l2_hit_rate", profile.l2_hit_rate);
  p.Set("achieved_occupancy", profile.achieved_occupancy);
  p.Set("exposed_latency_cycles", profile.exposed_latency_cycles);
  Json top = Json::MakeArray();
  for (const prof::JobKernelEntry& entry : profile.top_kernels) {
    Json row = Json::MakeObject();
    row.Set("kernel", entry.kernel_name);
    row.Set("launches", entry.launches);
    row.Set("cycles", entry.cycles);
    row.Set("time_ms", entry.time_ms);
    top.PushBack(std::move(row));
  }
  p.Set("top_kernels", std::move(top));
  return p;
}

Json TraceEventToJson(const trace::TraceEvent& event) {
  Json e = Json::MakeObject();
  e.Set("name", event.name);
  e.Set("cat", event.category);
  e.Set("track", event.track);
  e.Set("ts_us", event.ts_us);
  e.Set("dur_us", event.dur_us);
  e.Set("ph", std::string(1, event.phase));
  if (!event.args.empty()) {
    Json args = Json::MakeObject();
    for (const trace::TraceArg& arg : event.args) {
      if (arg.is_number) {
        char* end = nullptr;
        args.Set(arg.key, std::strtod(arg.value.c_str(), &end));
      } else {
        args.Set(arg.key, arg.value);
      }
    }
    e.Set("args", std::move(args));
  }
  return e;
}

Json JobRecordToJson(const serve::FlightRecorder::JobRecord& record,
                     bool with_spans) {
  Json r = Json::MakeObject();
  r.Set("trace_id", trace::TraceIdHex(record.trace_id));
  if (record.wire_job_id != 0) r.Set("job", record.wire_job_id);
  r.Set("sched_job_id", record.sched_job_id);
  if (!record.tag.empty()) r.Set("tag", record.tag);
  r.Set("tenant", record.tenant.empty() ? "-" : record.tenant);
  r.Set("algo", record.algorithm);
  r.Set("device", record.device);
  r.Set("status", std::string(WireStatusName(record.status.code())));
  if (!record.status.ok()) r.Set("error", record.status.message());
  r.Set("queue_ms", record.queue_wall_ms);
  r.Set("exec_ms", record.exec_wall_ms);
  r.Set("wall_ms", record.wall_ms());
  r.Set("modeled_ms", record.modeled_ms);
  Json triggers = Json::MakeArray();
  for (const std::string& trigger : record.triggers) triggers.PushBack(trigger);
  r.Set("triggers", std::move(triggers));
  if (record.profile.num_kernels > 0) {
    r.Set("profile", JobProfileToJson(record.profile));
  }
  if (with_spans) {
    Json spans = Json::MakeArray();
    for (const trace::TraceEvent& event : record.spans) {
      spans.PushBack(TraceEventToJson(event));
    }
    r.Set("spans", std::move(spans));
    r.Set("spans_dropped", record.spans_dropped);
  }
  return r;
}

Json ErrorResponse(const Status& status) {
  return ErrorResponse(WireStatusName(status.code()), status.message());
}

Json ErrorResponse(std::string_view code, std::string error) {
  Json response = Json::MakeObject();
  response.Set("ok", false);
  response.Set("code", std::string(code));
  response.Set("error", std::move(error));
  return response;
}

}  // namespace adgraph::net
