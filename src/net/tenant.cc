#include "net/tenant.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace adgraph::net {

Result<uint64_t> ParseByteSize(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty byte size");
  uint64_t multiplier = 1;
  size_t digits = text.size();
  switch (std::toupper(static_cast<unsigned char>(text.back()))) {
    case 'K': multiplier = 1ull << 10; --digits; break;
    case 'M': multiplier = 1ull << 20; --digits; break;
    case 'G': multiplier = 1ull << 30; --digits; break;
    case 'T': multiplier = 1ull << 40; --digits; break;
    default: break;
  }
  if (digits == 0) {
    return Status::InvalidArgument("byte size '" + std::string(text) +
                                   "' has no digits");
  }
  uint64_t value = 0;
  for (size_t i = 0; i < digits; ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed byte size '" +
                                     std::string(text) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value * multiplier;
}

std::string_view QuotaRejectName(QuotaReject reject) {
  switch (reject) {
    case QuotaReject::kNone: return "none";
    case QuotaReject::kUnknownTenant: return "unknown_tenant";
    case QuotaReject::kRate: return "rate";
    case QuotaReject::kConcurrent: return "concurrent";
    case QuotaReject::kBytes: return "bytes";
  }
  return "none";
}

Result<std::vector<TenantConfig>> ParseTenantConfigs(const std::string& text) {
  std::vector<TenantConfig> configs;
  std::istringstream lines(text);
  std::string raw;
  for (int number = 1; std::getline(lines, raw); ++number) {
    auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    std::istringstream in(raw);
    TenantConfig config;
    in >> config.name;
    for (const TenantConfig& existing : configs) {
      if (existing.name == config.name) {
        return Status::InvalidArgument("tenants line " +
                                       std::to_string(number) +
                                       ": duplicate tenant '" + config.name +
                                       "'");
      }
    }
    std::string token;
    while (in >> token) {
      auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument(
            "tenants line " + std::to_string(number) +
            ": expected key=value, got '" + token + "'");
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      auto parse_double = [&](double* out) -> Status {
        char* end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size()) {
          return Status::InvalidArgument("tenants line " +
                                         std::to_string(number) + ": '" + key +
                                         "' wants a number, got '" + value +
                                         "'");
        }
        *out = v;
        return Status::OK();
      };
      if (key == "rate") {
        ADGRAPH_RETURN_NOT_OK(parse_double(&config.rate_per_sec));
      } else if (key == "burst") {
        ADGRAPH_RETURN_NOT_OK(parse_double(&config.burst));
      } else if (key == "weight") {
        ADGRAPH_RETURN_NOT_OK(parse_double(&config.weight));
      } else if (key == "deadline_ms") {
        ADGRAPH_RETURN_NOT_OK(parse_double(&config.default_deadline_ms));
      } else if (key == "concurrent") {
        double v = 0;
        ADGRAPH_RETURN_NOT_OK(parse_double(&v));
        config.max_concurrent = static_cast<uint32_t>(v);
      } else if (key == "priority") {
        double v = 0;
        ADGRAPH_RETURN_NOT_OK(parse_double(&v));
        config.priority = static_cast<uint32_t>(v);
      } else if (key == "bytes") {
        ADGRAPH_ASSIGN_OR_RETURN(config.max_inflight_bytes,
                                 ParseByteSize(value));
      } else {
        return Status::InvalidArgument("tenants line " +
                                       std::to_string(number) +
                                       ": unknown key '" + key + "'");
      }
    }
    configs.push_back(std::move(config));
  }
  return configs;
}

TenantTable::TenantTable(std::vector<TenantConfig> configs)
    : epoch_(std::chrono::steady_clock::now()) {
  for (TenantConfig& config : configs) {
    State state;
    if (config.rate_per_sec > 0 && config.burst <= 0) {
      config.burst = std::max(config.rate_per_sec, 1.0);
    }
    state.tokens = config.burst;  // buckets start full
    state.config = config;
    tenants_.emplace(config.name, std::move(state));
  }
}

double TenantTable::NowSec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

const TenantConfig* TenantTable::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : &it->second.config;
}

Status TenantTable::Admit(const std::string& name, uint64_t estimated_bytes,
                          QuotaReject* reason) {
  return AdmitAt(name, estimated_bytes, NowSec(), reason);
}

Status TenantTable::AdmitAt(const std::string& name, uint64_t estimated_bytes,
                            double now_sec, QuotaReject* reason) {
  if (reason != nullptr) *reason = QuotaReject::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    if (reason != nullptr) *reason = QuotaReject::kUnknownTenant;
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  State& state = it->second;
  const TenantConfig& config = state.config;

  // Lazy token refill; time moving backwards (an injected test clock)
  // refills nothing rather than going negative.
  if (config.rate_per_sec > 0) {
    if (state.refilled_once && now_sec > state.last_refill_sec) {
      state.tokens =
          std::min(config.burst, state.tokens + (now_sec -
                                                 state.last_refill_sec) *
                                                    config.rate_per_sec);
    }
    state.last_refill_sec = now_sec;
    state.refilled_once = true;
    if (state.tokens < 1.0) {
      state.rejected_rate += 1;
      if (reason != nullptr) *reason = QuotaReject::kRate;
      return Status::ResourceExhausted(
          "tenant '" + name + "': rate quota exceeded (" +
          std::to_string(config.rate_per_sec) + "/s)");
    }
  }
  if (config.max_concurrent > 0 &&
      state.inflight_jobs >= config.max_concurrent) {
    state.rejected_concurrent += 1;
    if (reason != nullptr) *reason = QuotaReject::kConcurrent;
    return Status::ResourceExhausted(
        "tenant '" + name + "': concurrent-job cap (" +
        std::to_string(config.max_concurrent) + ") reached");
  }
  if (config.max_inflight_bytes > 0 &&
      state.inflight_bytes + estimated_bytes > config.max_inflight_bytes) {
    state.rejected_bytes += 1;
    if (reason != nullptr) *reason = QuotaReject::kBytes;
    return Status::ResourceExhausted(
        "tenant '" + name + "': in-flight byte cap (" +
        std::to_string(config.max_inflight_bytes) + " bytes) reached");
  }
  // All three budgets pass — charge them atomically (we hold the mutex).
  if (config.rate_per_sec > 0) state.tokens -= 1.0;
  state.inflight_jobs += 1;
  state.inflight_bytes += estimated_bytes;
  state.admitted += 1;
  return Status::OK();
}

void TenantTable::Release(const std::string& name, uint64_t estimated_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) return;
  State& state = it->second;
  state.inflight_jobs = state.inflight_jobs > 0 ? state.inflight_jobs - 1 : 0;
  state.inflight_bytes =
      state.inflight_bytes > estimated_bytes
          ? state.inflight_bytes - estimated_bytes
          : 0;
}

TenantTable::Usage TenantTable::GetUsage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Usage usage;
  auto it = tenants_.find(name);
  if (it == tenants_.end()) return usage;
  const State& state = it->second;
  usage.admitted = state.admitted;
  usage.rejected_rate = state.rejected_rate;
  usage.rejected_concurrent = state.rejected_concurrent;
  usage.rejected_bytes = state.rejected_bytes;
  usage.inflight_jobs = state.inflight_jobs;
  usage.inflight_bytes = state.inflight_bytes;
  usage.tokens = state.tokens;
  return usage;
}

std::vector<TenantConfig> TenantTable::Configs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantConfig> configs;
  configs.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) configs.push_back(state.config);
  return configs;
}

}  // namespace adgraph::net
