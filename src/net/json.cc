#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace adgraph::net {
namespace {

constexpr int kMaxDepth = 64;

/// Cursor over the input text for the recursive-descent parser.
struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos));
  }

  Result<Json> ParseValue(int depth);
  Result<Json> ParseObject(int depth);
  Result<Json> ParseArray(int depth);
  Result<std::string> ParseString();
  Result<Json> ParseNumber();
  Status Expect(std::string_view literal);
};

Status Parser::Expect(std::string_view literal) {
  if (text.substr(pos, literal.size()) != literal) {
    return Error("expected '" + std::string(literal) + "'");
  }
  pos += literal.size();
  return Status::OK();
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

Result<std::string> Parser::ParseString() {
  if (AtEnd() || Peek() != '"') return Error("expected string");
  ++pos;
  std::string out;
  while (true) {
    if (AtEnd()) return Error("unterminated string");
    char c = text[pos++];
    if (c == '"') return out;
    if (static_cast<unsigned char>(c) < 0x20) {
      return Error("raw control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (AtEnd()) return Error("unterminated escape");
    char esc = text[pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        auto hex4 = [&]() -> int64_t {
          if (pos + 4 > text.size()) return -1;
          uint32_t v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos + i];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= h - '0';
            else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
            else return -1;
          }
          pos += 4;
          return v;
        };
        int64_t cp = hex4();
        if (cp < 0) return Error("bad \\u escape");
        // Combine a UTF-16 surrogate pair when one follows; a lone
        // surrogate is encoded as-is (garbage in, labeled garbage out).
        if (cp >= 0xD800 && cp <= 0xDBFF &&
            text.substr(pos, 2) == "\\u") {
          size_t saved = pos;
          pos += 2;
          int64_t lo = hex4();
          if (lo >= 0xDC00 && lo <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            pos = saved;
          }
        }
        AppendUtf8(static_cast<uint32_t>(cp), &out);
        break;
      }
      default:
        return Error("unknown escape");
    }
  }
}

Result<Json> Parser::ParseNumber() {
  size_t start = pos;
  if (!AtEnd() && Peek() == '-') ++pos;
  while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                      Peek() == '+' || Peek() == '-')) {
    ++pos;
  }
  std::string token(text.substr(start, pos - start));
  // Enforce the JSON number grammar before strtod, which is laxer (it
  // accepts "+1", "01", ".5", "1.", hex, ...).
  {
    const char* p = token.c_str();
    if (*p == '-') ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      return Error("malformed number '" + token + "'");
    }
    if (*p == '0' && std::isdigit(static_cast<unsigned char>(p[1]))) {
      return Error("malformed number '" + token + "' (leading zero)");
    }
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
    if (*p == '.') {
      ++p;
      if (!std::isdigit(static_cast<unsigned char>(*p))) {
        return Error("malformed number '" + token + "'");
      }
      while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (*p == 'e' || *p == 'E') {
      ++p;
      if (*p == '+' || *p == '-') ++p;
      if (!std::isdigit(static_cast<unsigned char>(*p))) {
        return Error("malformed number '" + token + "'");
      }
      while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (*p != '\0') return Error("malformed number '" + token + "'");
  }
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || !std::isfinite(v)) {
    return Error("malformed number '" + token + "'");
  }
  return Json(v);
}

Result<Json> Parser::ParseObject(int depth) {
  ++pos;  // consume '{'
  Json obj = Json::MakeObject();
  SkipWhitespace();
  if (!AtEnd() && Peek() == '}') {
    ++pos;
    return obj;
  }
  while (true) {
    SkipWhitespace();
    ADGRAPH_ASSIGN_OR_RETURN(std::string key, ParseString());
    SkipWhitespace();
    ADGRAPH_RETURN_NOT_OK(Expect(":"));
    ADGRAPH_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
    obj.Set(key, std::move(value));
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated object");
    char c = text[pos++];
    if (c == '}') return obj;
    if (c != ',') return Error("expected ',' or '}'");
  }
}

Result<Json> Parser::ParseArray(int depth) {
  ++pos;  // consume '['
  Json arr = Json::MakeArray();
  SkipWhitespace();
  if (!AtEnd() && Peek() == ']') {
    ++pos;
    return arr;
  }
  while (true) {
    ADGRAPH_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
    arr.PushBack(std::move(value));
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated array");
    char c = text[pos++];
    if (c == ']') return arr;
    if (c != ',') return Error("expected ',' or ']'");
  }
}

Result<Json> Parser::ParseValue(int depth) {
  if (depth > kMaxDepth) return Error("nesting too deep");
  SkipWhitespace();
  if (AtEnd()) return Error("unexpected end of input");
  switch (Peek()) {
    case '{': return ParseObject(depth);
    case '[': return ParseArray(depth);
    case '"': {
      ADGRAPH_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    case 't':
      ADGRAPH_RETURN_NOT_OK(Expect("true"));
      return Json(true);
    case 'f':
      ADGRAPH_RETURN_NOT_OK(Expect("false"));
      return Json(false);
    case 'n':
      ADGRAPH_RETURN_NOT_OK(Expect("null"));
      return Json();
    default:
      return ParseNumber();
  }
}

}  // namespace

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

Json& Json::Set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            std::string fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::move(fallback);
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : fallback;
}

Json& Json::PushBack(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[32];
      // Integral values (the common case on this protocol: ids, counts,
      // byte sizes) print without an exponent or trailing zeros.
      if (number_ == std::floor(number_) && std::fabs(number_) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      *out += buf;
      break;
    }
    case Type::kString:
      AppendJsonString(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser parser{text};
  ADGRAPH_ASSIGN_OR_RETURN(Json value, parser.ParseValue(0));
  parser.SkipWhitespace();
  if (!parser.AtEnd()) return parser.Error("trailing garbage");
  return value;
}

}  // namespace adgraph::net
