#ifndef ADGRAPH_NET_CLIENT_H_
#define ADGRAPH_NET_CLIENT_H_

/// \file
/// Blocking line-protocol client for the TCP front door — what the
/// `adgraph_cli client` subcommand, the loopback bench and the protocol
/// tests speak.  One request line out, one response line in; ReadLine uses
/// poll(2) timeouts so a dead server fails a call instead of hanging it.
/// SendRaw/ReadLine are exposed separately so robustness tests can send
/// deliberately malformed or truncated bytes.

#include <cstdint>
#include <string>
#include <string_view>

#include "net/json.h"
#include "util/status.h"

namespace adgraph::net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or resolvable name).
  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();
  int fd() const { return fd_; }

  /// Sends exactly `bytes` (no framing added) — the raw hatch for
  /// protocol-robustness tests (truncated requests, slow-loris drips).
  Status SendRaw(std::string_view bytes);
  /// Sends `line` + '\n'.
  Status SendLine(const std::string& line);
  /// Reads up to the next '\n' (stripped), waiting at most `timeout_ms`.
  Result<std::string> ReadLine(double timeout_ms = 5000);

  /// One request/response round trip: Dump + SendLine + ReadLine + Parse.
  Result<Json> Call(const Json& request, double timeout_ms = 5000);

  /// HELLO handshake; fails (kPermissionDenied-ish NotFound) on an unknown
  /// tenant.  Returns the server's HELLO response.
  Result<Json> Hello(const std::string& tenant, double timeout_ms = 5000);

  /// POLLs `job_id` until done (sleeping poll_interval_ms between polls) or
  /// the deadline passes.  Returns the done-response.
  Result<Json> WaitJob(uint64_t job_id, double timeout_ms = 30000,
                       double poll_interval_ms = 1.0);

  /// MUTATE round trip: applies edge updates to a served graph.  `updates`
  /// is a JSON array of {"op":"add"|"del","u":...,"v":...,"w":...} objects;
  /// `compact` folds the delta log into a fresh base afterwards.  Returns
  /// the server's {version, applied, num_edges, fingerprint} response.
  Result<Json> Mutate(const std::string& graph, Json updates,
                      bool compact = false, double timeout_ms = 5000);

  /// INSPECT round trip against the pool's flight recorder (DESIGN.md
  /// §2.14).  With `wire_job_id` != 0 or a non-empty `trace_id_hex`,
  /// fetches that job's full record (span tree + profile) under "record";
  /// with neither, lists every retained record under "records".
  Result<Json> Inspect(uint64_t wire_job_id = 0,
                       const std::string& trace_id_hex = "",
                       double timeout_ms = 5000);

 private:
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace adgraph::net

#endif  // ADGRAPH_NET_CLIENT_H_
