#ifndef ADGRAPH_NET_WIRE_H_
#define ADGRAPH_NET_WIRE_H_

/// \file
/// Wire-protocol vocabulary shared by the server, the client, the CLI and
/// the tests (DESIGN.md §2.10): the line-delimited JSON request/response
/// grammar's field mappings, snake_case status names, and the job-parameter
/// builder that the `serve-batch` job files and SUBMIT requests both go
/// through — one mapping, so a job submitted over the socket is the same
/// job a batch file line would produce (the byte-identity contract of the
/// loopback bench).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "graph/csr.h"
#include "net/json.h"
#include "prof/metrics.h"
#include "serve/flight_recorder.h"
#include "serve/job.h"
#include "trace/trace.h"
#include "util/status.h"

namespace adgraph::net {

/// Protocol revision sent in HELLO; the server rejects newer clients.
inline constexpr int kProtocolVersion = 1;

/// Default per-request line cap — a request longer than this is a protocol
/// error and drops the session (slow-loris / garbage-stream protection).
inline constexpr size_t kDefaultMaxLineBytes = 64 * 1024;

/// snake_case wire name of a StatusCode ("ok", "deadline_exceeded", ...).
std::string_view WireStatusName(StatusCode code);

/// Payload fingerprint as a fixed-width lowercase hex string — the form the
/// byte-identity checks compare across transports.
std::string FingerprintHex(uint64_t fingerprint);

/// Builds the per-algorithm params variant from string key/values (the
/// `ALGO key=value...` job-file vocabulary: source, iters, k, orient,
/// symmetric, fraction, seed).  Unknown keys are ignored for forward
/// compatibility; malformed numeric values are kInvalidArgument — never an
/// exception, this parses untrusted socket input.
Result<serve::JobParams> BuildJobParams(
    serve::Algorithm algo, const std::map<std::string, std::string>& kv,
    graph::vid_t num_vertices);

/// SUBMIT-request form of BuildJobParams: `params` is a JSON object with
/// number/string/bool values (null = no params).  Same keys, same defaults.
Result<serve::JobParams> JobParamsFromJson(serve::Algorithm algo,
                                           const Json* params,
                                           graph::vid_t num_vertices);

/// Serializes a finished job outcome into the POLL done-response fields
/// (status/code, device, modeled/queue/exec timings, fingerprint, ...),
/// including the job's trace identity ("trace_id"/"sched_job_id", §2.14)
/// and — when per-job profiling ran — the "profile" object.
Json OutcomeToJson(const serve::JobOutcome& outcome);

/// The "profile" object of a POLL/INSPECT response: the JobProfile's raw
/// counts, Table 6–style derived ratios, and the top-kernels array.
Json JobProfileToJson(const prof::JobProfile& profile);

/// One span as an INSPECT response array element: name, cat, track (id and
/// registered name), ts/dur microseconds, phase, and the args object
/// (numeric args as numbers).
Json TraceEventToJson(const trace::TraceEvent& event);

/// One flight-recorder record: identity (trace_id hex, wire/sched job
/// ids), classification, timings, the "profile" object and — when
/// `with_spans` — the captured span tree under "spans".
Json JobRecordToJson(const serve::FlightRecorder::JobRecord& record,
                     bool with_spans);

/// Builds the uniform error response: {"ok":false,"code":...,"error":...}.
Json ErrorResponse(const Status& status);
Json ErrorResponse(std::string_view code, std::string error);

}  // namespace adgraph::net

#endif  // ADGRAPH_NET_WIRE_H_
