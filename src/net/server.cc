#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "prof/server_stats.h"
#include "serve/registry.h"
#include "trace/trace.h"

namespace adgraph::net {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::pair<int, int>> MakeWakePipe() {
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  for (int fd : fds) {
    Status status = SetNonBlocking(fd);
    if (!status.ok()) {
      close(fds[0]);
      close(fds[1]);
      return status;
    }
  }
  return std::make_pair(fds[0], fds[1]);
}

}  // namespace

Server::Server(serve::Scheduler* scheduler, GraphMap graphs,
               ServerOptions options)
    : scheduler_(scheduler),
      graphs_(std::move(graphs)),
      options_(std::move(options)),
      tenants_(options_.tenants) {
  if (options_.handler_threads == 0) options_.handler_threads = 1;
  if (options_.max_line_bytes == 0) options_.max_line_bytes =
      kDefaultMaxLineBytes;
}

Result<std::unique_ptr<Server>> Server::Start(serve::Scheduler* scheduler,
                                              GraphMap graphs,
                                              ServerOptions options) {
  if (scheduler == nullptr) {
    return Status::InvalidArgument("net::Server needs a scheduler");
  }
  if (graphs.empty()) {
    return Status::InvalidArgument("net::Server needs at least one graph");
  }
  std::unique_ptr<Server> server(
      new Server(scheduler, std::move(graphs), std::move(options)));
  // Wrap every normal-form graph in a delta buffer so MUTATE can serve it;
  // a base that fails normal-form validation stays static (SUBMIT works,
  // MUTATE reports failed_precondition).
  for (const auto& [name, base] : server->graphs_) {
    auto delta = graph::DeltaGraph::Create(base);
    if (!delta.ok()) continue;
    auto dynamic = std::make_unique<DynamicGraph>();
    dynamic->delta = std::move(*delta);
    auto snapshot = dynamic->delta.Snapshot();
    if (!snapshot.ok()) continue;
    dynamic->snapshot = std::move(*snapshot);
    server->dynamic_.emplace(name, std::move(dynamic));
  }
  ADGRAPH_RETURN_NOT_OK(server->Listen());
  server->RegisterMetrics();
  ADGRAPH_ASSIGN_OR_RETURN(auto accept_pipe, MakeWakePipe());
  server->accept_wake_fds_[0] = accept_pipe.first;
  server->accept_wake_fds_[1] = accept_pipe.second;
  for (size_t i = 0; i < server->options_.handler_threads; ++i) {
    auto shard = std::make_unique<Shard>();
    ADGRAPH_ASSIGN_OR_RETURN(auto pipe_fds, MakeWakePipe());
    shard->wake_fds[0] = pipe_fds.first;
    shard->wake_fds[1] = pipe_fds.second;
    server->shards_.push_back(std::move(shard));
  }
  for (auto& shard : server->shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([server = server.get(), raw] {
      server->HandlerLoop(raw);
    });
  }
  server->accept_thread_ = std::thread([server = server.get()] {
    server->AcceptLoop();
  });
  return server;
}

Server::~Server() { Shutdown(); }

Status Server::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse listen host '" +
                                   options_.host + "' as an IPv4 address");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IOError(std::string("bind ") + options_.host + ":" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 64) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  return SetNonBlocking(listen_fd_);
}

void Server::RegisterMetrics() {
  obs::Registry* registry = scheduler_->mutable_metrics_registry();
  metric_sessions_opened_ = registry->GetCounter(
      "adgraph_net_sessions_opened_total", "TCP sessions accepted");
  metric_sessions_closed_ = registry->GetCounter(
      "adgraph_net_sessions_closed_total", "TCP sessions closed");
  metric_requests_ = registry->GetCounter("adgraph_net_requests_total",
                                          "protocol request lines handled");
  metric_protocol_errors_ = registry->GetCounter(
      "adgraph_net_protocol_errors_total",
      "malformed, oversized or out-of-order request lines");
  metric_live_sessions_ = registry->GetGauge("adgraph_net_live_sessions",
                                             "currently open TCP sessions");
}

Server::TenantMetrics* Server::MetricsFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenant_metrics_mutex_);
  auto [it, inserted] = tenant_metrics_.try_emplace(tenant);
  if (inserted) {
    obs::Registry* registry = scheduler_->mutable_metrics_registry();
    obs::LabelSet labels = {{"tenant", tenant.empty() ? "-" : tenant}};
    it->second.accepted = registry->GetCounter(
        "adgraph_net_submits_accepted_total",
        "SUBMIT requests admitted through tenant quotas", labels);
    it->second.rejected_quota = registry->GetCounter(
        "adgraph_net_submits_rejected_quota_total",
        "SUBMIT requests rejected by tenant quotas", labels);
    it->second.shed_wire = registry->GetCounter(
        "adgraph_net_outcomes_shed_total",
        "deadline_exceeded outcomes delivered over the wire", labels);
  }
  return &it->second;
}

void Server::WakeShard(Shard* shard) {
  char byte = 1;
  ssize_t rc = write(shard->wake_fds[1], &byte, 1);
  (void)rc;  // a full pipe already wakes the shard
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true, std::memory_order_release);
  if (accept_wake_fds_[1] >= 0) {
    char byte = 1;
    ssize_t rc = write(accept_wake_fds_[1], &byte, 1);
    (void)rc;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& shard : shards_) WakeShard(shard.get());
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    for (int fd : shard->wake_fds) {
      if (fd >= 0) close(fd);
    }
  }
  for (int fd : accept_wake_fds_) {
    if (fd >= 0) close(fd);
  }
  accept_wake_fds_[0] = accept_wake_fds_[1] = -1;
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

ServerCounters Server::Counters() const {
  ServerCounters counters;
  counters.sessions_opened = sessions_opened_.load();
  counters.sessions_closed = sessions_closed_.load();
  counters.requests = requests_.load();
  counters.protocol_errors = protocol_errors_.load();
  counters.lines_oversized = lines_oversized_.load();
  counters.submits_accepted = submits_accepted_.load();
  counters.submits_rejected_quota = submits_rejected_quota_.load();
  counters.submits_rejected_scheduler = submits_rejected_scheduler_.load();
  counters.jobs_orphaned = jobs_orphaned_.load();
  counters.mutations_applied = mutations_applied_.load();
  return counters;
}

void Server::AcceptLoop() {
  size_t next_shard = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                     {accept_wake_fds_[0], POLLIN, 0}};
    int rc = poll(fds, 2, 500);
    if (rc < 0 && errno != EINTR) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    if (rc <= 0 || !(fds[0].revents & POLLIN)) continue;
    while (true) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (drained) or a transient accept error
      }
      if (!SetNonBlocking(fd).ok()) {
        close(fd);
        continue;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (live_sessions_.load() >= options_.max_sessions) {
        std::string line =
            ErrorResponse("resource_exhausted", "session limit reached")
                .Dump() +
            "\n";
        (void)send(fd, line.data(), line.size(), MSG_NOSIGNAL);
        close(fd);
        continue;
      }
      sessions_opened_.fetch_add(1);
      metric_sessions_opened_->Increment();
      metric_live_sessions_->Set(
          static_cast<double>(live_sessions_.fetch_add(1) + 1));
      Shard* shard = shards_[next_shard++ % shards_.size()].get();
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->incoming.push_back(fd);
      }
      WakeShard(shard);
    }
  }
}

void Server::AdoptIncoming(Shard* shard) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    fds.swap(shard->incoming);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session_id = next_session_id_.fetch_add(1);
    conn->shard = shard;
    shard->connections.push_back(std::move(conn));
  }
}

void Server::HandlerLoop(Shard* shard) {
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    AdoptIncoming(shard);
    fds.clear();
    fds.push_back({shard->wake_fds[0], POLLIN, 0});
    for (const auto& conn : shard->connections) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    // Short timeout while orphans wait on futures, long otherwise (wakeups
    // cover new connections; POLLIN covers request traffic).
    int timeout_ms = shard->orphans.empty() ? 200 : 20;
    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) continue;
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(shard->wake_fds[0], buf, sizeof(buf)) > 0) {
      }
    }
    std::vector<std::unique_ptr<Connection>> alive;
    alive.reserve(shard->connections.size());
    for (size_t i = 0; i < shard->connections.size(); ++i) {
      std::unique_ptr<Connection> conn = std::move(shard->connections[i]);
      short revents = rc > 0 ? fds[i + 1].revents : 0;
      bool keep = true;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        keep = HandleReadable(conn.get());
      }
      if (keep && !conn->outbuf.empty()) keep = FlushOutput(conn.get());
      if (keep && conn->drop_after_flush && conn->outbuf.empty()) keep = false;
      if (keep) {
        alive.push_back(std::move(conn));
      } else {
        DropConnection(shard, std::move(conn));
      }
    }
    shard->connections = std::move(alive);
    ReapOrphans(shard, /*final=*/false);
  }
  // Teardown: best-effort flush, then close everything and release every
  // outstanding tenant charge.
  AdoptIncoming(shard);
  for (auto& conn : shard->connections) FlushOutput(conn.get());
  while (!shard->connections.empty()) {
    auto conn = std::move(shard->connections.back());
    shard->connections.pop_back();
    DropConnection(shard, std::move(conn));
  }
  ReapOrphans(shard, /*final=*/true);
}

bool Server::HandleReadable(Connection* conn) {
  char buf[4096];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      // Keep reading until EAGAIN so level-triggered poll stays simple; the
      // per-line cap below bounds memory even against a garbage firehose.
      if (conn->inbuf.size() > 2 * options_.max_line_bytes) break;
      continue;
    }
    if (n == 0) {
      // Peer closed.  Process what arrived (complete lines get responses
      // that FlushOutput will try to deliver), then drop: a mid-request
      // disconnect must release the session, not wedge it.
      ProcessBufferedLines(conn);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends
  }
  ProcessBufferedLines(conn);
  return true;
}

bool Server::FlushOutput(Connection* conn) {
  while (!conn->outbuf.empty()) {
    ssize_t n = send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                     MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET — receiver is gone
  }
  return true;
}

void Server::ProcessBufferedLines(Connection* conn) {
  size_t start = 0;
  while (!conn->drop_after_flush) {
    size_t newline = conn->inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = conn->inbuf.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (line.size() > options_.max_line_bytes) {
      lines_oversized_.fetch_add(1);
      protocol_errors_.fetch_add(1);
      metric_protocol_errors_->Increment();
      conn->outbuf +=
          ErrorResponse("resource_exhausted",
                        "request line exceeds " +
                            std::to_string(options_.max_line_bytes) + " bytes")
              .Dump() +
          "\n";
      conn->drop_after_flush = true;
      break;
    }
    Json response = HandleRequest(conn, line);
    trace::Span respond(conn->trace_track, "respond", "net");
    conn->outbuf += response.Dump();
    conn->outbuf.push_back('\n');
  }
  conn->inbuf.erase(0, start);
  // A partial line longer than the cap can never complete into a legal
  // request — reject it now instead of buffering a slow-loris feed forever.
  if (!conn->drop_after_flush && conn->inbuf.size() > options_.max_line_bytes) {
    lines_oversized_.fetch_add(1);
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    conn->inbuf.clear();
    conn->outbuf +=
        ErrorResponse("resource_exhausted",
                      "request line exceeds " +
                          std::to_string(options_.max_line_bytes) + " bytes")
            .Dump() +
        "\n";
    conn->drop_after_flush = true;
  }
}

Json Server::HandleRequest(Connection* conn, const std::string& line) {
  requests_.fetch_add(1);
  metric_requests_->Increment();
  if (trace::Enabled() && conn->trace_track == 0) {
    conn->trace_track =
        trace::RegisterTrack("session " + std::to_string(conn->session_id));
  }
  trace::Span request_span(conn->trace_track, "request", "net");
  request_span.ArgNum("bytes", static_cast<uint64_t>(line.size()));

  trace::Span parse_span(conn->trace_track, "parse", "net");
  Result<Json> parsed = Json::Parse(line);
  parse_span.End();
  if (!parsed.ok()) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse(parsed.status());
  }
  const Json& request = *parsed;
  std::string op = request.GetString("op", "");
  request_span.Arg("op", op);

  Json response;
  if (op == "HELLO") {
    response = HandleHello(conn, request);
  } else if (op == "SUBMIT") {
    response = HandleSubmit(conn, request);
  } else if (op == "POLL") {
    response = HandlePoll(conn, request);
  } else if (op == "CANCEL") {
    response = HandleCancel(conn, request);
  } else if (op == "MUTATE") {
    response = HandleMutate(conn, request);
  } else if (op == "STATS") {
    response = HandleStats(conn, request);
  } else if (op == "INSPECT") {
    response = HandleInspect(conn, request);
  } else {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    response = ErrorResponse("invalid_argument", "unknown op '" + op + "'");
  }
  response.Set("op", op);
  if (const Json* seq = request.Find("seq")) response.Set("seq", *seq);
  return response;
}

Json Server::HandleHello(Connection* conn, const Json& request) {
  if (conn->hello_done) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse("already_exists", "session already started");
  }
  double proto = request.GetNumber("proto", kProtocolVersion);
  if (proto > kProtocolVersion) {
    return ErrorResponse("unimplemented",
                         "protocol version " + std::to_string(proto) +
                             " not supported (server speaks " +
                             std::to_string(kProtocolVersion) + ")");
  }
  std::string tenant = request.GetString("tenant", "");
  if (!tenants_.empty()) {
    const TenantConfig* config = tenants_.Find(tenant);
    if (config == nullptr) {
      // Unknown tenant is an authorization failure: respond, then close.
      protocol_errors_.fetch_add(1);
      metric_protocol_errors_->Increment();
      conn->drop_after_flush = true;
      return ErrorResponse("not_found", "unknown tenant '" + tenant + "'");
    }
    conn->contract = *config;
    conn->quotas_enforced = true;
  } else {
    conn->contract = TenantConfig{};
    conn->contract.name = tenant;
  }
  conn->tenant = tenant;
  conn->hello_done = true;
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("proto", kProtocolVersion);
  response.Set("session", conn->session_id);
  response.Set("tenant", tenant);
  response.Set("priority", static_cast<uint64_t>(conn->contract.priority));
  response.Set("weight", conn->contract.weight);
  if (conn->contract.default_deadline_ms > 0) {
    response.Set("deadline_ms", conn->contract.default_deadline_ms);
  }
  return response;
}

Json Server::HandleSubmit(Connection* conn, const Json& request) {
  if (!conn->hello_done) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse("invalid_argument", "HELLO must come first");
  }
  auto algo = serve::ParseAlgorithm(request.GetString("algo", ""));
  if (!algo.ok()) return ErrorResponse(algo.status());
  std::string graph_name = request.GetString("graph", "default");
  auto graph_it = graphs_.find(graph_name);
  if (graph_it == graphs_.end()) {
    return ErrorResponse("not_found", "unknown graph '" + graph_name + "'");
  }

  serve::JobSpec spec;
  spec.graph = graph_it->second;
  DynamicGraph* dyn = nullptr;
  if (auto dyn_it = dynamic_.find(graph_name); dyn_it != dynamic_.end()) {
    dyn = dyn_it->second.get();
  }
  uint64_t snapshot_version = 0;
  if (dyn != nullptr) {
    // Mutable graph: run against the current published snapshot, whose
    // (family fingerprint, epoch) stamp keys the residency cache per
    // version — a job admitted after a MUTATE can never reuse a resident
    // copy of an older epoch.
    std::lock_guard<std::mutex> lock(dyn->mutex);
    spec.graph = dyn->snapshot;
    snapshot_version = dyn->delta.version();
  }
  auto params = JobParamsFromJson(*algo, request.Find("params"),
                                  spec.graph->num_vertices());
  if (!params.ok()) return ErrorResponse(params.status());
  spec.params = std::move(*params);
  spec.arch_preference = request.GetString("arch", "");
  spec.tag = request.GetString("tag", "");
  spec.tenant = conn->tenant;
  spec.priority = conn->contract.priority;
  spec.fair_weight = conn->contract.weight;
  spec.deadline_ms =
      request.GetNumber("deadline_ms", conn->contract.default_deadline_ms);
  // Out-of-core streaming (DESIGN.md §2.13): a job over the device budget
  // is admitted through the streamed tier instead of rejected.
  spec.allow_streamed = request.GetBool("ooc", false);
  spec.ooc_shard_bytes =
      static_cast<uint64_t>(request.GetNumber("shard_bytes", 0));
  // Incremental recompute (DESIGN.md §2.12): warm-start from the newest
  // stored result of this algorithm on this mutable graph.
  const bool incremental = request.GetBool("incremental", false);
  bool cold_warm_start = false;
  if (incremental) {
    if (dyn == nullptr) {
      return ErrorResponse("failed_precondition",
                           "graph '" + graph_name +
                               "' does not accept mutations, so there is "
                               "nothing to recompute incrementally");
    }
    std::lock_guard<std::mutex> lock(dyn->mutex);
    auto prev = dyn->previous.find(spec.params.index());
    if (prev != dyn->previous.end()) {
      spec.warm_start = prev->second.payload;
      spec.previous_version = prev->second.version;
      spec.delta = &dyn->delta;
      spec.delta_mutex = &dyn->mutex;
    } else {
      // First run of this algorithm: full recompute, reported as a
      // fallback in the POLL response (the scheduler never saw the ask).
      cold_warm_start = true;
    }
  }
  const size_t algo_index = spec.params.index();
  const uint64_t estimate = serve::EstimateJobDeviceBytes(spec);

  // Trace-context propagation (DESIGN.md §2.14).  The wire job id is
  // minted *before* Submit — it used to be minted after, so the id on the
  // wire could never be correlated with the spans the scheduler had
  // already emitted for the job.  A client-supplied "trace_id" (hex) is
  // adopted; otherwise the server is the outermost layer and mints one.
  const uint64_t job_id = conn->next_job_id++;
  uint64_t trace_id = trace::ParseTraceIdHex(request.GetString("trace_id", ""));
  if (trace_id == 0) trace_id = trace::MintTraceId();
  spec.trace_id = trace_id;
  spec.wire_job_id = job_id;
  if (scheduler_->flight_recorder()->enabled()) {
    spec.capture = std::make_shared<trace::SpanCapture>();
  }
  // Installed for the rest of this handler: the admit span below is
  // stamped with the job's identity and lands in its capture, putting the
  // wire layer at the head of the span tree INSPECT returns.
  trace::ScopedTraceContext trace_scope(
      trace::TraceContext{trace_id, job_id, 0, spec.capture});

  trace::Span admit_span(conn->trace_track, "admit", "net");
  admit_span.ArgNum("estimated_bytes", estimate);
  if (conn->quotas_enforced) {
    QuotaReject reason = QuotaReject::kNone;
    Status quota = tenants_.Admit(conn->tenant, estimate, &reason);
    if (!quota.ok()) {
      submits_rejected_quota_.fetch_add(1);
      MetricsFor(conn->tenant)->rejected_quota->Increment();
      Json response = ErrorResponse(quota);
      response.Set("reason", std::string(QuotaRejectName(reason)));
      return response;
    }
  }
  auto submitted = scheduler_->Submit(std::move(spec));
  admit_span.End();
  if (!submitted.ok()) {
    if (conn->quotas_enforced) tenants_.Release(conn->tenant, estimate);
    submits_rejected_scheduler_.fetch_add(1);
    return ErrorResponse(submitted.status());
  }
  PendingJob pending;
  pending.future = std::move(*submitted);
  pending.charged = conn->quotas_enforced;
  pending.charged_bytes = estimate;
  pending.dynamic_graph = dyn != nullptr ? graph_name : "";
  pending.algo_index = algo_index;
  pending.snapshot_version = snapshot_version;
  pending.incremental_requested = incremental;
  pending.cold_warm_start = cold_warm_start;
  conn->jobs.emplace(job_id, std::move(pending));
  submits_accepted_.fetch_add(1);
  MetricsFor(conn->tenant)->accepted->Increment();

  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("job", job_id);
  response.Set("trace_id", trace::TraceIdHex(trace_id));
  response.Set("estimated_bytes", estimate);
  std::string tag = request.GetString("tag", "");
  if (!tag.empty()) response.Set("tag", tag);
  return response;
}

void Server::ReleaseCharge(const std::string& tenant, PendingJob* job) {
  if (!job->charged) return;
  job->charged = false;
  tenants_.Release(tenant, job->charged_bytes);
}

void Server::RefreshPendingJob(Connection* conn, uint64_t job_id,
                               PendingJob* job) {
  (void)job_id;
  if (job->done || !job->future.valid()) return;
  if (job->future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return;
  }
  job->outcome = job->future.get();
  job->done = true;
  ReleaseCharge(conn->tenant, job);
  if (job->outcome.status.ok() && !job->dynamic_graph.empty()) {
    // Seed the mutable graph's warm-start store: this payload becomes the
    // `previous` of the next `"incremental": true` submit.  Warm-started
    // jobs compute on the delta's snapshot at execution time, so their
    // outcome carries the authoritative version; full runs correspond to
    // the snapshot published at submit.
    auto dyn_it = dynamic_.find(job->dynamic_graph);
    if (dyn_it != dynamic_.end()) {
      DynamicGraph* dyn = dyn_it->second.get();
      const uint64_t version = job->outcome.incremental_requested
                                   ? job->outcome.result_version
                                   : job->snapshot_version;
      std::lock_guard<std::mutex> lock(dyn->mutex);
      auto& prev = dyn->previous[job->algo_index];
      if (prev.payload == nullptr || version >= prev.version) {
        prev.payload =
            std::make_shared<const serve::JobPayload>(job->outcome.payload);
        prev.version = version;
      }
    }
  }
}

Json Server::HandlePoll(Connection* conn, const Json& request) {
  if (!conn->hello_done) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse("invalid_argument", "HELLO must come first");
  }
  const uint64_t job_id = static_cast<uint64_t>(request.GetNumber("job", 0));
  auto it = conn->jobs.find(job_id);
  if (it == conn->jobs.end()) {
    return ErrorResponse("not_found",
                         "unknown job " + std::to_string(job_id) +
                             " (never submitted, or already delivered)");
  }
  PendingJob& job = it->second;
  RefreshPendingJob(conn, job_id, &job);
  if (job.cancelled) {
    // Deterministic terminal report: a POLL after CANCEL always delivers
    // status "cancelled" and consumes the job id, whether or not the
    // scheduler resolved the job in the meantime — the response no longer
    // races the worker/reaper.  A still-charged future is handed to the
    // orphan reaper so the tenant's quota releases when it resolves.
    if (!job.done && job.charged) {
      jobs_orphaned_.fetch_add(1);
      conn->shard->orphans.push_back(
          OrphanJob{conn->tenant, job.charged_bytes, std::move(job.future)});
      job.charged = false;
    }
    Json response = Json::MakeObject();
    response.Set("ok", true);
    response.Set("done", true);
    response.Set("job", job_id);
    response.Set("cancelled", true);
    response.Set("status",
                 std::string(WireStatusName(StatusCode::kCancelled)));
    conn->jobs.erase(it);
    return response;
  }
  if (!job.done) {
    Json response = Json::MakeObject();
    response.Set("ok", true);
    response.Set("done", false);
    response.Set("job", job_id);
    return response;
  }
  Json response = OutcomeToJson(job.outcome);
  response.Set("job", job_id);
  if (job.incremental_requested && job.cold_warm_start) {
    // The scheduler ran a plain full job (no previous result existed);
    // report the fallback here so the ask is never silently absorbed.
    response.Set("incremental", false);
    response.Set("fallback_reason", "no previous result to warm-start from");
    response.Set("version", job.snapshot_version);
  }
  if (job.outcome.status.IsDeadlineExceeded()) {
    MetricsFor(conn->tenant)->shed_wire->Increment();
  }
  // Delivered-once semantics: the outcome's memory is freed now; a second
  // POLL of the same id reports not_found.
  conn->jobs.erase(it);
  return response;
}

Json Server::HandleCancel(Connection* conn, const Json& request) {
  if (!conn->hello_done) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse("invalid_argument", "HELLO must come first");
  }
  const uint64_t job_id = static_cast<uint64_t>(request.GetNumber("job", 0));
  auto it = conn->jobs.find(job_id);
  if (it == conn->jobs.end()) {
    return ErrorResponse("not_found", "unknown job " + std::to_string(job_id));
  }
  PendingJob& job = it->second;
  RefreshPendingJob(conn, job_id, &job);
  // The scheduler has no preemption: CANCEL is a server-side mark.  The
  // outcome (when it lands) is still delivered, flagged `cancelled`.
  job.cancelled = true;
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("job", job_id);
  response.Set("done", job.done);
  response.Set("cancelled", true);
  return response;
}

Json Server::HandleMutate(Connection* conn, const Json& request) {
  if (!conn->hello_done) {
    protocol_errors_.fetch_add(1);
    metric_protocol_errors_->Increment();
    return ErrorResponse("invalid_argument", "HELLO must come first");
  }
  std::string graph_name = request.GetString("graph", "default");
  if (graphs_.find(graph_name) == graphs_.end()) {
    return ErrorResponse("not_found", "unknown graph '" + graph_name + "'");
  }
  auto dyn_it = dynamic_.find(graph_name);
  if (dyn_it == dynamic_.end()) {
    return ErrorResponse(
        "failed_precondition",
        "graph '" + graph_name + "' does not accept mutations");
  }

  std::vector<graph::EdgeUpdate> updates;
  const Json* updates_json = request.Find("updates");
  if (updates_json != nullptr && !updates_json->is_null()) {
    if (!updates_json->is_array()) {
      return ErrorResponse("invalid_argument", "'updates' must be an array");
    }
    updates.reserve(updates_json->size());
    for (const Json& item : updates_json->items()) {
      if (!item.is_object()) {
        return ErrorResponse("invalid_argument",
                             "each update must be an object");
      }
      std::string kind = item.GetString("op", "add");
      graph::EdgeUpdate update;
      if (kind == "add" || kind == "insert") {
        update.insert = true;
      } else if (kind == "del" || kind == "delete" || kind == "remove") {
        update.insert = false;
      } else {
        return ErrorResponse("invalid_argument",
                             "update op must be add or del, got '" + kind +
                                 "'");
      }
      update.u = static_cast<graph::vid_t>(item.GetNumber("u", 0));
      update.v = static_cast<graph::vid_t>(item.GetNumber("v", 0));
      update.w = item.GetNumber("w", 1);
      updates.push_back(update);
    }
  }
  const bool compact = request.GetBool("compact", false);

  trace::Span mutate_span(conn->trace_track, "mutate", "net");
  mutate_span.ArgNum("updates", static_cast<uint64_t>(updates.size()));
  DynamicGraph* dynamic = dyn_it->second.get();
  uint64_t applied = 0;
  uint64_t version = 0;
  uint64_t num_edges = 0;
  uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(dynamic->mutex);
    auto applied_result = dynamic->delta.Apply(updates);
    if (!applied_result.ok()) return ErrorResponse(applied_result.status());
    applied = *applied_result;
    if (compact) {
      Status compacted = dynamic->delta.Compact();
      if (!compacted.ok()) return ErrorResponse(compacted);
    }
    // Bound per-graph history; incremental windows beyond this fall back
    // to full recompute anyway.
    dynamic->delta.TrimHistory(64 * 1024);
    auto snapshot = dynamic->delta.Snapshot();
    if (!snapshot.ok()) return ErrorResponse(snapshot.status());
    dynamic->snapshot = std::move(*snapshot);
    version = dynamic->delta.version();
    num_edges = dynamic->delta.num_edges();
    fingerprint = dynamic->delta.family_fingerprint();
  }
  if (applied > 0) {
    // Doom resident copies of older epochs of this family on every worker
    // so no post-mutation job is served a stale device graph (§2.12).
    scheduler_->InvalidateResidency(fingerprint, version);
    mutations_applied_.fetch_add(applied);
  }

  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("graph", graph_name);
  response.Set("applied", applied);
  response.Set("version", version);
  response.Set("num_edges", num_edges);
  response.Set("fingerprint", FingerprintHex(fingerprint));
  if (compact) response.Set("compacted", true);
  return response;
}

Json Server::HandleStats(Connection* conn, const Json& request) {
  (void)conn;
  (void)request;
  prof::ServerStats stats = scheduler_->Snapshot();
  Json jobs = Json::MakeObject();
  jobs.Set("submitted", stats.jobs_submitted);
  jobs.Set("completed", stats.jobs_completed);
  jobs.Set("failed", stats.jobs_failed);
  jobs.Set("rejected_admission", stats.jobs_rejected_admission);
  jobs.Set("rejected_backpressure", stats.jobs_rejected_backpressure);
  jobs.Set("shed_deadline", stats.jobs_shed_deadline);
  jobs.Set("queued", stats.jobs_queued);
  jobs.Set("running", stats.jobs_running);
  jobs.Set("jobs_per_sec", stats.jobs_per_sec);

  ServerCounters counters = Counters();
  Json server = Json::MakeObject();
  server.Set("sessions_open", static_cast<uint64_t>(live_sessions_.load()));
  server.Set("sessions_opened", counters.sessions_opened);
  server.Set("requests", counters.requests);
  server.Set("protocol_errors", counters.protocol_errors);
  server.Set("submits_accepted", counters.submits_accepted);
  server.Set("submits_rejected_quota", counters.submits_rejected_quota);
  server.Set("mutations_applied", counters.mutations_applied);

  Json tenants = Json::MakeArray();
  for (const TenantConfig& config : tenants_.Configs()) {
    TenantTable::Usage usage = tenants_.GetUsage(config.name);
    Json entry = Json::MakeObject();
    entry.Set("name", config.name);
    entry.Set("priority", static_cast<uint64_t>(config.priority));
    entry.Set("admitted", usage.admitted);
    entry.Set("rejected_rate", usage.rejected_rate);
    entry.Set("rejected_concurrent", usage.rejected_concurrent);
    entry.Set("rejected_bytes", usage.rejected_bytes);
    entry.Set("inflight_jobs", static_cast<uint64_t>(usage.inflight_jobs));
    entry.Set("inflight_bytes", usage.inflight_bytes);
    if (config.rate_per_sec > 0) entry.Set("tokens", usage.tokens);
    tenants.PushBack(std::move(entry));
  }

  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("jobs", std::move(jobs));
  response.Set("server", std::move(server));
  response.Set("tenants", std::move(tenants));
  return response;
}

Json Server::HandleInspect(Connection* conn, const Json& request) {
  (void)conn;
  const serve::FlightRecorder* recorder = scheduler_->flight_recorder();
  if (!recorder->enabled()) {
    return ErrorResponse("unavailable",
                         "the flight recorder is disabled on this pool");
  }
  // Lookup forms (any one of): "job" = the SUBMIT-returned wire id,
  // "sched_job_id" = the scheduler's id, "trace_id" = the hex trace id.
  // With none of them, list every retained record (without span trees —
  // a follow-up INSPECT with an id fetches one tree).
  const uint64_t wire_id = static_cast<uint64_t>(request.GetNumber("job", 0));
  const uint64_t sched_id =
      static_cast<uint64_t>(request.GetNumber("sched_job_id", 0));
  const std::string trace_hex = request.GetString("trace_id", "");
  if (wire_id == 0 && sched_id == 0 && trace_hex.empty()) {
    Json records = Json::MakeArray();
    for (const auto& record : recorder->Records()) {
      records.PushBack(JobRecordToJson(*record, /*with_spans=*/false));
    }
    Json response = Json::MakeObject();
    response.Set("ok", true);
    response.Set("records", std::move(records));
    return response;
  }
  std::shared_ptr<const serve::FlightRecorder::JobRecord> record;
  if (wire_id != 0) {
    record = recorder->FindByWireId(wire_id);
  } else if (sched_id != 0) {
    record = recorder->FindBySchedId(sched_id);
  } else {
    const uint64_t trace_id = trace::ParseTraceIdHex(trace_hex);
    if (trace_id == 0) {
      return ErrorResponse("invalid_argument",
                           "malformed trace_id '" + trace_hex + "'");
    }
    record = recorder->FindByTraceId(trace_id);
  }
  if (record == nullptr) {
    return ErrorResponse(
        "not_found",
        "no retained flight record for that id (not among the worst, or "
        "already evicted)");
  }
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("record", JobRecordToJson(*record, /*with_spans=*/true));
  return response;
}

void Server::DropConnection(Shard* shard, std::unique_ptr<Connection> conn) {
  for (auto& [job_id, job] : conn->jobs) {
    (void)job_id;
    if (job.done) continue;
    if (job.charged) {
      // The session died before its outcome: hand the quota charge to the
      // orphan reaper so it is released when the scheduler finishes the
      // job — reserved admission bytes never leak with the session.
      jobs_orphaned_.fetch_add(1);
      shard->orphans.push_back(
          OrphanJob{conn->tenant, job.charged_bytes, std::move(job.future)});
    }
    // Uncharged futures can simply be destroyed; the scheduler's promise
    // side tolerates an abandoned future.
  }
  if (conn->trace_track != 0) {
    trace::EmitInstant(conn->trace_track, "session-close", "net");
  }
  close(conn->fd);
  sessions_closed_.fetch_add(1);
  metric_sessions_closed_->Increment();
  metric_live_sessions_->Set(
      static_cast<double>(live_sessions_.fetch_sub(1) - 1));
}

void Server::ReapOrphans(Shard* shard, bool final) {
  for (auto it = shard->orphans.begin(); it != shard->orphans.end();) {
    const bool ready =
        final || !it->future.valid() ||
        it->future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready;
    if (!ready) {
      ++it;
      continue;
    }
    tenants_.Release(it->tenant, it->charged_bytes);
    it = shard->orphans.erase(it);
  }
}

}  // namespace adgraph::net
