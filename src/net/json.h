#ifndef ADGRAPH_NET_JSON_H_
#define ADGRAPH_NET_JSON_H_

/// \file
/// Minimal JSON value for the wire protocol (DESIGN.md §2.10) — just enough
/// of RFC 8259 for line-delimited request/response framing: null, bool,
/// number (double), string, array, object.
///
/// Deliberately small instead of general: objects keep insertion order in a
/// flat vector (protocol objects have a handful of keys, linear Find wins
/// over a map), numbers are doubles (integral values round-trip exactly up
/// to 2^53, far beyond any protocol field), and Parse() is a strict
/// recursive-descent parser that rejects trailing garbage — a malformed
/// request must produce a structured error, never a partially-parsed one.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace adgraph::net {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null by default.
  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}    // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}      // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json MakeObject() { return Json(Type::kObject); }
  static Json MakeArray() { return Json(Type::kArray); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // --- scalar access (typed, with fallback for the wrong type) -------------
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  // --- object access -------------------------------------------------------
  /// Sets `key` (replacing an existing entry), turning a null value into an
  /// object first.  Returns *this for chaining.
  Json& Set(const std::string& key, Json value);
  /// The value at `key`, or nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  /// Typed member getters: the member's value when present *and* of the
  /// right type, the fallback otherwise.
  std::string GetString(const std::string& key, std::string fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  // --- array access --------------------------------------------------------
  /// Appends to the array, turning a null value into an array first.
  Json& PushBack(Json value);
  const std::vector<Json>& items() const { return array_; }
  size_t size() const { return is_array() ? array_.size() : object_.size(); }

  /// Compact single-line serialization (no spaces, members in insertion
  /// order) — one Dump() per protocol line.
  std::string Dump() const;

  /// Strict parse of exactly one JSON value; trailing non-whitespace is an
  /// error (kInvalidArgument), as is nesting deeper than 64 levels.
  static Result<Json> Parse(std::string_view text);

 private:
  explicit Json(Type type) : type_(type) {}

  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  /// Insertion-ordered members; Find is a linear scan (protocol objects are
  /// tiny).  vector-of-incomplete is fine in C++17+.
  std::vector<std::pair<std::string, Json>> object_;
};

/// Serializes a string with JSON escaping (quotes included) into `out` —
/// shared by Json::Dump and hand-rolled writers.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace adgraph::net

#endif  // ADGRAPH_NET_JSON_H_
