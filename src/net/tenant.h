#ifndef ADGRAPH_NET_TENANT_H_
#define ADGRAPH_NET_TENANT_H_

/// \file
/// Per-tenant admission quotas for the TCP front door (DESIGN.md §2.10).
///
/// Layered *in front of* the scheduler's byte-budget admission control: the
/// TenantTable answers "may this tenant submit right now?" from three
/// independent budgets — a token-bucket request rate, a concurrent-job cap,
/// and a resident-byte cap over the admission estimates of the tenant's
/// in-flight jobs.  The scheduler then still applies its own device-memory
/// admission to whatever gets through; a tenant quota rejection never
/// reaches a device.
///
/// Charging protocol: Admit() charges one job slot + the estimated bytes
/// atomically on success; the caller MUST pair every successful Admit with
/// exactly one Release (when the job's outcome is delivered, or when the
/// owning session dies with the job still in flight — the server's orphan
/// reaper handles that path, so a disconnect never leaks reserved bytes).

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace adgraph::net {

/// One tenant's quota contract, parsed from a tenants file line.
struct TenantConfig {
  std::string name;
  /// Token-bucket SUBMIT rate, tokens (= jobs) per second.  0 = unlimited.
  double rate_per_sec = 0;
  /// Bucket capacity (burst size).  <= 0 defaults to max(rate_per_sec, 1).
  double burst = 0;
  /// Max jobs in flight (admitted, outcome not yet delivered).  0 = no cap.
  uint32_t max_concurrent = 0;
  /// Max summed admission-estimate bytes in flight.  0 = no cap.
  uint64_t max_inflight_bytes = 0;
  /// Priority class stamped on the tenant's jobs (lower runs first).
  uint32_t priority = 0;
  /// Fair-share weight within the priority class (scheduler WFQ).
  double weight = 1.0;
  /// Default job deadline when a SUBMIT names none.  0 = no deadline.
  double default_deadline_ms = 0;
};

/// "512", "64K", "16M", "2G" (binary suffixes) -> bytes.
Result<uint64_t> ParseByteSize(std::string_view text);

/// Parses a tenants file: one tenant per line,
///   `NAME [rate=F] [burst=F] [concurrent=N] [bytes=SIZE] [priority=N]
///         [weight=F] [deadline_ms=F]`
/// with `#` comments and blank lines skipped.  Unknown keys and duplicate
/// tenant names are errors (a typo must not silently become "no quota").
Result<std::vector<TenantConfig>> ParseTenantConfigs(const std::string& text);

/// Why Admit() said no — the metric label and the wire `reason` field.
enum class QuotaReject { kNone, kUnknownTenant, kRate, kConcurrent, kBytes };
std::string_view QuotaRejectName(QuotaReject reject);

/// \brief Thread-safe quota state for every configured tenant.
///
/// All three budgets are checked-and-charged under one mutex so concurrent
/// handler threads cannot double-spend the last token or byte.  Token
/// refill is lazy (computed from elapsed time at each Admit), so there is
/// no background thread to manage.
class TenantTable {
 public:
  explicit TenantTable(std::vector<TenantConfig> configs);

  /// True when no tenants are configured (the server then runs open-access:
  /// any HELLO name is accepted with default limits).
  bool empty() const { return tenants_.empty(); }

  /// The configured contract of `name`, or nullptr for unknown tenants.
  const TenantConfig* Find(const std::string& name) const;

  /// Checks all quotas and, on success, charges one job slot and
  /// `estimated_bytes` to the tenant.  kNotFound for unknown tenants,
  /// kResourceExhausted (with `reason` set when non-null) for quota hits.
  Status Admit(const std::string& name, uint64_t estimated_bytes,
               QuotaReject* reason = nullptr);
  /// Admit with an injected clock (seconds on an arbitrary monotonic axis)
  /// — the deterministic entry point the token-bucket tests use.
  Status AdmitAt(const std::string& name, uint64_t estimated_bytes,
                 double now_sec, QuotaReject* reason = nullptr);

  /// Returns one job slot + `estimated_bytes` to the tenant.  Must pair 1:1
  /// with successful Admits; over-release clamps to zero (and is a bug in
  /// the caller, surfaced by the usage counters, not by UB).
  void Release(const std::string& name, uint64_t estimated_bytes);

  struct Usage {
    uint64_t admitted = 0;
    uint64_t rejected_rate = 0;
    uint64_t rejected_concurrent = 0;
    uint64_t rejected_bytes = 0;
    uint32_t inflight_jobs = 0;
    uint64_t inflight_bytes = 0;
    double tokens = 0;  ///< current bucket level (rate-limited tenants)
  };
  /// Point-in-time usage of `name` (zeroes for unknown tenants).
  Usage GetUsage(const std::string& name) const;

  std::vector<TenantConfig> Configs() const;

 private:
  struct State {
    TenantConfig config;
    double tokens = 0;
    double last_refill_sec = 0;
    bool refilled_once = false;
    uint32_t inflight_jobs = 0;
    uint64_t inflight_bytes = 0;
    uint64_t admitted = 0;
    uint64_t rejected_rate = 0;
    uint64_t rejected_concurrent = 0;
    uint64_t rejected_bytes = 0;
  };

  double NowSec() const;

  mutable std::mutex mutex_;
  std::map<std::string, State> tenants_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace adgraph::net

#endif  // ADGRAPH_NET_TENANT_H_
