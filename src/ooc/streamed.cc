#include "ooc/streamed.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/bfs.h"
#include "core/device_graph.h"
#include "core/pagerank.h"
#include "core/pagerank_kernels.h"
#include "core/residency.h"
#include "core/spmv.h"
#include "runtime/runtime.h"
#include "runtime/stream.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::ooc {
namespace {

using graph::eid_t;
using graph::vid_t;
using graph::weight_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

/// \brief Analytic copy/compute overlap model of the double-buffered
/// pipeline.
///
/// The simulator executes eagerly on one device clock, so "overlap" cannot
/// be observed; it is reconstructed from per-operation durations with the
/// classic two-slot software-pipeline recurrence: a staging copy starts once
/// the copy engine is free AND its target slot's previous consumer finished;
/// a shard's compute starts once the compute queue is free AND its slot's
/// copy landed.  Full-width steps (dangling sum, damping, frontier counter
/// reads) serialize on the compute queue only — the copy engine may keep
/// prefetching past them, which is exactly what cudaMemcpyAsync on a second
/// stream buys on real hardware.
struct OverlapTimeline {
  double copy_clock = 0;
  double compute_clock = 0;
  double slot_ready[2] = {0, 0};
  double slot_free[2] = {0, 0};
  double copy_total = 0;
  double compute_total = 0;
  double serial_total = 0;

  void Staged(int slot, double copy_ms) {
    const double start = std::max(copy_clock, slot_free[slot]);
    copy_clock = start + copy_ms;
    slot_ready[slot] = copy_clock;
    copy_total += copy_ms;
  }
  void Computed(int slot, double compute_ms) {
    const double start = std::max(compute_clock, slot_ready[slot]);
    compute_clock = start + compute_ms;
    slot_free[slot] = compute_clock;
    compute_total += compute_ms;
  }
  void Serial(double ms) {
    compute_clock += ms;
    serial_total += ms;
  }

  double serialized_ms() const {
    return copy_total + compute_total + serial_total;
  }
  double overlapped_ms() const { return std::max(copy_clock, compute_clock); }
};

/// Double-buffered shard stager: two device slots sized for the largest
/// shard; shard k+1 prefetches on the copy stream while shard k's kernels
/// run, with the rebased row slice recomputed on the host per staging.
class ShardPipeline {
 public:
  ShardPipeline(vgpu::Device* device, const OocCsr* g, const OocOptions* opts,
                bool stage_weights)
      : device_(device),
        g_(g),
        opts_(opts),
        stage_weights_(stage_weights),
        copy_stream_(device, "ooc_copy"),
        compute_stream_(device, "ooc_compute") {}

  Status AllocSlots() {
    const uint64_t rows_n = g_->max_shard_rows() + 1;
    const uint64_t edges_n = std::max<uint64_t>(1, g_->max_shard_edges());
    for (int s = 0; s < 2; ++s) {
      ADGRAPH_ASSIGN_OR_RETURN(
          rows_[s], rt::DeviceBuffer<eid_t>::Create(device_, rows_n));
      ADGRAPH_ASSIGN_OR_RETURN(
          cols_[s], rt::DeviceBuffer<vid_t>::Create(device_, edges_n));
      if (stage_weights_) {
        ADGRAPH_ASSIGN_OR_RETURN(
            weights_[s], rt::DeviceBuffer<weight_t>::Create(device_, edges_n));
      }
    }
    return Status::OK();
  }

  /// Stages shard `s` into the next slot in round-robin order.
  Status Stage(uint32_t s) {
    const int slot = static_cast<int>(stage_count_ % 2);
    if (opts_->copy_fault) {
      ADGRAPH_RETURN_NOT_OK(opts_->copy_fault(stage_count_, s));
    }
    const ShardView v = g_->shard(s);
    const std::span<const eid_t> ro = g_->row_offsets();
    const double before = copy_stream_.transfer_ms();
    scratch_.resize(v.num_rows() + 1);
    for (uint64_t i = 0; i <= v.num_rows(); ++i) {
      scratch_[i] = ro[v.lo + i] - v.edge_begin;
    }
    ADGRAPH_RETURN_NOT_OK(copy_stream_.CopyToDeviceAsync(
        rows_[slot].ptr(), scratch_.data(), v.num_rows() + 1));
    if (v.num_edges() > 0) {
      ADGRAPH_RETURN_NOT_OK(copy_stream_.CopyToDeviceAsync(
          cols_[slot].ptr(), g_->col_indices().data() + v.edge_begin,
          v.num_edges()));
      if (stage_weights_) {
        ADGRAPH_RETURN_NOT_OK(copy_stream_.CopyToDeviceAsync(
            weights_[slot].ptr(), g_->weights().data() + v.edge_begin,
            v.num_edges()));
      }
    }
    timeline_.Staged(slot, copy_stream_.transfer_ms() - before);
    stage_count_ += 1;
    return Status::OK();
  }

  /// One full pass over the shards: prefetch shard s+1, then run
  /// `compute(slot_of_s, shard_view_of_s)`.
  template <typename Fn>
  Status Sweep(Fn&& compute) {
    const uint32_t num_shards = g_->num_shards();
    ADGRAPH_RETURN_NOT_OK(Stage(0));
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (s + 1 < num_shards) ADGRAPH_RETURN_NOT_OK(Stage(s + 1));
      const int slot = static_cast<int>(compute_count_ % 2);
      const double before = device_->elapsed_ms();
      ADGRAPH_RETURN_NOT_OK(compute(slot, g_->shard(s)));
      timeline_.Computed(slot, device_->elapsed_ms() - before);
      compute_count_ += 1;
    }
    return Status::OK();
  }

  /// A full-width (non-sharded) step: times it onto the compute queue.
  template <typename Fn>
  Status Serial(Fn&& fn) {
    const double before = device_->elapsed_ms();
    ADGRAPH_RETURN_NOT_OK(fn());
    timeline_.Serial(device_->elapsed_ms() - before);
    return Status::OK();
  }

  rt::Stream* compute_stream() { return &compute_stream_; }
  DevPtr<eid_t> rows(int slot) { return rows_[slot].ptr(); }
  DevPtr<vid_t> cols(int slot) { return cols_[slot].ptr(); }
  DevPtr<weight_t> weights(int slot) {
    return stage_weights_ ? weights_[slot].ptr() : DevPtr<weight_t>{};
  }

  void FillStats(StreamedStats* stats) const {
    if (stats == nullptr) return;
    stats->num_shards = g_->num_shards();
    stats->shards_staged = stage_count_;
    stats->staged_bytes = copy_stream_.staged_bytes();
    stats->copy_ms = timeline_.copy_total;
    stats->compute_ms = timeline_.compute_total + timeline_.serial_total;
    stats->serialized_ms = timeline_.serialized_ms();
    stats->overlapped_ms = timeline_.overlapped_ms();
  }

 private:
  vgpu::Device* device_;
  const OocCsr* g_;
  const OocOptions* opts_;
  bool stage_weights_;
  rt::Stream copy_stream_;
  rt::Stream compute_stream_;
  rt::DeviceBuffer<eid_t> rows_[2];
  rt::DeviceBuffer<vid_t> cols_[2];
  rt::DeviceBuffer<weight_t> weights_[2];
  std::vector<eid_t> scratch_;
  OverlapTimeline timeline_;
  uint64_t stage_count_ = 0;
  uint64_t compute_count_ = 0;
};

/// Top-down expansion of one vertex-range shard: thread t owns global row
/// lo+t.  Levels are canonical (a vertex's level is its BFS distance no
/// matter which expansion order discovered it), so sharding the expansion
/// cannot change the output — the AtomicCas claim is the same one the
/// in-memory TopDownKernel performs.
KernelTask BfsShardKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                          DevPtr<uint32_t> levels, DevPtr<uint32_t> produced,
                          uint32_t num_rows, vid_t lo, uint32_t level) {
  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, num_rows), [&](Ctx& c) {
    auto u = c.Add(tid, lo);
    auto lu = c.Load(levels, u);
    c.If(c.Eq(lu, level - 1), [&](Ctx& c) {
      auto begin = c.Load(row, tid);
      auto end = c.Load(row, c.Add(tid, 1u));
      c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
        auto v = c.Load(col, e);
        auto old = c.AtomicCas(levels, v, c.Splat(core::kUnreachedLevel),
                               c.Splat(level));
        c.If(c.Eq(old, core::kUnreachedLevel), [&](Ctx& c) {
          c.AtomicAdd(produced, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
        });
      });
    });
  });
  co_return;
}

}  // namespace

Result<core::BfsResult> RunStreamedBfs(vgpu::Device* device,
                                       const OocCsr& base,
                                       const core::BfsOptions& options,
                                       const OocOptions& ooc,
                                       StreamedStats* stats) {
  const vid_t n = base.num_vertices();
  if (n == 0) return Status::InvalidArgument("BFS on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("BFS source " +
                                   std::to_string(options.source) +
                                   " out of range");
  }
  if (options.compute_parents) {
    return Status::FailedPrecondition(
        "streamed BFS does not compute parents: parent choice is tie-broken "
        "by expansion order, which sharding reorders");
  }

  trace::Span algo_span(device->trace_track(), "algo:bfs_streamed", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("num_shards", static_cast<uint64_t>(base.num_shards()));

  ShardPipeline pipe(device, &base, &ooc, /*stage_weights=*/false);
  ADGRAPH_RETURN_NOT_OK(pipe.AllocSlots());
  ADGRAPH_ASSIGN_OR_RETURN(auto levels,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto produced_buf,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
    ADGRAPH_RETURN_NOT_OK(core::primitives::Fill<uint32_t>(
        device, levels.ptr(), n, core::kUnreachedLevel));
    return core::primitives::SetElement<uint32_t>(device, levels.ptr(),
                                                  options.source, 0);
  }));

  core::BfsResult result;
  uint32_t level = 1;
  while (true) {
    trace::Span sweep(device->trace_track(), "bfs_streamed.level", "phase");
    sweep.ArgNum("level", static_cast<uint64_t>(level));
    ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
      return core::primitives::SetElement<uint32_t>(device,
                                                    produced_buf.ptr(), 0, 0);
    }));
    ADGRAPH_RETURN_NOT_OK(pipe.Sweep([&](int slot, const ShardView& v) {
      if (v.num_edges() == 0) return Status::OK();
      return pipe.compute_stream()
          ->Launch("bfs_top_down_shard",
                   rt::CoverThreads(v.num_rows(), options.block_size),
                   [&](Ctx& c) {
                     return BfsShardKernel(c, pipe.rows(slot), pipe.cols(slot),
                                           levels.ptr(), produced_buf.ptr(),
                                           v.num_rows(), v.lo, level);
                   })
          .status();
    }));
    uint32_t produced = 0;
    ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
      ADGRAPH_ASSIGN_OR_RETURN(produced, core::primitives::GetElement<uint32_t>(
                                             device, produced_buf.ptr(), 0));
      return Status::OK();
    }));
    result.top_down_iterations += 1;
    sweep.ArgNum("produced", static_cast<uint64_t>(produced));
    if (produced == 0) break;
    result.depth = level;
    level += 1;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.levels, levels.ToHost());
  for (uint32_t lvl : result.levels) {
    if (lvl != core::kUnreachedLevel) result.vertices_visited += 1;
  }
  // Staging summary on the root span, so an inspected streamed job shows
  // its transfer burden without a separate stats query.
  StreamedStats span_stats;
  pipe.FillStats(&span_stats);
  algo_span.ArgNum("shards_staged",
                   static_cast<uint64_t>(span_stats.shards_staged));
  algo_span.ArgNum("staged_bytes", span_stats.staged_bytes);
  if (stats != nullptr) *stats = span_stats;
  return result;
}

Result<core::PageRankResult> RunStreamedPageRank(
    vgpu::Device* device, const OocCsr& pull,
    std::span<const eid_t> base_row_offsets,
    const core::PageRankOptions& options, const OocOptions& ooc,
    StreamedStats* stats) {
  const vid_t n = pull.num_vertices();
  if (n == 0) return Status::InvalidArgument("PageRank on empty graph");
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("damping factor must be in (0,1)");
  }
  if (base_row_offsets.size() != static_cast<size_t>(n) + 1) {
    return Status::InvalidArgument(
        "base row offsets have " + std::to_string(base_row_offsets.size()) +
        " entries; the pull transpose has " + std::to_string(n) + " vertices");
  }

  trace::Span algo_span(device->trace_track(), "algo:pagerank_streamed",
                        "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("num_shards", static_cast<uint64_t>(pull.num_shards()));

  const bool weighted = pull.has_weights();
  ShardPipeline pipe(device, &pull, &ooc, weighted);
  ADGRAPH_RETURN_NOT_OK(pipe.AllocSlots());
  ADGRAPH_ASSIGN_OR_RETURN(auto d_row,
                           rt::DeviceBuffer<eid_t>::Create(device, n + 1));
  ADGRAPH_RETURN_NOT_OK(d_row.Upload(base_row_offsets.data(), n + 1));
  ADGRAPH_ASSIGN_OR_RETURN(auto ranks,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto next,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto scalars,
                           rt::DeviceBuffer<double>::Create(device, 2));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
    return core::primitives::Fill<double>(device, ranks.ptr(), n, 1.0 / n);
  }));

  core::PageRankResult result;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    trace::Span sweep(device->trace_track(), "pagerank_streamed.iteration",
                      "phase");
    sweep.ArgNum("iteration", static_cast<uint64_t>(iter + 1));

    double dangling = 0;
    ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
      ADGRAPH_RETURN_NOT_OK(
          core::primitives::SetElement<double>(device, scalars.ptr(), 0, 0.0));
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("pagerank_dangling",
                       rt::CoverThreads(n, options.block_size),
                       [&](Ctx& c) {
                         return core::detail::DanglingSumKernel(
                             c, d_row.ptr(), ranks.ptr(), scalars.ptr(), n);
                       })
              .status());
      ADGRAPH_ASSIGN_OR_RETURN(dangling, core::primitives::GetElement<double>(
                                             device, scalars.ptr(), 0));
      return Status::OK();
    }));

    // The pull SpMV, streamed: each destination-range shard runs the exact
    // in-memory kernel body over its rebased row slice, writing its slice of
    // `next`.  Rows never split across shards, so per-row accumulation order
    // — and hence every double — matches the single whole-matrix launch.
    ADGRAPH_RETURN_NOT_OK(pipe.Sweep([&](int slot, const ShardView& v) {
      return pipe.compute_stream()
          ->Launch("spmv_shard",
                   rt::CoverThreads(v.num_rows(), options.block_size),
                   [&](Ctx& c) {
                     return core::detail::SpmvRowSliceKernel(
                         c, pipe.rows(slot), pipe.cols(slot),
                         weighted ? pipe.weights(slot) : DevPtr<double>{},
                         ranks.ptr(), next.ptr() + v.lo, v.num_rows(),
                         core::Semiring::kPlusTimes);
                   })
          .status();
    }));

    const double base = (1.0 - options.alpha) / n +
                        options.alpha * dangling / static_cast<double>(n);
    ADGRAPH_RETURN_NOT_OK(pipe.Serial([&] {
      ADGRAPH_RETURN_NOT_OK(
          core::primitives::SetElement<double>(device, scalars.ptr(), 1, 0.0));
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("pagerank_damping",
                       rt::CoverThreads(n, options.block_size),
                       [&](Ctx& c) {
                         return core::detail::ApplyDampingKernel(
                             c, next.ptr(), ranks.ptr(), scalars.ptr() + 1,
                             base, options.alpha, n);
                       })
              .status());
      ADGRAPH_ASSIGN_OR_RETURN(result.l1_delta,
                               core::primitives::GetElement<double>(
                                   device, scalars.ptr(), 1));
      return Status::OK();
    }));

    std::swap(ranks, next);
    result.iterations = iter + 1;
    if (options.tolerance > 0 && result.l1_delta < options.tolerance) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.ranks, ranks.ToHost());
  StreamedStats span_stats;
  pipe.FillStats(&span_stats);
  algo_span.ArgNum("shards_staged",
                   static_cast<uint64_t>(span_stats.shards_staged));
  algo_span.ArgNum("staged_bytes", span_stats.staged_bytes);
  if (stats != nullptr) *stats = span_stats;
  return result;
}

Result<graph::CsrGraph> BuildPullTranspose(const OocCsr& base) {
  const vid_t n = base.num_vertices();
  const std::span<const eid_t> rows = base.row_offsets();
  const std::span<const vid_t> cols = base.col_indices();

  // Counting-sort transpose, step for step the CsrGraph::Transpose
  // algorithm so the in-edge order within every destination row — and with
  // it the streamed SpMV's accumulation order — matches what
  // core::BuildHostVariant(kPullTranspose) produces.
  std::vector<eid_t> t_rows(static_cast<size_t>(n) + 1, 0);
  for (vid_t v : cols) t_rows[v + 1] += 1;
  std::partial_sum(t_rows.begin(), t_rows.end(), t_rows.begin());
  std::vector<vid_t> t_cols(cols.size());
  std::vector<eid_t> cursor(t_rows.begin(), t_rows.end() - 1);
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = rows[u]; e < rows[u + 1]; ++e) {
      t_cols[cursor[cols[e]]++] = u;
    }
  }
  std::vector<weight_t> w(t_cols.size());
  for (eid_t e = 0; e < t_cols.size(); ++e) {
    const vid_t u = t_cols[e];
    w[e] = 1.0 / static_cast<double>(rows[u + 1] - rows[u]);
  }
  return graph::CsrGraph::FromArrays(n, std::move(t_rows), std::move(t_cols),
                                     std::move(w));
}

Result<core::AlgoResult> RunStreamed(vgpu::Device* device, core::Algo algo,
                                     std::shared_ptr<const graph::CsrGraph> base,
                                     const core::Params& params,
                                     const OocOptions& options,
                                     StreamedStats* stats) {
  if (base == nullptr) return Status::InvalidArgument("null graph");
  if (static_cast<size_t>(algo) != params.index()) {
    return Status::InvalidArgument(
        "params alternative '" +
        std::string(core::AlgorithmName(
            static_cast<core::Algo>(params.index()))) +
        "' does not match requested algorithm '" +
        std::string(core::AlgorithmName(algo)) + "'");
  }
  switch (algo) {
    case core::Algo::kBfs: {
      if (base->num_vertices() == 0) {
        return Status::InvalidArgument("BFS on empty graph");
      }
      ADGRAPH_ASSIGN_OR_RETURN(
          OocCsr ooc_graph, OocCsr::FromMemory(base, options.shard_bytes));
      ADGRAPH_ASSIGN_OR_RETURN(
          core::BfsResult r,
          RunStreamedBfs(device, ooc_graph, std::get<core::BfsOptions>(params),
                         options, stats));
      return core::AlgoResult(std::move(r));
    }
    case core::Algo::kPageRank: {
      if (base->num_vertices() == 0) {
        return Status::InvalidArgument("PageRank on empty graph");
      }
      ADGRAPH_ASSIGN_OR_RETURN(
          graph::CsrGraph pull,
          core::BuildHostVariant(*base, core::GraphVariant::kPullTranspose));
      auto pull_shared =
          std::make_shared<const graph::CsrGraph>(std::move(pull));
      ADGRAPH_ASSIGN_OR_RETURN(
          OocCsr ooc_pull,
          OocCsr::FromMemory(std::move(pull_shared), options.shard_bytes));
      ADGRAPH_ASSIGN_OR_RETURN(
          core::PageRankResult r,
          RunStreamedPageRank(device, ooc_pull, base->row_offsets(),
                              std::get<core::PageRankOptions>(params), options,
                              stats));
      return core::AlgoResult(std::move(r));
    }
    default:
      return Status::FailedPrecondition(
          "algorithm '" + std::string(core::AlgorithmName(algo)) +
          "' has no out-of-core streamed path (BFS and PageRank only)");
  }
}

}  // namespace adgraph::ooc
