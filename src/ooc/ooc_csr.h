#ifndef ADGRAPH_OOC_OOC_CSR_H_
#define ADGRAPH_OOC_OOC_CSR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/api.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "part/partition.h"
#include "util/status.h"

namespace adgraph::ooc {

/// One vertex-range shard of an OocCsr: rows [lo, hi) and the half-open
/// global edge range they cover.  Staging rebases the row slice to
/// edge_begin, so on the device the shard looks like a small standalone CSR
/// whose column ids remain global.
struct ShardView {
  graph::vid_t lo = 0;
  graph::vid_t hi = 0;
  graph::eid_t edge_begin = 0;
  graph::eid_t edge_end = 0;

  graph::vid_t num_rows() const { return hi - lo; }
  graph::eid_t num_edges() const { return edge_end - edge_begin; }
};

/// \brief A chunked host CSR that is never whole-graph device-resident:
/// the out-of-core operand (DESIGN.md §2.13).
///
/// Two backings share one interface:
///  - FromMemory borrows an in-memory CsrGraph (the serve path: the graph
///    already lives on the host; the *device* is what it does not fit).
///  - Open / Spill memory-map a binary CSR v2 file (graph/io MappedCsr), so
///    the adjacency pages live on disk and fault in per shard — the
///    device <-> host <-> disk tier.
///
/// Construction partitions [0, n) into contiguous vertex-range shards whose
/// device footprint (rebased row slice + columns + optional weights) stays
/// within `shard_bytes` wherever single rows allow
/// (part::MakeByteBoundedPlan).
class OocCsr {
 public:
  OocCsr() = default;

  /// Wraps a host-resident graph.  Keeps a reference; no copies are made.
  static Result<OocCsr> FromMemory(std::shared_ptr<const graph::CsrGraph> g,
                                   uint64_t shard_bytes);

  /// Memory-maps an existing binary CSR v2 file.
  static Result<OocCsr> Open(const std::string& path, uint64_t shard_bytes);

  /// Writes `g` to `path` (binary CSR v2) and reopens it memory-mapped —
  /// the spill half of the tiering decision.
  static Result<OocCsr> Spill(const graph::CsrGraph& g,
                              const std::string& path, uint64_t shard_bytes);

  graph::vid_t num_vertices() const {
    return static_cast<graph::vid_t>(row_offsets_.size()) - 1;
  }
  graph::eid_t num_edges() const { return row_offsets_.back(); }
  bool has_weights() const { return !weights_.empty(); }
  bool disk_backed() const { return owned_ == nullptr; }

  std::span<const graph::eid_t> row_offsets() const { return row_offsets_; }
  std::span<const graph::vid_t> col_indices() const { return col_indices_; }
  std::span<const graph::weight_t> weights() const { return weights_; }

  const part::PartitionPlan& plan() const { return plan_; }
  uint32_t num_shards() const { return plan_.num_shards(); }
  ShardView shard(uint32_t s) const {
    ShardView v;
    v.lo = plan_.lo(s);
    v.hi = plan_.hi(s);
    v.edge_begin = row_offsets_[v.lo];
    v.edge_end = row_offsets_[v.hi];
    return v;
  }

  uint64_t shard_bytes_budget() const { return shard_bytes_; }
  /// Maxima over all shards — the double-buffer slots are sized from these
  /// (a hub row can legally exceed the byte budget; see MakeByteBoundedPlan).
  uint64_t max_shard_rows() const { return max_shard_rows_; }
  uint64_t max_shard_edges() const { return max_shard_edges_; }
  /// Device bytes of the larger staging slot.
  uint64_t slot_bytes() const;

 private:
  Status Init(uint64_t shard_bytes);

  std::shared_ptr<const graph::CsrGraph> owned_;
  graph::MappedCsr mapped_;
  std::span<const graph::eid_t> row_offsets_;
  std::span<const graph::vid_t> col_indices_;
  std::span<const graph::weight_t> weights_;
  part::PartitionPlan plan_;
  uint64_t shard_bytes_ = 0;
  uint64_t max_shard_rows_ = 0;
  uint64_t max_shard_edges_ = 0;
};

/// O(1) device-byte estimate of the streamed working set for `algo` on an
/// (n, m, weighted) graph: the O(n) iteration state plus two staging slots
/// of at most `shard_bytes` each.  Admission charges this instead of
/// whole-graph bytes for streamed jobs.  A single hub row larger than
/// `shard_bytes` can push the true slot size past the estimate, in which
/// case the run fails mid-stream with the scheduler's OOM-past-admission
/// status.  Fails for algorithms without a streamed path (only BFS and
/// PageRank stream today).
Result<uint64_t> EstimateStreamedBytes(core::Algo algo, graph::vid_t n,
                                       bool weighted, uint64_t shard_bytes);

/// Default per-slot staging budget when the caller passes 0.
inline constexpr uint64_t kDefaultShardBytes = 32ull << 20;

}  // namespace adgraph::ooc

#endif  // ADGRAPH_OOC_OOC_CSR_H_
