#ifndef ADGRAPH_OOC_STREAMED_H_
#define ADGRAPH_OOC_STREAMED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "core/api.h"
#include "graph/csr.h"
#include "ooc/ooc_csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::ooc {

/// Knobs of the streamed execution path.
struct OocOptions {
  /// Device bytes per staging slot (0 = kDefaultShardBytes).  Two slots are
  /// live at once: shard k computes out of one while shard k+1 prefetches
  /// into the other.
  uint64_t shard_bytes = 0;
  /// Fault-injection hook (tests): invoked before every staged shard copy
  /// with the running stage index and the shard id; a non-OK return aborts
  /// the run with exactly that status, with no partial results surfaced.
  std::function<Status(uint64_t stage, uint32_t shard)> copy_fault;
};

/// What the streamed run did and what the overlap bought (modeled time).
struct StreamedStats {
  uint32_t num_shards = 0;    ///< shards in the byte-bounded plan
  uint64_t shards_staged = 0; ///< staged copies over the whole run
  uint64_t staged_bytes = 0;  ///< host->device bytes streamed
  double copy_ms = 0;         ///< modeled interconnect time of the staging
  double compute_ms = 0;      ///< modeled kernel time (shards + full-width)
  /// Modeled makespan with staging fully serialized against compute.
  double serialized_ms = 0;
  /// Modeled makespan with the double-buffered copy/compute pipeline:
  /// shard k+1's copy overlaps shard k's compute, bounded by the two slots.
  double overlapped_ms = 0;

  double overlap_speedup() const {
    return overlapped_ms > 0 ? serialized_ms / overlapped_ms : 1.0;
  }
};

/// Top-down level-synchronous BFS over vertex-range shards of `base` (push
/// orientation).  Only the O(n) level array plus the double buffer is
/// device-resident; every level streams the shards through the two slots.
/// Levels, depth, and vertices_visited are byte-identical to the in-memory
/// path (levels are canonical).  compute_parents is rejected with
/// kFailedPrecondition — parents are tie-broken by traversal order, which
/// sharding would change.
Result<core::BfsResult> RunStreamedBfs(vgpu::Device* device,
                                       const OocCsr& base,
                                       const core::BfsOptions& options,
                                       const OocOptions& ooc,
                                       StreamedStats* stats = nullptr);

/// Pull PageRank over destination-range shards of `pull` (the
/// 1/outdeg-weighted transpose; see BuildPullTranspose).  Each shard's rows
/// keep their complete in-edge list, so per-row accumulation order — and
/// therefore every rank, the L1 delta, and the iteration count — is
/// bit-identical to the in-memory SpMV.  `base_row_offsets` is the
/// *original* graph's offset array (n+1 entries), device-resident for the
/// dangling-mass kernel.
Result<core::PageRankResult> RunStreamedPageRank(
    vgpu::Device* device, const OocCsr& pull,
    std::span<const graph::eid_t> base_row_offsets,
    const core::PageRankOptions& options, const OocOptions& ooc,
    StreamedStats* stats = nullptr);

/// Host pull-transpose with 1/outdeg(u) weights built from an OocCsr's
/// spans — array-identical to core::BuildHostVariant(base,
/// kPullTranspose), but works for disk-backed operands too.
Result<graph::CsrGraph> BuildPullTranspose(const OocCsr& base);

/// One-call wrapper over a host-resident graph (the serve path): wraps
/// `base` (and, for PageRank, its pull-transpose) in in-memory OocCsrs and
/// dispatches.  Supports kBfs (without parents) and kPageRank; anything
/// else is kFailedPrecondition.  Results are byte-identical to
/// core::Run on the same inputs.
Result<core::AlgoResult> RunStreamed(vgpu::Device* device, core::Algo algo,
                                     std::shared_ptr<const graph::CsrGraph> base,
                                     const core::Params& params,
                                     const OocOptions& options,
                                     StreamedStats* stats = nullptr);

}  // namespace adgraph::ooc

#endif  // ADGRAPH_OOC_STREAMED_H_
