#include "ooc/ooc_csr.h"

#include <algorithm>
#include <utility>

namespace adgraph::ooc {

using graph::eid_t;
using graph::vid_t;
using graph::weight_t;

Status OocCsr::Init(uint64_t shard_bytes) {
  shard_bytes_ = shard_bytes == 0 ? kDefaultShardBytes : shard_bytes;
  ADGRAPH_ASSIGN_OR_RETURN(
      plan_,
      part::MakeByteBoundedPlan(row_offsets_, has_weights(), shard_bytes_));
  max_shard_rows_ = 0;
  max_shard_edges_ = 0;
  for (uint32_t s = 0; s < plan_.num_shards(); ++s) {
    const ShardView v = shard(s);
    max_shard_rows_ = std::max<uint64_t>(max_shard_rows_, v.num_rows());
    max_shard_edges_ = std::max<uint64_t>(max_shard_edges_, v.num_edges());
  }
  return Status::OK();
}

uint64_t OocCsr::slot_bytes() const {
  return (max_shard_rows_ + 1) * sizeof(eid_t) +
         max_shard_edges_ * sizeof(vid_t) +
         (has_weights() ? max_shard_edges_ * sizeof(weight_t) : 0);
}

Result<OocCsr> OocCsr::FromMemory(std::shared_ptr<const graph::CsrGraph> g,
                                  uint64_t shard_bytes) {
  if (g == nullptr) return Status::InvalidArgument("null graph");
  if (g->num_vertices() == 0) {
    return Status::InvalidArgument("out-of-core wrap of an empty graph");
  }
  OocCsr csr;
  csr.owned_ = std::move(g);
  csr.row_offsets_ = csr.owned_->row_offsets();
  csr.col_indices_ = csr.owned_->col_indices();
  csr.weights_ = csr.owned_->weights();
  ADGRAPH_RETURN_NOT_OK(csr.Init(shard_bytes));
  return csr;
}

Result<OocCsr> OocCsr::Open(const std::string& path, uint64_t shard_bytes) {
  ADGRAPH_ASSIGN_OR_RETURN(graph::MappedCsr mapped,
                           graph::MappedCsr::Open(path));
  if (mapped.num_vertices() == 0) {
    return Status::InvalidArgument(path + ": out-of-core open of an empty "
                                          "graph");
  }
  OocCsr csr;
  csr.mapped_ = std::move(mapped);
  csr.row_offsets_ = csr.mapped_.row_offsets();
  csr.col_indices_ = csr.mapped_.col_indices();
  csr.weights_ = csr.mapped_.weights();
  ADGRAPH_RETURN_NOT_OK(csr.Init(shard_bytes));
  return csr;
}

Result<OocCsr> OocCsr::Spill(const graph::CsrGraph& g, const std::string& path,
                             uint64_t shard_bytes) {
  ADGRAPH_RETURN_NOT_OK(graph::WriteBinaryCsr(g, path));
  return Open(path, shard_bytes);
}

Result<uint64_t> EstimateStreamedBytes(core::Algo algo, graph::vid_t n,
                                       bool weighted, uint64_t shard_bytes) {
  const uint64_t slots =
      2 * (shard_bytes == 0 ? kDefaultShardBytes : shard_bytes);
  const uint64_t nn = n;
  switch (algo) {
    case core::Algo::kBfs:
      // levels + produced counter; BFS stages rows+cols, never weights.
      return nn * sizeof(uint32_t) + sizeof(uint32_t) + slots;
    case core::Algo::kPageRank:
      // base row offsets (dangling), ranks, next, 2 scalars, plus slots for
      // the always-weighted pull-transpose shards.
      (void)weighted;
      return (nn + 1) * sizeof(eid_t) + 2 * nn * sizeof(double) +
             2 * sizeof(double) + slots;
    default:
      return Status::FailedPrecondition(
          "algorithm '" + std::string(core::AlgorithmName(algo)) +
          "' has no out-of-core streamed path (BFS and PageRank only)");
  }
}

}  // namespace adgraph::ooc
