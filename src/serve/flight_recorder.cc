#include "serve/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>
#include <utility>

namespace adgraph::serve {

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  options_.per_class_capacity = std::max<size_t>(options_.per_class_capacity, 1);
}

void FlightRecorder::NoteAlert(bool firing) {
  if (firing) {
    alerts_active_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Guard against a resolve without a matching fire (the sampler replays
    // no history, but a rule may resolve after a recorder restart).
    uint64_t current = alerts_active_.load(std::memory_order_relaxed);
    while (current > 0 && !alerts_active_.compare_exchange_weak(
                              current, current - 1, std::memory_order_relaxed)) {
    }
  }
}

void FlightRecorder::InsertLocked(std::vector<RecordPtr>* ring,
                                  const RecordPtr& record) {
  ring->push_back(record);
  if (ring->size() <= options_.per_class_capacity) return;
  // Evict the least-bad record: the flight recorder's contract is "the K
  // *worst* survive", so the smallest wall time goes, never the largest.
  auto least = std::min_element(ring->begin(), ring->end(),
                                [](const RecordPtr& a, const RecordPtr& b) {
                                  return a->wall_ms() < b->wall_ms();
                                });
  ring->erase(least);
}

void FlightRecorder::Record(JobRecord record) {
  if (!options_.enabled) return;
  record.triggers.clear();
  if (record.wall_ms() >= options_.latency_threshold_ms) {
    record.triggers.push_back("latency");
  }
  if (!record.status.ok()) record.triggers.push_back("status");
  if (alerts_active_.load(std::memory_order_relaxed) > 0) {
    record.triggers.push_back("alert");
  }
  if (record.triggers.empty()) return;
  auto shared = std::make_shared<const JobRecord>(std::move(record));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& trigger : shared->triggers) {
    if (trigger == "latency") InsertLocked(&by_latency_, shared);
    if (trigger == "status") InsertLocked(&by_status_, shared);
    if (trigger == "alert") InsertLocked(&by_alert_, shared);
  }
}

std::vector<FlightRecorder::RecordPtr> FlightRecorder::Records() const {
  std::vector<RecordPtr> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_set<const JobRecord*> seen;
    for (const std::vector<RecordPtr>* ring :
         {&by_latency_, &by_status_, &by_alert_}) {
      for (const RecordPtr& record : *ring) {
        if (seen.insert(record.get()).second) all.push_back(record);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const RecordPtr& a, const RecordPtr& b) {
                     return a->wall_ms() > b->wall_ms();
                   });
  return all;
}

std::shared_ptr<const FlightRecorder::JobRecord> FlightRecorder::FindByWireId(
    uint64_t wire_job_id) const {
  if (wire_job_id == 0) return nullptr;
  for (const RecordPtr& record : Records()) {
    if (record->wire_job_id == wire_job_id) return record;
  }
  return nullptr;
}

std::shared_ptr<const FlightRecorder::JobRecord> FlightRecorder::FindBySchedId(
    uint64_t sched_job_id) const {
  if (sched_job_id == 0) return nullptr;
  for (const RecordPtr& record : Records()) {
    if (record->sched_job_id == sched_job_id) return record;
  }
  return nullptr;
}

std::shared_ptr<const FlightRecorder::JobRecord> FlightRecorder::FindByTraceId(
    uint64_t trace_id) const {
  if (trace_id == 0) return nullptr;
  for (const RecordPtr& record : Records()) {
    if (record->trace_id == trace_id) return record;
  }
  return nullptr;
}

Status FlightRecorder::WriteChromeTrace(const std::string& path) const {
  std::vector<trace::TraceEvent> events;
  for (const RecordPtr& record : Records()) {
    events.insert(events.end(), record->spans.begin(), record->spans.end());
  }
  // Chrome trace viewers (and tools/validate_trace.py) expect per-track
  // timestamps to be monotonic; records were retained by badness, not time.
  std::stable_sort(events.begin(), events.end(),
                   [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  trace::WriteChromeTraceJson(out, events);
  if (!out.good()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace adgraph::serve
