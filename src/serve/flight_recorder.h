#ifndef ADGRAPH_SERVE_FLIGHT_RECORDER_H_
#define ADGRAPH_SERVE_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "prof/metrics.h"
#include "trace/trace.h"
#include "util/status.h"

namespace adgraph::serve {

/// \brief Slow-job flight recorder (DESIGN.md §2.14): a bounded ring of
/// the K worst jobs per trigger class, retaining each job's full span
/// tree (its trace::SpanCapture contents) and its prof::JobProfile even
/// after the global trace ring has long overwritten the job's events.
///
/// Trigger classes:
///   - "latency": completed jobs, ranked by wall time (queue + exec).
///     With `latency_threshold_ms` > 0 only jobs at/above the threshold
///     compete; at 0 every job competes, so the K slowest are always
///     retained.
///   - "status": jobs that finished with a non-OK status (rejections,
///     shed deadlines, device OOM, validation failures).
///   - "alert": jobs that completed while at least one metrics alert rule
///     was firing — the "what was running when the pager went off" view.
///
/// One job can qualify for several classes; it is stored once and listed
/// under each.  All methods are thread-safe (workers record concurrently,
/// the INSPECT handler reads concurrently).
class FlightRecorder {
 public:
  struct Options {
    /// Master switch; false = Record() is a no-op and nothing is retained.
    bool enabled = true;
    /// K: worst jobs retained per trigger class.
    size_t per_class_capacity = 8;
    /// Latency-class admission threshold, milliseconds of wall time
    /// (queue + exec).  0 = every job competes for a latency slot.
    double latency_threshold_ms = 0;
    /// If non-empty, the retained span trees are dumped here as Chrome
    /// trace-event JSON at scheduler shutdown.
    std::string path;
  };

  /// Everything retained about one recorded job.
  struct JobRecord {
    uint64_t trace_id = 0;
    uint64_t wire_job_id = 0;   ///< front-door id (0 = in-process submit)
    uint64_t sched_job_id = 0;  ///< scheduler id
    std::string tag;
    std::string tenant;
    std::string algorithm;
    std::string device;
    Status status;
    double queue_wall_ms = 0;
    double exec_wall_ms = 0;
    double modeled_ms = 0;
    /// Trigger classes that retained this record ("latency", "status",
    /// "alert") — filled by Record().
    std::vector<std::string> triggers;
    prof::JobProfile profile;
    /// The job's span tree: wire -> queue -> admission -> engine rounds ->
    /// kernels, copied out of the job's SpanCapture.
    std::vector<trace::TraceEvent> spans;
    uint64_t spans_dropped = 0;  ///< capture overflow (newest-dropped)

    double wall_ms() const { return queue_wall_ms + exec_wall_ms; }
  };

  explicit FlightRecorder(Options options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return options_.enabled; }
  const Options& options() const { return options_; }

  /// Classifies and (maybe) retains `record`.  Jobs qualifying for no
  /// class, and all jobs when disabled, are dropped.
  void Record(JobRecord record);

  /// Alert-rule transition feed from the metrics sampler: the recorder
  /// keeps a count of currently-firing rules; jobs completing while it is
  /// nonzero qualify for the "alert" class.
  void NoteAlert(bool firing);
  uint64_t alerts_active() const {
    return alerts_active_.load(std::memory_order_relaxed);
  }

  /// All retained records (deduplicated across classes), worst wall time
  /// first.  Records are immutable once retained; the shared_ptr keeps a
  /// returned record valid even if the ring evicts it concurrently.
  std::vector<std::shared_ptr<const JobRecord>> Records() const;

  /// Lookup by the id a caller actually holds; null when not retained.
  std::shared_ptr<const JobRecord> FindByWireId(uint64_t wire_job_id) const;
  std::shared_ptr<const JobRecord> FindBySchedId(uint64_t sched_job_id) const;
  std::shared_ptr<const JobRecord> FindByTraceId(uint64_t trace_id) const;

  /// Dumps every retained record's spans as one Chrome trace-event JSON
  /// (events sorted by start time so per-track timestamps stay monotonic).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  using RecordPtr = std::shared_ptr<const JobRecord>;

  /// Inserts into one class ring, evicting the *least bad* (smallest wall
  /// time) record when the ring exceeds per_class_capacity.  Requires
  /// mutex_ held.
  void InsertLocked(std::vector<RecordPtr>* ring, const RecordPtr& record);

  Options options_;
  std::atomic<uint64_t> alerts_active_{0};
  mutable std::mutex mutex_;
  std::vector<RecordPtr> by_latency_;
  std::vector<RecordPtr> by_status_;
  std::vector<RecordPtr> by_alert_;
};

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_FLIGHT_RECORDER_H_
