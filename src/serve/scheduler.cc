#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "part/engine.h"
#include "part/part_bfs.h"
#include "part/part_pagerank.h"
#include "prof/metrics.h"
#include "prof/session.h"
#include "serve/admission.h"
#include "serve/registry.h"

namespace adgraph::serve {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

/// Below this uptime the wall-clock rates are meaningless noise (a
/// Snapshot() taken right after Create()); report them as zero instead of
/// dividing by (near-)nothing.
constexpr double kMinUptimeMs = 1e-3;

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Scheduler::Scheduler(Options options) : options_(std::move(options)) {
  started_at_ = Clock::now();
}

Result<std::unique_ptr<Scheduler>> Scheduler::Create(Options options) {
  if (options.devices.empty()) {
    for (const vgpu::ArchConfig* arch : vgpu::PaperGpus()) {
      options.devices.push_back({.arch = arch, .options = {}});
    }
  }
  for (const DeviceSlot& slot : options.devices) {
    if (slot.arch == nullptr) {
      return Status::InvalidArgument("device slot with null arch config");
    }
    // Reject pathological configs (zero SMs, zero clock, non-finite
    // bandwidth, ...) here, before a worker thread constructs a Device
    // whose timing model would divide by them.
    ADGRAPH_RETURN_NOT_OK(vgpu::ValidateArchConfig(*slot.arch));
  }
  options.queue_capacity = std::max<size_t>(options.queue_capacity, 1);

  auto scheduler = std::unique_ptr<Scheduler>(new Scheduler(std::move(options)));
  if (scheduler->options_.trace.enabled) {
    // Attach the session sink before any worker starts so device
    // construction (track registration, warm-up) is already observable.
    scheduler->trace_collector_ = std::make_unique<trace::Collector>(
        scheduler->options_.trace.ring_capacity);
  }
  for (const DeviceSlot& slot : scheduler->options_.devices) {
    auto worker = std::make_unique<Worker>(slot);
    worker->arch_name = slot.arch->name;
    scheduler->workers_.push_back(std::move(worker));
  }
  // Start the threads only after the worker array is final (threads index
  // into it).
  for (auto& worker : scheduler->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([s = scheduler.get(), w] { s->WorkerLoop(w); });
  }
  return scheduler;
}

Scheduler::~Scheduler() { Shutdown(); }

std::vector<std::string> Scheduler::device_names() const {
  std::vector<std::string> names;
  names.reserve(workers_.size());
  for (const auto& worker : workers_) names.push_back(worker->arch_name);
  return names;
}

Result<std::future<JobOutcome>> Scheduler::Submit(JobSpec spec) {
  ADGRAPH_RETURN_NOT_OK(ValidateJobSpec(spec));
  if (spec.gang_devices > workers_.size()) {
    return Status::InvalidArgument(
        "gang of " + std::to_string(spec.gang_devices) +
        " devices exceeds the pool (" + std::to_string(workers_.size()) +
        " workers)");
  }
  if (!spec.arch_preference.empty()) {
    bool found = false;
    for (const auto& worker : workers_) {
      found |= worker->arch_name == spec.arch_preference;
    }
    if (!found) {
      return Status::NotFound("no device named '" + spec.arch_preference +
                              "' in the pool");
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // kUnavailable (not kInternal): the caller did nothing wrong — the pool
  // went away.  Both shutdown checks below return it so a Submit racing
  // Shutdown() gets one deterministic verdict whether it lost the race
  // before or during the backpressure wait.
  if (shutdown_) return Status::Unavailable("scheduler is shut down");
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overflow == OverflowPolicy::kReject) {
      rejected_backpressure_ += 1;
      return Status::ResourceExhausted(
          "submission queue full (" +
          std::to_string(options_.queue_capacity) + " jobs queued)");
    }
    space_cv_.wait(lock, [this] {
      return shutdown_ || queue_.size() < options_.queue_capacity;
    });
    if (shutdown_) {
      // The blocked submission never entered the queue; nothing (admission
      // bytes, queue slot) is held on this path.
      return Status::Unavailable("scheduler shut down while waiting");
    }
  }

  PendingJob job;
  job.id = next_job_id_++;
  job.spec = std::move(spec);
  job.enqueued_at = Clock::now();
  std::future<JobOutcome> future = job.promise.get_future();
  queue_.push_back(std::move(job));
  submitted_ += 1;
  // notify_all: the woken worker must also *match* the job's arch
  // preference, so waking just one could strand a pinned job.
  queue_cv_.notify_all();
  return future;
}

size_t Scheduler::FindRunnableLocked(const Worker& worker) const {
  // Workers neither running a job nor reserved by a running gang.  The
  // calling worker is idle, so available >= 1 unless a gang reserved it.
  const uint64_t available = workers_.size() - running_ - gang_reserved_;
  if (available == 0) return kNone;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const std::string& pref = queue_[i].spec.arch_preference;
    if (!pref.empty() && pref != worker.arch_name) continue;
    const uint64_t gang = std::max<uint32_t>(1, queue_[i].spec.gang_devices);
    // A gang needs its full complement of unreserved slots before it
    // starts; smaller jobs behind it may overtake in the meantime.
    if (gang > available) continue;
    return i;
  }
  return kNone;
}

void Scheduler::WorkerLoop(Worker* worker) {
  // The device is constructed *on the worker thread* and never escapes it:
  // the single-threaded vgpu::Device (and any rt::Stream a kernel wrapper
  // creates) stays confined to its owner, which is the whole concurrency
  // story of the pool.
  vgpu::Device device(*worker->slot.arch, worker->slot.options);
  // The residency cache shares the device's confinement: constructed after
  // it (so destroyed first, while the device can still free buffers) and
  // touched only from this thread.
  GraphCache cache(&device, options_.cache);
  worker->trace_track = trace::RegisterTrack("worker " + worker->arch_name);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    worker->memory_capacity_bytes = device.memory_capacity_bytes();
  }

  for (;;) {
    PendingJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this, worker] {
        return shutdown_ || FindRunnableLocked(*worker) != kNone;
      });
      if (shutdown_) return;
      size_t index = FindRunnableLocked(*worker);
      job = std::move(queue_[index]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
      running_ += 1;
      if (job.spec.gang_devices > 1) {
        gang_reserved_ += job.spec.gang_devices - 1;
      }
      space_cv_.notify_one();
    }

    const uint32_t gang_size = std::max<uint32_t>(1, job.spec.gang_devices);
    std::promise<JobOutcome> promise = std::move(job.promise);
    JobOutcome outcome = Execute(worker, &device, &cache, std::move(job));

    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ -= 1;
      if (gang_size > 1) {
        gang_reserved_ -= gang_size - 1;
        // Freed slots may unblock queued jobs (including other gangs).
        queue_cv_.notify_all();
      }
      worker->busy_wall_ms += outcome.exec_wall_ms;
      worker->modeled_ms += outcome.modeled_ms;
      const GraphCache::Stats& cs = cache.stats();
      worker->cache_hits = cs.hits;
      worker->cache_misses = cs.misses;
      worker->cache_evictions = cs.evictions;
      worker->cache_bytes_evicted = cs.bytes_evicted;
      worker->cache_resident_bytes = cs.resident_bytes;
      if (gang_size > 1 && outcome.status.ok()) {
        worker->gang_jobs += 1;
        worker->exchange_bytes += outcome.exchange_bytes;
        worker->exchange_rounds += outcome.exchange_rounds;
      }
      // A finished job frees a slot, which can make a queued gang runnable
      // for *other* idle workers — availability is part of their wait
      // predicate now, so they must be re-woken.
      if (!queue_.empty()) queue_cv_.notify_all();
      if (outcome.status.ok()) {
        completed_ += 1;
        worker->jobs_completed += 1;
        modeled_latencies_ms_.push_back(outcome.modeled_ms);
        wall_latencies_ms_.push_back(outcome.queue_wall_ms +
                                     outcome.exec_wall_ms);
      } else if (outcome.status.IsResourceExhausted()) {
        rejected_admission_ += 1;
        worker->jobs_rejected += 1;
      } else {
        failed_ += 1;
        worker->jobs_failed += 1;
      }
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
    promise.set_value(std::move(outcome));
  }
}

JobOutcome Scheduler::Execute(Worker* worker, vgpu::Device* device,
                              GraphCache* cache, PendingJob job) {
  JobOutcome outcome;
  outcome.job_id = job.id;
  outcome.tag = std::move(job.spec.tag);
  outcome.device_name = worker->arch_name;
  Clock::time_point exec_start = Clock::now();
  outcome.queue_wall_ms = MsBetween(job.enqueued_at, exec_start);

  if (trace::Enabled()) {
    // The wait already happened, so the span is emitted retroactively with
    // explicit timestamps rather than through the RAII helper.
    trace::TraceEvent wait;
    wait.name = "queue_wait";
    wait.category = "serve";
    wait.track = worker->trace_track;
    wait.ts_us = trace::ToUs(job.enqueued_at);
    wait.dur_us = trace::ToUs(exec_start) - wait.ts_us;
    wait.args.push_back({"job_id", std::to_string(job.id), true});
    trace::Emit(std::move(wait));
  }

  trace::Span job_span(
      worker->trace_track,
      "job:" + std::string(AlgorithmName(job.spec.algorithm())), "serve");
  job_span.ArgNum("job_id", job.id);
  if (!outcome.tag.empty()) job_span.Arg("tag", outcome.tag);

  if (job.spec.gang_devices > 1) {
    // Gang path: N fresh devices on this thread, no residency cache (each
    // engine device stages its own shard) and no single-device admission
    // estimate — a mid-run OOM still resolves gracefully below.
    job_span.ArgNum("gang_devices",
                    static_cast<uint64_t>(job.spec.gang_devices));
    Status gang_status = RunGang(worker, job.spec, &outcome);
    if (gang_status.ok()) {
      outcome.status = Status::OK();
    } else if (gang_status.IsOutOfMemory()) {
      outcome.status = Status::ResourceExhausted(
          "gang device OOM: " + gang_status.message());
    } else {
      outcome.status = gang_status;
    }
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
    if (job_span.active()) {
      job_span.Arg("status", outcome.status.ok()
                                 ? "ok"
                                 : std::string(StatusCodeToString(
                                       outcome.status.code())));
      job_span.ArgNum("modeled_ms", outcome.modeled_ms);
      job_span.ArgNum("exchange_bytes", outcome.exchange_bytes);
      job_span.ArgNum("exchange_rounds", outcome.exchange_rounds);
    }
    return outcome;
  }

  // Pin the job's own resident graph (if any) before admission, so that
  // eviction-for-space can free every *other* unpinned entry but never the
  // one this job is about to read.  Not a hit: Acquire re-pins and counts.
  core::ResidentCsr self_pin;
  if (cache != nullptr && cache->enabled()) {
    self_pin =
        cache->PinIfResident(*job.spec.graph, GraphVariantFor(job.spec));
  }

  AdmissionDecision decision;
  {
    trace::Span admission_span(worker->trace_track, "admission", "serve");
    decision =
        CheckAdmission(*device, job.spec, options_.admission_headroom, cache);
    admission_span.ArgNum("estimated_bytes", decision.estimated_bytes);
    admission_span.ArgNum("resident_bytes", decision.resident_bytes);
    admission_span.ArgNum("charged_bytes", decision.charged_bytes);
    if (decision.evicted_bytes > 0) {
      admission_span.ArgNum("evicted_bytes", decision.evicted_bytes);
    }
    admission_span.Arg("admit", decision.admit ? "true" : "false");
  }
  outcome.estimated_bytes = decision.estimated_bytes;
  if (!decision.admit) {
    outcome.status = AdmissionError(decision);
    job_span.Arg("status", "rejected_admission");
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
    return outcome;
  }

  const AlgorithmHandler& handler = GetHandler(job.spec.algorithm());
  prof::Session session(device);
  double modeled_before = device->elapsed_ms();
  double transfer_before = device->transfer_ms();
  uint64_t hits_before = cache != nullptr ? cache->stats().hits : 0;
  Result<JobPayload> payload = handler.run(
      device, job.spec,
      (cache != nullptr && cache->enabled()) ? cache : nullptr);
  outcome.modeled_ms = device->elapsed_ms() - modeled_before;
  outcome.modeled_transfer_ms = device->transfer_ms() - transfer_before;
  outcome.cache_hit = cache != nullptr && cache->stats().hits > hits_before;
  outcome.profile = session.Finish();
  if (payload.ok()) {
    outcome.status = Status::OK();
    outcome.payload = std::move(payload).value();
  } else if (payload.status().IsOutOfMemory()) {
    // The admission estimate was too optimistic and the device allocator
    // said no mid-run.  Still a graceful per-job verdict: buffers are
    // RAII-freed, the device stays serviceable, the pool keeps going.
    outcome.status = Status::ResourceExhausted(
        "device OOM past admission (estimate " +
        std::to_string(decision.estimated_bytes) + " bytes): " +
        payload.status().message());
  } else {
    outcome.status = payload.status();
  }

  // Fresh profiling state for the next request; live allocations were
  // already released by the algorithm's RAII buffers.
  device->ResetCounters();

  outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
  if (options_.device_occupancy_floor_ms > 0 &&
      outcome.exec_wall_ms < options_.device_occupancy_floor_ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.device_occupancy_floor_ms - outcome.exec_wall_ms));
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
  }
  if (job_span.active()) {
    job_span.Arg("status",
                 outcome.status.ok()
                     ? "ok"
                     : std::string(StatusCodeToString(outcome.status.code())));
    job_span.ArgNum("modeled_ms", outcome.modeled_ms);
    job_span.ArgNum("modeled_transfer_ms", outcome.modeled_transfer_ms);
    job_span.ArgNum("queue_wall_ms", outcome.queue_wall_ms);
    job_span.Arg("cache", outcome.cache_hit ? "hit" : "miss");
  }
  return outcome;
}

Status Scheduler::RunGang(Worker* worker, const JobSpec& spec,
                          JobOutcome* outcome) {
  part::PartitionedEngine::Options engine_options;
  engine_options.num_devices = spec.gang_devices;
  engine_options.device_options = worker->slot.options;
  engine_options.interconnect = spec.gang_interconnect;
  engine_options.strategy = spec.gang_strategy;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto engine,
      part::PartitionedEngine::Create(*worker->slot.arch, engine_options));
  ADGRAPH_ASSIGN_OR_RETURN(
      part::PartitionPlan plan,
      part::MakePartitionPlan(*spec.graph, spec.gang_devices,
                              spec.gang_strategy));
  outcome->gang_devices = spec.gang_devices;

  switch (spec.algorithm()) {
    case Algorithm::kBfs: {
      const auto& o = std::get<core::BfsOptions>(spec.params);
      part::PartBfsOptions part_options;
      part_options.source = o.source;
      part_options.block_size = o.block_size;
      ADGRAPH_ASSIGN_OR_RETURN(
          part::PartBfsResult r,
          part::RunPartitionedBfs(engine.get(), *spec.graph, plan,
                                  part_options));
      outcome->modeled_ms = r.time_ms;
      outcome->exchange_bytes = r.exchange_bytes;
      outcome->exchange_rounds = r.rounds;
      outcome->exchange_ms = r.exchange_ms;
      core::BfsResult payload;
      payload.levels = std::move(r.levels);
      payload.depth = r.depth;
      payload.vertices_visited = r.vertices_visited;
      payload.top_down_iterations = r.rounds;
      payload.time_ms = r.time_ms;
      outcome->payload = JobPayload(std::move(payload));
      return Status::OK();
    }
    case Algorithm::kPageRank: {
      const auto& o = std::get<core::PageRankOptions>(spec.params);
      part::PartPageRankOptions part_options;
      part_options.alpha = o.alpha;
      part_options.max_iterations = o.max_iterations;
      part_options.tolerance = o.tolerance;
      part_options.block_size = o.block_size;
      ADGRAPH_ASSIGN_OR_RETURN(
          part::PartPageRankResult r,
          part::RunPartitionedPageRank(engine.get(), *spec.graph, plan,
                                       part_options));
      outcome->modeled_ms = r.time_ms;
      outcome->exchange_bytes = r.exchange_bytes;
      outcome->exchange_rounds = r.iterations;
      outcome->exchange_ms = r.exchange_ms;
      core::PageRankResult payload;
      payload.ranks = std::move(r.ranks);
      payload.iterations = r.iterations;
      payload.l1_delta = r.l1_delta;
      payload.time_ms = r.time_ms;
      outcome->payload = JobPayload(std::move(payload));
      return Status::OK();
    }
    default:
      // ValidateJobSpec admits only the two cases above.
      return Status::Internal("gang execution reached an unsupported "
                              "algorithm past validation");
  }
}

void Scheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && running_ == 0) || shutdown_;
  });
}

void Scheduler::Shutdown() {
  std::vector<PendingJob> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already requested; fall through to join below (idempotent).
    }
    shutdown_ = true;
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (trace_collector_) {
    // Workers are quiet now; flush the session's trace before detaching.
    if (!options_.trace.path.empty()) {
      // Best-effort: an unwritable path must not turn Shutdown into a
      // failure; the collector still detaches below.
      Status write_status =
          trace_collector_->WriteChromeTrace(options_.trace.path);
      (void)write_status;
    }
    trace_collector_.reset();
  }
  for (PendingJob& job : orphans) {
    JobOutcome outcome;
    outcome.job_id = job.id;
    outcome.tag = std::move(job.spec.tag);
    outcome.status =
        Status::Unavailable("scheduler shut down before the job ran");
    job.promise.set_value(std::move(outcome));
  }
}

std::vector<trace::TraceEvent> Scheduler::TraceEvents() const {
  if (!trace_collector_) return {};
  return trace_collector_->Events();
}

prof::ServerStats Scheduler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  prof::ServerStats stats;
  stats.jobs_submitted = submitted_;
  stats.jobs_completed = completed_;
  stats.jobs_failed = failed_;
  stats.jobs_rejected_admission = rejected_admission_;
  stats.jobs_rejected_backpressure = rejected_backpressure_;
  stats.jobs_queued = queue_.size();
  stats.jobs_running = running_;
  stats.uptime_ms = MsBetween(started_at_, Clock::now());
  // Guard the rates against a zero/near-zero uptime (an immediate snapshot
  // after Create()): 0, not inf/NaN or an absurd spike.
  stats.jobs_per_sec = stats.uptime_ms >= kMinUptimeMs
                           ? 1000.0 * static_cast<double>(completed_) /
                                 stats.uptime_ms
                           : 0;
  stats.p50_modeled_ms = prof::Percentile(modeled_latencies_ms_, 0.50);
  stats.p95_modeled_ms = prof::Percentile(modeled_latencies_ms_, 0.95);
  stats.p50_wall_ms = prof::Percentile(wall_latencies_ms_, 0.50);
  stats.p95_wall_ms = prof::Percentile(wall_latencies_ms_, 0.95);
  for (const auto& worker : workers_) {
    prof::DeviceStats d;
    d.name = worker->arch_name;
    d.vendor = worker->slot.arch->vendor;
    d.jobs_completed = worker->jobs_completed;
    d.jobs_failed = worker->jobs_failed;
    d.jobs_rejected = worker->jobs_rejected;
    d.busy_wall_ms = worker->busy_wall_ms;
    d.modeled_ms = worker->modeled_ms;
    // Clamped: busy time is measured with a different clock granularity
    // than uptime, so the raw ratio can poke past 1.0 on short windows.
    d.utilization =
        stats.uptime_ms >= kMinUptimeMs
            ? std::clamp(worker->busy_wall_ms / stats.uptime_ms, 0.0, 1.0)
            : 0;
    d.memory_capacity_bytes = worker->memory_capacity_bytes;
    d.cache_hits = worker->cache_hits;
    d.cache_misses = worker->cache_misses;
    d.cache_evictions = worker->cache_evictions;
    d.cache_bytes_evicted = worker->cache_bytes_evicted;
    d.cache_resident_bytes = worker->cache_resident_bytes;
    d.gang_jobs = worker->gang_jobs;
    d.exchange_bytes = worker->exchange_bytes;
    d.exchange_rounds = worker->exchange_rounds;
    stats.cache_hits += d.cache_hits;
    stats.cache_misses += d.cache_misses;
    stats.cache_evictions += d.cache_evictions;
    stats.cache_bytes_evicted += d.cache_bytes_evicted;
    stats.cache_resident_bytes += d.cache_resident_bytes;
    stats.gang_jobs_completed += d.gang_jobs;
    stats.exchange_bytes_total += d.exchange_bytes;
    stats.exchange_rounds_total += d.exchange_rounds;
    stats.devices.push_back(std::move(d));
  }
  return stats;
}

}  // namespace adgraph::serve
