#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "capi/adgraph.h"
#include "core/incremental.h"
#include "ooc/streamed.h"
#include "part/engine.h"
#include "part/run.h"
#include "prof/metrics.h"
#include "prof/session.h"
#include "serve/admission.h"
#include "serve/registry.h"

namespace adgraph::serve {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

/// Latency histogram layout shared by every worker's modeled/wall/queue
/// series: 1 us to ~67 s in doubling buckets.  Identical layouts are what
/// make the per-worker histograms mergeable into pool-wide percentiles.
obs::HistogramOptions LatencyBuckets() {
  obs::HistogramOptions options;
  options.first_bound = 0.001;  // ms
  options.growth = 2.0;
  options.num_buckets = 26;
  return options;
}

std::string VersionString() {
  return std::to_string(ADGRAPH_VERSION_MAJOR) + "." +
         std::to_string(ADGRAPH_VERSION_MINOR) + "." +
         std::to_string(ADGRAPH_VERSION_PATCH);
}

/// Below this uptime the wall-clock rates are meaningless noise (a
/// Snapshot() taken right after Create()); report them as zero instead of
/// dividing by (near-)nothing.
constexpr double kMinUptimeMs = 1e-3;

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Scheduler::Scheduler(Options options) : options_(std::move(options)) {
  started_at_ = Clock::now();
  flight_recorder_ = std::make_unique<FlightRecorder>(options_.flight_recorder);
}

Result<std::unique_ptr<Scheduler>> Scheduler::Create(Options options) {
  if (options.devices.empty()) {
    for (const vgpu::ArchConfig* arch : vgpu::PaperGpus()) {
      options.devices.push_back({.arch = arch, .options = {}});
    }
  }
  for (const DeviceSlot& slot : options.devices) {
    if (slot.arch == nullptr) {
      return Status::InvalidArgument("device slot with null arch config");
    }
    // Reject pathological configs (zero SMs, zero clock, non-finite
    // bandwidth, ...) here, before a worker thread constructs a Device
    // whose timing model would divide by them.
    ADGRAPH_RETURN_NOT_OK(vgpu::ValidateArchConfig(*slot.arch));
  }
  options.queue_capacity = std::max<size_t>(options.queue_capacity, 1);

  auto scheduler = std::unique_ptr<Scheduler>(new Scheduler(std::move(options)));
  if (scheduler->options_.trace.enabled) {
    // Attach the session sink before any worker starts so device
    // construction (track registration, warm-up) is already observable.
    scheduler->trace_collector_ = std::make_unique<trace::Collector>(
        scheduler->options_.trace.ring_capacity);
  }
  for (const DeviceSlot& slot : scheduler->options_.devices) {
    auto worker = std::make_unique<Worker>(slot);
    worker->arch_name = slot.arch->name;
    scheduler->workers_.push_back(std::move(worker));
  }
  // Metric series exist before any thread runs: registration is the only
  // registry operation that locks, so doing it all here keeps the worker
  // hot path down to relaxed atomics on cached handles.
  scheduler->RegisterMetrics();
  if (scheduler->options_.metrics.enabled) {
    Scheduler* s = scheduler.get();
    scheduler->sampler_ = std::make_unique<obs::Sampler>(
        &scheduler->registry_, scheduler->options_.metrics,
        [s] { return s->PollMetrics(); },
        [s](const obs::AlertEvent& event) {
          // The flight recorder tracks firing rules regardless of tracing:
          // jobs completing under a firing alert qualify for its "alert"
          // class even when no trace sink is attached.
          s->flight_recorder_->NoteAlert(event.state ==
                                         obs::AlertEvent::State::kFiring);
          if (!trace::Enabled()) return;
          uint64_t track = s->alerts_track_.load(std::memory_order_relaxed);
          if (track == 0) {
            track = trace::RegisterTrack("alerts");
            s->alerts_track_.store(track, std::memory_order_relaxed);
          }
          char value[32];
          std::snprintf(value, sizeof(value), "%.3f", event.value);
          trace::EmitInstant(
              track, "alert:" + event.rule, "alert",
              {{"state",
                event.state == obs::AlertEvent::State::kFiring ? "firing"
                                                               : "resolved",
                false},
               {"value", value, true},
               {"metric", event.metric, false}});
        });
  }
  // Start the threads only after the worker array is final (threads index
  // into it).
  for (auto& worker : scheduler->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([s = scheduler.get(), w] { s->WorkerLoop(w); });
  }
  if (scheduler->sampler_) scheduler->sampler_->Start();
  return scheduler;
}

void Scheduler::RegisterMetrics() {
  const std::string version = VersionString();
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = *workers_[i];
    const obs::LabelSet id = {{"worker", std::to_string(i)},
                              {"device", worker.arch_name}};
    // build_info leads every scrape so dashboards can tell runs (and
    // pools) apart before reading a single sample.
    registry_.GetGauge("adgraph_build_info",
                       "Library version and device inventory; value is "
                       "always 1.",
                       {{"version", version},
                        {"worker", std::to_string(i)},
                        {"device", worker.arch_name},
                        {"vendor", worker.slot.arch->vendor}})
        ->Set(1);
  }
  metric_submitted_ = registry_.GetCounter(
      "adgraph_jobs_submitted_total", "Jobs accepted into the queue.");
  metric_rejected_backpressure_ = registry_.GetCounter(
      "adgraph_jobs_rejected_backpressure_total",
      "Submissions refused because the bounded queue was full.");
  metric_queue_depth_ = registry_.GetGauge(
      "adgraph_queue_depth", "Jobs waiting in the submission queue.");
  metric_jobs_running_ = registry_.GetGauge(
      "adgraph_jobs_running", "Jobs resident on a device right now.");
  metric_uptime_ms_ =
      registry_.GetGauge("adgraph_uptime_ms", "Pool uptime, milliseconds.");
  metric_jobs_per_sec_ = registry_.GetGauge(
      "adgraph_jobs_per_sec", "Completed-job throughput over the lifetime.");
  // One series per span sink: the global ring, the scheduler's session
  // collector, and the per-job SpanCaptures.  A nonzero value means a
  // trace summary / flight record is missing events (DESIGN.md §2.14).
  metric_trace_dropped_global_ = registry_.GetCounter(
      "adgraph_trace_dropped_spans_total",
      "Spans evicted from a trace sink before being read.",
      {{"track", "global"}});
  metric_trace_dropped_session_ = registry_.GetCounter(
      "adgraph_trace_dropped_spans_total",
      "Spans evicted from a trace sink before being read.",
      {{"track", "session"}});
  metric_trace_dropped_capture_ = registry_.GetCounter(
      "adgraph_trace_dropped_spans_total",
      "Spans evicted from a trace sink before being read.",
      {{"track", "capture"}});
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = *workers_[i];
    const obs::LabelSet id = {{"worker", std::to_string(i)},
                              {"device", worker.arch_name}};
    WorkerMetricHandles& m = worker.metrics;
    m.jobs_completed = registry_.GetCounter(
        "adgraph_jobs_completed_total", "Jobs finished OK.", id);
    m.jobs_failed = registry_.GetCounter(
        "adgraph_jobs_failed_total", "Jobs that ended with a non-OK status.",
        id);
    m.jobs_rejected = registry_.GetCounter(
        "adgraph_jobs_rejected_admission_total",
        "Jobs rejected by memory-aware admission control.", id);
    m.jobs_shed = registry_.GetCounter(
        "adgraph_jobs_shed_deadline_total",
        "Jobs shed at dequeue: queue-wait exceeded their deadline.", id);
    m.admission_headroom_bytes = registry_.GetGauge(
        "adgraph_admission_headroom_bytes",
        "Device memory still admittable (free bytes) after the last job.",
        id);
    m.cache_hits = registry_.GetCounter(
        "adgraph_cache_hits_total",
        "Graph residency cache: Acquire() served from device memory.", id);
    m.cache_misses = registry_.GetCounter(
        "adgraph_cache_misses_total",
        "Graph residency cache: Acquire() had to build and upload.", id);
    m.cache_evictions = registry_.GetCounter(
        "adgraph_cache_evictions_total",
        "Graph residency cache: entries evicted (LRU / for space).", id);
    m.cache_resident_bytes = registry_.GetGauge(
        "adgraph_cache_resident_bytes",
        "Graph residency cache: device bytes currently cached.", id);
    m.busy_wall_ms = registry_.GetGauge(
        "adgraph_worker_busy_ms", "Wall time spent executing jobs.", id);
    m.utilization = registry_.GetGauge(
        "adgraph_worker_utilization",
        "busy_wall_ms / uptime, clamped to [0,1].", id);
    m.warp_inst = registry_.GetCounter(
        "adgraph_device_warp_inst_total",
        "Warp instructions issued by completed jobs (Table 6 Type 1).", id);
    m.dram_bytes = registry_.GetCounter(
        "adgraph_device_dram_bytes_total",
        "Modeled DRAM traffic (read+write bytes) of completed jobs.", id);
    m.l2_hits = registry_.GetCounter("adgraph_device_l2_hits_total",
                                     "L2 hits of completed jobs.", id);
    m.l2_misses = registry_.GetCounter("adgraph_device_l2_misses_total",
                                       "L2 misses of completed jobs.", id);
    m.exchange_bytes = registry_.GetCounter(
        "adgraph_exchange_bytes_total",
        "Interconnect bytes moved by gang jobs this worker drove.", id);
    m.exchange_rounds = registry_.GetCounter(
        "adgraph_exchange_rounds_total",
        "Bulk-synchronous exchange rounds of gang jobs.", id);
    m.incremental_fallbacks = registry_.GetCounter(
        "adgraph_incremental_fallbacks_total",
        "Warm-started jobs that fell back to full recompute (deletions, "
        "trimmed history, algorithm mismatch, ...).",
        id);
    m.streamed_jobs = registry_.GetCounter(
        "adgraph_streamed_jobs_total",
        "Jobs admitted past a whole-graph reject and run via the "
        "out-of-core streamed path.",
        id);
    m.modeled_latency = registry_.GetHistogram(
        "adgraph_job_modeled_ms", "Modeled device time per completed job.",
        id, LatencyBuckets());
    m.wall_latency = registry_.GetHistogram(
        "adgraph_job_latency_ms",
        "Submit-to-done wall latency per completed job.", id,
        LatencyBuckets());
    m.queue_wait = registry_.GetHistogram(
        "adgraph_queue_wait_ms", "Queue wait before execution, every job.",
        id, LatencyBuckets());
  }
}

Scheduler::~Scheduler() { Shutdown(); }

std::vector<std::string> Scheduler::device_names() const {
  std::vector<std::string> names;
  names.reserve(workers_.size());
  for (const auto& worker : workers_) names.push_back(worker->arch_name);
  return names;
}

Result<std::future<JobOutcome>> Scheduler::Submit(JobSpec spec) {
  ADGRAPH_RETURN_NOT_OK(ValidateJobSpec(spec));
  if (spec.gang_devices > workers_.size()) {
    return Status::InvalidArgument(
        "gang of " + std::to_string(spec.gang_devices) +
        " devices exceeds the pool (" + std::to_string(workers_.size()) +
        " workers)");
  }
  if (!spec.arch_preference.empty()) {
    bool found = false;
    for (const auto& worker : workers_) {
      found |= worker->arch_name == spec.arch_preference;
    }
    if (!found) {
      return Status::NotFound("no device named '" + spec.arch_preference +
                              "' in the pool");
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // kUnavailable (not kInternal): the caller did nothing wrong — the pool
  // went away.  Both shutdown checks below return it so a Submit racing
  // Shutdown() gets one deterministic verdict whether it lost the race
  // before or during the backpressure wait.
  if (shutdown_) return Status::Unavailable("scheduler is shut down");
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overflow == OverflowPolicy::kReject) {
      rejected_backpressure_ += 1;
      metric_rejected_backpressure_->Increment();
      return Status::ResourceExhausted(
          "submission queue full (" +
          std::to_string(options_.queue_capacity) + " jobs queued)");
    }
    space_cv_.wait(lock, [this] {
      return shutdown_ || queue_.size() < options_.queue_capacity;
    });
    if (shutdown_) {
      // The blocked submission never entered the queue; nothing (admission
      // bytes, queue slot) is held on this path.
      return Status::Unavailable("scheduler shut down while waiting");
    }
  }

  PendingJob job;
  job.id = next_job_id_++;
  job.spec = std::move(spec);
  // Trace-context propagation (DESIGN.md §2.14): a submission that arrived
  // without an id (in-process callers) gets one here — the scheduler is
  // the outermost layer it ever crossed.  The flight recorder needs each
  // job's span tree, so give recorder-eligible jobs a capture too.
  if (job.spec.trace_id == 0) job.spec.trace_id = trace::MintTraceId();
  if (job.spec.capture == nullptr && options_.flight_recorder.enabled) {
    job.spec.capture = std::make_shared<trace::SpanCapture>();
  }
  job.enqueued_at = Clock::now();
  job.tenant = TenantStateLocked(job.spec);
  job.tenant->submitted += 1;
  job.tenant->metric_submitted->Increment();
  // An idle tenant re-enters the fair-share race at the pool's current
  // virtual time — no banked credit from its quiet period.
  job.tenant->vtime = std::max(job.tenant->vtime, vtime_floor_);
  std::future<JobOutcome> future = job.promise.get_future();
  queue_.push_back(std::move(job));
  submitted_ += 1;
  metric_submitted_->Increment();
  // Live (not just sampler-refreshed) queue depth, so saturation alert
  // rules see spikes between Snapshot() calls.
  metric_queue_depth_->Set(static_cast<double>(queue_.size()));
  // notify_all: the woken worker must also *match* the job's arch
  // preference, so waking just one could strand a pinned job.
  queue_cv_.notify_all();
  return future;
}

size_t Scheduler::FindRunnableLocked(const Worker& worker) const {
  // Workers neither running a job nor reserved by a running gang.  The
  // calling worker is idle, so available >= 1 unless a gang reserved it.
  const uint64_t available = workers_.size() - running_ - gang_reserved_;
  if (available == 0) return kNone;
  size_t best = kNone;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const std::string& pref = queue_[i].spec.arch_preference;
    if (!pref.empty() && pref != worker.arch_name) continue;
    const uint64_t gang = std::max<uint32_t>(1, queue_[i].spec.gang_devices);
    // A gang needs its full complement of unreserved slots before it
    // starts; smaller jobs behind it may overtake in the meantime.
    if (gang > available) continue;
    if (best == kNone) {
      best = i;
      continue;
    }
    // Strict priority between classes, weighted fair share within one:
    // smaller tenant vtime wins, FIFO (earlier index) breaks ties.
    const JobSpec& cand = queue_[i].spec;
    const JobSpec& incumbent = queue_[best].spec;
    if (cand.priority != incumbent.priority) {
      if (cand.priority < incumbent.priority) best = i;
      continue;
    }
    if (queue_[i].tenant->vtime < queue_[best].tenant->vtime) best = i;
  }
  return best;
}

Scheduler::TenantState* Scheduler::TenantStateLocked(const JobSpec& spec) {
  auto [it, inserted] = tenants_.try_emplace(spec.tenant);
  TenantState& state = it->second;
  state.priority = spec.priority;
  if (inserted) {
    // Prometheus-style identity: one label per series.  "-" stands in for
    // the anonymous tenant so the label value is never empty.
    const obs::LabelSet id = {
        {"tenant", spec.tenant.empty() ? "-" : spec.tenant}};
    state.metric_submitted = registry_.GetCounter(
        "adgraph_tenant_jobs_submitted_total",
        "Jobs this tenant got accepted into the queue.", id);
    state.metric_completed = registry_.GetCounter(
        "adgraph_tenant_jobs_completed_total",
        "Jobs this tenant finished OK.", id);
    state.metric_failed = registry_.GetCounter(
        "adgraph_tenant_jobs_failed_total",
        "Jobs this tenant ended with a non-OK status.", id);
    state.metric_rejected = registry_.GetCounter(
        "adgraph_tenant_jobs_rejected_total",
        "Jobs this tenant lost to memory-aware admission control.", id);
    state.metric_shed = registry_.GetCounter(
        "adgraph_tenant_jobs_shed_total",
        "Jobs this tenant had shed for a missed deadline.", id);
    state.metric_queue_wait = registry_.GetHistogram(
        "adgraph_tenant_queue_wait_ms",
        "Queue wait before execution (or shedding), per tenant and "
        "priority class.",
        {{"priority", std::to_string(spec.priority)},
         {"tenant", spec.tenant.empty() ? "-" : spec.tenant}},
        LatencyBuckets());
  }
  return &state;
}

void Scheduler::WorkerLoop(Worker* worker) {
  // The device is constructed *on the worker thread* and never escapes it:
  // the single-threaded vgpu::Device (and any rt::Stream a kernel wrapper
  // creates) stays confined to its owner, which is the whole concurrency
  // story of the pool.
  vgpu::Device device(*worker->slot.arch, worker->slot.options);
  // The residency cache shares the device's confinement: constructed after
  // it (so destroyed first, while the device can still free buffers) and
  // touched only from this thread.
  GraphCache cache(&device, options_.cache);
  worker->trace_track = trace::RegisterTrack("worker " + worker->arch_name);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    worker->memory_capacity_bytes = device.memory_capacity_bytes();
  }
  // Publish the idle-device headroom up front so a worker that never runs
  // a job exports its full capacity rather than a default 0.
  worker->metrics.admission_headroom_bytes->Set(
      static_cast<double>(device.memory_free_bytes()));
  // Cache stats are lifetime-absolute; the registry counters are
  // monotonic, so the worker keeps the last published values and adds the
  // delta after each job.  Thread-confined, like the cache itself.
  GraphCache::Stats published_cache;
  // Per-algorithm completion counters ({algo, worker, device} labels) are
  // registered lazily on first sight of each algorithm; the handle is then
  // memoized here so steady state never touches the registry lock.
  std::map<Algorithm, obs::Counter*> by_algo;
  // Per-job attribution histograms (DESIGN.md §2.14), one family per
  // JobProfile ratio with {algo, device, tenant} identity — registered
  // lazily per (algorithm, tenant) pair seen on this worker, memoized the
  // same way.
  struct JobProfileHandles {
    obs::Histogram* divergence = nullptr;
    obs::Histogram* gld_efficiency = nullptr;
    obs::Histogram* l2_hit = nullptr;
    obs::Histogram* occupancy = nullptr;
  };
  std::map<std::pair<Algorithm, std::string>, JobProfileHandles> by_profile;
  size_t worker_index = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].get() == worker) worker_index = i;
  }

  for (;;) {
    PendingJob job;
    std::vector<std::pair<uint64_t, uint64_t>> invalidations;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this, worker] {
        return shutdown_ || FindRunnableLocked(*worker) != kNone;
      });
      if (shutdown_) return;
      invalidations.swap(worker->pending_invalidations);
      size_t index = FindRunnableLocked(*worker);
      job = std::move(queue_[index]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(index));
      running_ += 1;
      if (job.spec.gang_devices > 1) {
        gang_reserved_ += job.spec.gang_devices - 1;
      }
      // Advance the tenant's fair-share clock: this dequeue consumed one
      // weighted share.  The pre-increment vtime becomes the floor where
      // newly arriving tenants start.
      vtime_floor_ = std::max(vtime_floor_, job.tenant->vtime);
      job.tenant->vtime +=
          1.0 / std::max(job.spec.fair_weight, 1e-6);
      metric_queue_depth_->Set(static_cast<double>(queue_.size()));
      space_cv_.notify_one();
    }

    // Apply queued residency invalidations on the cache's owning thread
    // before this job stages anything (stale epochs can't be served either
    // way — the versioned key guarantees that — this frees their memory).
    for (const auto& [fp, keep] : invalidations) cache.Invalidate(fp, keep);

    const uint32_t gang_size = std::max<uint32_t>(1, job.spec.gang_devices);
    const Algorithm algo = job.spec.algorithm();
    std::promise<JobOutcome> promise = std::move(job.promise);
    TenantState* tenant = job.tenant;
    // Job identity, saved before the spec is consumed: the trace context
    // installed below stamps these onto every span this thread emits for
    // the job, and the flight recorder files the job under them.
    const uint64_t trace_id = job.spec.trace_id;
    const uint64_t wire_job_id = job.spec.wire_job_id;
    const uint64_t sched_job_id = job.id;
    const std::string tenant_name = job.spec.tenant;
    std::shared_ptr<trace::SpanCapture> capture = job.spec.capture;
    trace::ScopedTraceContext trace_scope(
        trace::TraceContext{trace_id, wire_job_id, sched_job_id, capture});
    JobOutcome outcome;
    const double queue_wait_ms = MsBetween(job.enqueued_at, Clock::now());
    if (job.spec.deadline_ms > 0 && queue_wait_ms > job.spec.deadline_ms) {
      // Deadline-based load shedding: the answer is already late, so spend
      // zero device time on it and fail fast — the caller may retry with a
      // fresh deadline against a less-loaded pool.
      outcome.job_id = job.id;
      outcome.tag = std::move(job.spec.tag);
      outcome.device_name = worker->arch_name;
      outcome.queue_wall_ms = queue_wait_ms;
      outcome.status = Status::DeadlineExceeded(
          "queue wait " + std::to_string(queue_wait_ms) +
          " ms exceeded the job's deadline of " +
          std::to_string(job.spec.deadline_ms) + " ms");
      if (trace::Enabled()) {
        trace::TraceEvent shed;
        shed.name = "shed:deadline";
        shed.category = "serve";
        shed.track = worker->trace_track;
        shed.ts_us = trace::ToUs(job.enqueued_at);
        shed.dur_us = trace::ToUs(Clock::now()) - shed.ts_us;
        shed.args.push_back({"job_id", std::to_string(job.id), true});
        shed.args.push_back(
            {"deadline_ms", std::to_string(job.spec.deadline_ms), true});
        trace::Emit(std::move(shed));
      }
    } else {
      outcome = Execute(worker, &device, &cache, std::move(job));
    }
    outcome.trace_id = trace_id;
    outcome.wire_job_id = wire_job_id;

    // Registry updates first — lock-free, and outside mutex_ so a
    // concurrent scrape never waits on the stats bookkeeping below.
    WorkerMetricHandles& m = worker->metrics;
    m.queue_wait->Observe(outcome.queue_wall_ms);
    if (outcome.status.ok()) {
      m.jobs_completed->Increment();
      m.modeled_latency->Observe(outcome.modeled_ms);
      m.wall_latency->Observe(outcome.queue_wall_ms + outcome.exec_wall_ms);
      const vgpu::KernelCounters& kc = outcome.profile.counters;
      m.warp_inst->Increment(kc.warp_inst_issued);
      m.dram_bytes->Increment(kc.dram_read_bytes + kc.dram_write_bytes);
      m.l2_hits->Increment(kc.l2_hits);
      m.l2_misses->Increment(kc.l2_misses);
      if (gang_size > 1) {
        m.exchange_bytes->Increment(outcome.exchange_bytes);
        m.exchange_rounds->Increment(outcome.exchange_rounds);
      }
      auto it = by_algo.find(algo);
      if (it == by_algo.end()) {
        obs::Counter* counter = registry_.GetCounter(
            "adgraph_jobs_by_algo_total", "Completed jobs per algorithm.",
            {{"algo", std::string(AlgorithmName(algo))},
             {"worker", std::to_string(worker_index)},
             {"device", worker->arch_name}});
        it = by_algo.emplace(algo, counter).first;
      }
      it->second->Increment();
      if (options_.job_profiles && outcome.job_profile.num_kernels > 0) {
        auto key = std::make_pair(algo, tenant_name);
        auto pit = by_profile.find(key);
        if (pit == by_profile.end()) {
          const obs::LabelSet id = {
              {"algo", std::string(AlgorithmName(algo))},
              {"device", worker->arch_name},
              {"tenant", tenant_name.empty() ? "-" : tenant_name}};
          JobProfileHandles handles;
          handles.divergence = registry_.GetHistogram(
              "adgraph_job_divergent_branch_ratio",
              "Per-job divergent/executed branch ratio (Table 6).", id,
              obs::RatioBuckets());
          handles.gld_efficiency = registry_.GetHistogram(
              "adgraph_job_gld_efficiency",
              "Per-job global-load coalescing efficiency (requested / "
              "transferred bytes).",
              id, obs::RatioBuckets());
          handles.l2_hit = registry_.GetHistogram(
              "adgraph_job_l2_hit_rate", "Per-job L2 hit rate.", id,
              obs::RatioBuckets());
          handles.occupancy = registry_.GetHistogram(
              "adgraph_job_achieved_occupancy",
              "Per-job time-weighted achieved occupancy.", id,
              obs::RatioBuckets());
          pit = by_profile.emplace(key, handles).first;
        }
        const prof::JobProfile& jp = outcome.job_profile;
        pit->second.divergence->Observe(jp.divergent_branch_ratio);
        pit->second.gld_efficiency->Observe(jp.gld_efficiency);
        pit->second.l2_hit->Observe(jp.l2_hit_rate);
        pit->second.occupancy->Observe(jp.achieved_occupancy);
      }
    } else if (outcome.status.IsResourceExhausted()) {
      m.jobs_rejected->Increment();
    } else if (outcome.status.IsDeadlineExceeded()) {
      m.jobs_shed->Increment();
    } else {
      m.jobs_failed->Increment();
    }
    // Per-tenant series (same classification), plus the queue-wait
    // histogram alert rules watch per priority class.
    tenant->metric_queue_wait->Observe(outcome.queue_wall_ms);
    if (outcome.status.ok()) {
      tenant->metric_completed->Increment();
    } else if (outcome.status.IsResourceExhausted()) {
      tenant->metric_rejected->Increment();
    } else if (outcome.status.IsDeadlineExceeded()) {
      tenant->metric_shed->Increment();
    } else {
      tenant->metric_failed->Increment();
    }
    // Live saturation signal: free device bytes right after the job (the
    // graph cache's resident entries count as used until evicted).
    m.admission_headroom_bytes->Set(
        static_cast<double>(device.memory_free_bytes()));
    {
      const GraphCache::Stats& cs = cache.stats();
      m.cache_hits->Increment(cs.hits - published_cache.hits);
      m.cache_misses->Increment(cs.misses - published_cache.misses);
      m.cache_evictions->Increment(cs.evictions - published_cache.evictions);
      m.cache_resident_bytes->Set(static_cast<double>(cs.resident_bytes));
      published_cache = cs;
    }

    // Flight-recorder candidacy (DESIGN.md §2.14): hand over the span tree
    // and profile; the recorder decides which trigger classes (if any)
    // retain the job.  Done outside mutex_ — the recorder has its own lock.
    if (flight_recorder_->enabled()) {
      FlightRecorder::JobRecord record;
      record.trace_id = trace_id;
      record.wire_job_id = wire_job_id;
      record.sched_job_id = sched_job_id;
      record.tag = outcome.tag;
      record.tenant = tenant_name;
      record.algorithm = std::string(AlgorithmName(algo));
      record.device = worker->arch_name;
      record.status = outcome.status;
      record.queue_wall_ms = outcome.queue_wall_ms;
      record.exec_wall_ms = outcome.exec_wall_ms;
      record.modeled_ms = outcome.modeled_ms;
      record.profile = outcome.job_profile;
      if (capture != nullptr) {
        record.spans = capture->Events();
        record.spans_dropped = capture->dropped();
      }
      flight_recorder_->Record(std::move(record));
    }
    if (capture != nullptr && capture->dropped() > 0) {
      capture_dropped_total_.fetch_add(capture->dropped(),
                                       std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ -= 1;
      if (gang_size > 1) {
        gang_reserved_ -= gang_size - 1;
        // Freed slots may unblock queued jobs (including other gangs).
        queue_cv_.notify_all();
      }
      worker->busy_wall_ms += outcome.exec_wall_ms;
      worker->modeled_ms += outcome.modeled_ms;
      const GraphCache::Stats& cs = cache.stats();
      worker->cache_hits = cs.hits;
      worker->cache_misses = cs.misses;
      worker->cache_evictions = cs.evictions;
      worker->cache_bytes_evicted = cs.bytes_evicted;
      worker->cache_resident_bytes = cs.resident_bytes;
      worker->cache_stale_invalidated = cs.stale_invalidated;
      if (gang_size > 1 && outcome.status.ok()) {
        worker->gang_jobs += 1;
        worker->exchange_bytes += outcome.exchange_bytes;
        worker->exchange_rounds += outcome.exchange_rounds;
      }
      // A finished job frees a slot, which can make a queued gang runnable
      // for *other* idle workers — availability is part of their wait
      // predicate now, so they must be re-woken.
      if (!queue_.empty()) queue_cv_.notify_all();
      tenant->queue_wait_ms_total += outcome.queue_wall_ms;
      if (outcome.status.ok()) {
        completed_ += 1;
        worker->jobs_completed += 1;
        tenant->completed += 1;
      } else if (outcome.status.IsResourceExhausted()) {
        rejected_admission_ += 1;
        worker->jobs_rejected += 1;
        tenant->rejected += 1;
      } else if (outcome.status.IsDeadlineExceeded()) {
        shed_deadline_ += 1;
        tenant->shed_deadline += 1;
      } else {
        failed_ += 1;
        worker->jobs_failed += 1;
        tenant->failed += 1;
      }
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
    promise.set_value(std::move(outcome));
  }
}

JobOutcome Scheduler::Execute(Worker* worker, vgpu::Device* device,
                              GraphCache* cache, PendingJob job) {
  JobOutcome outcome;
  outcome.job_id = job.id;
  outcome.tag = std::move(job.spec.tag);
  outcome.device_name = worker->arch_name;
  Clock::time_point exec_start = Clock::now();
  outcome.queue_wall_ms = MsBetween(job.enqueued_at, exec_start);

  if (trace::Enabled()) {
    // The wait already happened, so the span is emitted retroactively with
    // explicit timestamps rather than through the RAII helper.
    trace::TraceEvent wait;
    wait.name = "queue_wait";
    wait.category = "serve";
    wait.track = worker->trace_track;
    wait.ts_us = trace::ToUs(job.enqueued_at);
    wait.dur_us = trace::ToUs(exec_start) - wait.ts_us;
    wait.args.push_back({"job_id", std::to_string(job.id), true});
    trace::Emit(std::move(wait));
  }

  trace::Span job_span(
      worker->trace_track,
      "job:" + std::string(AlgorithmName(job.spec.algorithm())), "serve");
  job_span.ArgNum("job_id", job.id);
  if (!outcome.tag.empty()) job_span.Arg("tag", outcome.tag);

  if (job.spec.gang_devices > 1) {
    // Gang path: N fresh devices on this thread, no residency cache (each
    // engine device stages its own shard) and no single-device admission
    // estimate — a mid-run OOM still resolves gracefully below.
    job_span.ArgNum("gang_devices",
                    static_cast<uint64_t>(job.spec.gang_devices));
    Status gang_status = RunGang(worker, job.spec, &outcome);
    if (gang_status.ok()) {
      outcome.status = Status::OK();
    } else if (gang_status.IsOutOfMemory()) {
      outcome.status = Status::ResourceExhausted(
          "gang device OOM: " + gang_status.message());
    } else {
      outcome.status = gang_status;
    }
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
    if (job_span.active()) {
      job_span.Arg("status", outcome.status.ok()
                                 ? "ok"
                                 : std::string(StatusCodeToString(
                                       outcome.status.code())));
      job_span.ArgNum("modeled_ms", outcome.modeled_ms);
      job_span.ArgNum("exchange_bytes", outcome.exchange_bytes);
      job_span.ArgNum("exchange_rounds", outcome.exchange_rounds);
    }
    return outcome;
  }

  // Pin the job's own resident graph (if any) before admission, so that
  // eviction-for-space can free every *other* unpinned entry but never the
  // one this job is about to read.  Not a hit: Acquire re-pins and counts.
  core::ResidentCsr self_pin;
  if (cache != nullptr && cache->enabled()) {
    self_pin =
        cache->PinIfResident(*job.spec.graph, GraphVariantFor(job.spec));
  }

  AdmissionDecision decision;
  {
    trace::Span admission_span(worker->trace_track, "admission", "serve");
    decision =
        CheckAdmission(*device, job.spec, options_.admission_headroom, cache);
    admission_span.ArgNum("estimated_bytes", decision.estimated_bytes);
    admission_span.ArgNum("resident_bytes", decision.resident_bytes);
    admission_span.ArgNum("charged_bytes", decision.charged_bytes);
    if (decision.evicted_bytes > 0) {
      admission_span.ArgNum("evicted_bytes", decision.evicted_bytes);
    }
    admission_span.Arg("admit", decision.admit ? "true" : "false");
  }
  outcome.estimated_bytes = decision.estimated_bytes;
  if (!decision.admit) {
    outcome.status = AdmissionError(decision);
    job_span.Arg("status", "rejected_admission");
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
    return outcome;
  }

  const AlgorithmHandler& handler = GetHandler(job.spec.algorithm());
  prof::Session session(device);
  double modeled_before = device->elapsed_ms();
  double transfer_before = device->transfer_ms();
  uint64_t hits_before = cache != nullptr ? cache->stats().hits : 0;
  core::GraphResidency* residency =
      (cache != nullptr && cache->enabled()) ? cache : nullptr;
  Result<JobPayload> payload = Status::Internal("job not dispatched");
  if (decision.streamed) {
    // Out-of-core tier (DESIGN.md §2.13): the whole graph never becomes
    // device-resident — vertex-range shards double-buffer through two
    // staging slots, prefetching shard k+1 while shard k computes.  The
    // residency cache is bypassed; admission charged only the streamed
    // working set.
    ooc::StreamedStats streamed_stats;
    ooc::OocOptions ooc_options;
    ooc_options.shard_bytes = job.spec.ooc_shard_bytes;
    payload = ooc::RunStreamed(device, job.spec.algorithm(), job.spec.graph,
                               job.spec.params, ooc_options, &streamed_stats);
    outcome.streamed = true;
    outcome.ooc_shards = streamed_stats.num_shards;
    outcome.ooc_staged_bytes = streamed_stats.staged_bytes;
    outcome.ooc_overlap_speedup = streamed_stats.overlap_speedup();
    worker->metrics.streamed_jobs->Increment();
    job_span.ArgNum("ooc_shards",
                    static_cast<uint64_t>(streamed_stats.num_shards));
    job_span.ArgNum("ooc_staged_bytes", streamed_stats.staged_bytes);
  } else if (job.spec.warm_start != nullptr) {
    // Incremental recompute (DESIGN.md §2.12), serialized against MUTATEs
    // through the front door's per-graph mutex.  Whichever path runs —
    // delta re-expansion or one of the documented fallbacks to a full
    // recompute — the payload is usable; the fallback is made visible
    // instead of silent.
    outcome.incremental_requested = true;
    core::IncrementalInfo info;
    std::unique_lock<std::mutex> delta_lock;
    if (job.spec.delta_mutex != nullptr) {
      delta_lock = std::unique_lock<std::mutex>(*job.spec.delta_mutex);
    }
    payload = core::RunIncremental(
        device, core::AlgoSpec{job.spec.algorithm()}, *job.spec.delta,
        job.spec.params, *job.spec.warm_start, job.spec.previous_version,
        core::IncrementalOptions{}, residency, &info);
    outcome.result_version = job.spec.delta->version();
    outcome.incremental = info.incremental;
    outcome.fallback_reason = info.fallback_reason;
    if (!info.incremental) {
      worker->metrics.incremental_fallbacks->Increment();
      if (!info.fallback_reason.empty()) {
        job_span.Arg("fallback", info.fallback_reason);
      }
    }
  } else {
    payload = handler.run(device, job.spec, residency);
  }
  outcome.modeled_ms = device->elapsed_ms() - modeled_before;
  outcome.modeled_transfer_ms = device->transfer_ms() - transfer_before;
  outcome.cache_hit = cache != nullptr && cache->stats().hits > hits_before;
  outcome.profile = session.Finish();
  if (payload.ok()) {
    outcome.status = Status::OK();
    outcome.payload = std::move(payload).value();
  } else if (payload.status().IsOutOfMemory()) {
    // The admission estimate was too optimistic and the device allocator
    // said no mid-run.  Still a graceful per-job verdict: buffers are
    // RAII-freed, the device stays serviceable, the pool keeps going.
    outcome.status = Status::ResourceExhausted(
        "device OOM past admission (estimate " +
        std::to_string(decision.estimated_bytes) + " bytes): " +
        payload.status().message());
  } else {
    outcome.status = payload.status();
  }

  // Per-job attribution (DESIGN.md §2.14): fold this job's kernel window
  // into the compact JobProfile *before* the counter reset below wipes the
  // log.  The window is exactly [session.start_index(), log.size()).
  if (options_.job_profiles && outcome.status.ok()) {
    outcome.job_profile = prof::BuildJobProfile(
        outcome.profile, device->kernel_log(), session.start_index());
  }

  // Fresh profiling state for the next request; live allocations were
  // already released by the algorithm's RAII buffers.
  device->ResetCounters();

  outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
  if (options_.device_occupancy_floor_ms > 0 &&
      outcome.exec_wall_ms < options_.device_occupancy_floor_ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.device_occupancy_floor_ms - outcome.exec_wall_ms));
    outcome.exec_wall_ms = MsBetween(exec_start, Clock::now());
  }
  if (job_span.active()) {
    job_span.Arg("status",
                 outcome.status.ok()
                     ? "ok"
                     : std::string(StatusCodeToString(outcome.status.code())));
    job_span.ArgNum("modeled_ms", outcome.modeled_ms);
    job_span.ArgNum("modeled_transfer_ms", outcome.modeled_transfer_ms);
    job_span.ArgNum("queue_wall_ms", outcome.queue_wall_ms);
    job_span.Arg("cache", outcome.cache_hit ? "hit" : "miss");
  }
  return outcome;
}

Status Scheduler::RunGang(Worker* worker, const JobSpec& spec,
                          JobOutcome* outcome) {
  part::PartitionedEngine::Options engine_options;
  engine_options.num_devices = spec.gang_devices;
  engine_options.device_options = worker->slot.options;
  engine_options.interconnect = spec.gang_interconnect;
  engine_options.strategy = spec.gang_strategy;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto engine,
      part::PartitionedEngine::Create(*worker->slot.arch, engine_options));
  ADGRAPH_ASSIGN_OR_RETURN(
      part::PartitionPlan plan,
      part::MakePartitionPlan(*spec.graph, spec.gang_devices,
                              spec.gang_strategy));
  outcome->gang_devices = spec.gang_devices;

  // Uniform partitioned dispatch: part::RunPartitioned mirrors core::Run,
  // so the scheduler needs no per-algorithm knowledge here either.
  // ValidateJobSpec admitted only algorithms it supports.
  ADGRAPH_ASSIGN_OR_RETURN(
      part::PartRunResult r,
      part::RunPartitioned(engine.get(), *spec.graph, plan,
                           core::AlgoSpec{spec.algorithm()}, spec.params));
  outcome->modeled_ms = r.time_ms;
  outcome->exchange_bytes = r.exchange_bytes;
  outcome->exchange_rounds = r.exchange_rounds;
  outcome->exchange_ms = r.exchange_ms;
  outcome->payload = std::move(r.payload);
  return Status::OK();
}

void Scheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && running_ == 0) || shutdown_;
  });
}

void Scheduler::InvalidateResidency(uint64_t fingerprint,
                                    uint64_t keep_min_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return;
  for (auto& worker : workers_) {
    worker->pending_invalidations.emplace_back(fingerprint, keep_min_epoch);
  }
}

void Scheduler::Shutdown() {
  std::vector<PendingJob> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already requested; fall through to join below (idempotent).
    }
    shutdown_ = true;
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (sampler_) {
    // Workers are done, trace collector still attached: the final sample
    // (and any alert transition it causes) is complete and observable in
    // the trace.  Stop() also writes Options::metrics.path.
    sampler_->Stop();
  }
  if (trace_collector_) {
    // Workers are quiet now; flush the session's trace before detaching.
    if (!options_.trace.path.empty()) {
      // Best-effort: an unwritable path must not turn Shutdown into a
      // failure; the collector still detaches below.
      Status write_status =
          trace_collector_->WriteChromeTrace(options_.trace.path);
      (void)write_status;
    }
    trace_collector_.reset();
  }
  if (flight_recorder_->enabled() && !options_.flight_recorder.path.empty()) {
    // Best-effort, like the session trace above: the retained worst-job
    // span trees go out as one Chrome trace for post-mortem loading.
    Status dump_status =
        flight_recorder_->WriteChromeTrace(options_.flight_recorder.path);
    (void)dump_status;
  }
  for (PendingJob& job : orphans) {
    JobOutcome outcome;
    outcome.job_id = job.id;
    outcome.tag = std::move(job.spec.tag);
    outcome.status =
        Status::Unavailable("scheduler shut down before the job ran");
    job.promise.set_value(std::move(outcome));
  }
}

std::vector<trace::TraceEvent> Scheduler::TraceEvents() const {
  if (!trace_collector_) return {};
  return trace_collector_->Events();
}

prof::ServerStats Scheduler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  prof::ServerStats stats;
  stats.jobs_submitted = submitted_;
  stats.jobs_completed = completed_;
  stats.jobs_failed = failed_;
  stats.jobs_rejected_admission = rejected_admission_;
  stats.jobs_rejected_backpressure = rejected_backpressure_;
  stats.jobs_shed_deadline = shed_deadline_;
  stats.jobs_queued = queue_.size();
  stats.jobs_running = running_;
  stats.uptime_ms = MsBetween(started_at_, Clock::now());
  // Guard the rates against a zero/near-zero uptime (an immediate snapshot
  // after Create()): 0, not inf/NaN or an absurd spike.
  stats.jobs_per_sec = stats.uptime_ms >= kMinUptimeMs
                           ? 1000.0 * static_cast<double>(completed_) /
                                 stats.uptime_ms
                           : 0;
  // Pool-wide percentiles: merge the per-worker latency histograms
  // (identical bucket layouts) and interpolate.  Fixed memory regardless
  // of job count, at the price of bucket-resolution estimates — the trade
  // DESIGN.md §2.9 documents.
  obs::HistogramSnapshot modeled_merged;
  obs::HistogramSnapshot wall_merged;
  for (const auto& worker : workers_) {
    modeled_merged.Merge(worker->metrics.modeled_latency->Snapshot());
    wall_merged.Merge(worker->metrics.wall_latency->Snapshot());
  }
  stats.p50_modeled_ms = modeled_merged.Quantile(0.50);
  stats.p95_modeled_ms = modeled_merged.Quantile(0.95);
  stats.p99_modeled_ms = modeled_merged.Quantile(0.99);
  stats.p50_wall_ms = wall_merged.Quantile(0.50);
  stats.p95_wall_ms = wall_merged.Quantile(0.95);
  stats.p99_wall_ms = wall_merged.Quantile(0.99);
  // Registry gauges ride along with every snapshot: atomic stores, so the
  // const promise (and thread-safety) of Snapshot() holds.
  metric_queue_depth_->Set(static_cast<double>(stats.jobs_queued));
  metric_jobs_running_->Set(static_cast<double>(stats.jobs_running));
  metric_uptime_ms_->Set(stats.uptime_ms);
  metric_jobs_per_sec_->Set(stats.jobs_per_sec);
  // Dropped-span totals per sink.  The sources are absolute (and the
  // global ring's resets on every trace::Start()), so publish deltas
  // against the last-seen mirrors — counters must only ever go up.
  {
    const uint64_t global_now = trace::GlobalDropped();
    if (global_now < published_trace_dropped_global_) {
      published_trace_dropped_global_ = 0;  // ring restarted
    }
    metric_trace_dropped_global_->Increment(global_now -
                                            published_trace_dropped_global_);
    published_trace_dropped_global_ = global_now;
    const uint64_t session_now =
        trace_collector_ ? trace_collector_->dropped() : 0;
    if (session_now >= published_trace_dropped_session_) {
      metric_trace_dropped_session_->Increment(
          session_now - published_trace_dropped_session_);
      published_trace_dropped_session_ = session_now;
    }
    const uint64_t capture_now =
        capture_dropped_total_.load(std::memory_order_relaxed);
    metric_trace_dropped_capture_->Increment(capture_now -
                                             published_trace_dropped_capture_);
    published_trace_dropped_capture_ = capture_now;
  }
  for (const auto& worker : workers_) {
    prof::DeviceStats d;
    d.name = worker->arch_name;
    d.vendor = worker->slot.arch->vendor;
    d.jobs_completed = worker->jobs_completed;
    d.jobs_failed = worker->jobs_failed;
    d.jobs_rejected = worker->jobs_rejected;
    d.busy_wall_ms = worker->busy_wall_ms;
    d.modeled_ms = worker->modeled_ms;
    // Clamped: busy time is measured with a different clock granularity
    // than uptime, so the raw ratio can poke past 1.0 on short windows.
    d.utilization =
        stats.uptime_ms >= kMinUptimeMs
            ? std::clamp(worker->busy_wall_ms / stats.uptime_ms, 0.0, 1.0)
            : 0;
    worker->metrics.busy_wall_ms->Set(worker->busy_wall_ms);
    worker->metrics.utilization->Set(d.utilization);
    d.memory_capacity_bytes = worker->memory_capacity_bytes;
    d.cache_hits = worker->cache_hits;
    d.cache_misses = worker->cache_misses;
    d.cache_evictions = worker->cache_evictions;
    d.cache_bytes_evicted = worker->cache_bytes_evicted;
    d.cache_resident_bytes = worker->cache_resident_bytes;
    d.cache_stale_invalidated = worker->cache_stale_invalidated;
    d.gang_jobs = worker->gang_jobs;
    d.exchange_bytes = worker->exchange_bytes;
    d.exchange_rounds = worker->exchange_rounds;
    stats.cache_hits += d.cache_hits;
    stats.cache_misses += d.cache_misses;
    stats.cache_evictions += d.cache_evictions;
    stats.cache_bytes_evicted += d.cache_bytes_evicted;
    stats.cache_resident_bytes += d.cache_resident_bytes;
    stats.cache_stale_invalidated += d.cache_stale_invalidated;
    stats.gang_jobs_completed += d.gang_jobs;
    stats.exchange_bytes_total += d.exchange_bytes;
    stats.exchange_rounds_total += d.exchange_rounds;
    stats.devices.push_back(std::move(d));
  }
  // Tenant table — only when tenancy is in play; an all-anonymous run keeps
  // the pre-tenancy report output byte-for-byte.
  if (!(tenants_.size() == 1 && tenants_.begin()->first.empty())) {
    for (const auto& [name, t] : tenants_) {
      prof::TenantStats ts;
      ts.name = name.empty() ? "-" : name;
      ts.priority = t.priority;
      ts.jobs_submitted = t.submitted;
      ts.jobs_completed = t.completed;
      ts.jobs_failed = t.failed;
      ts.jobs_rejected = t.rejected;
      ts.jobs_shed_deadline = t.shed_deadline;
      ts.queue_wait_ms_total = t.queue_wait_ms_total;
      stats.tenants.push_back(std::move(ts));
    }
  }
  return stats;
}

std::map<std::string, double> Scheduler::PollMetrics() {
  // Snapshot() refreshes the registry gauges as a side effect, so the
  // sampler's scrape right after this call sees current values.
  prof::ServerStats stats = Snapshot();
  std::map<std::string, double> values;
  values["queue_depth"] = static_cast<double>(stats.jobs_queued);
  values["jobs_running"] = static_cast<double>(stats.jobs_running);
  values["jobs_per_sec"] = stats.jobs_per_sec;
  values["jobs_failed"] = static_cast<double>(stats.jobs_failed);
  values["jobs_shed"] = static_cast<double>(stats.jobs_shed_deadline);
  values["p95_latency_ms"] = stats.p95_wall_ms;
  values["p95_modeled_ms"] = stats.p95_modeled_ms;
  // Alert-rule input for trace-drop monitoring (see the sample rule in
  // README.md): total spans lost across all sinks so far.
  values["trace_dropped_spans"] =
      static_cast<double>(trace::GlobalDropped() +
                          (trace_collector_ ? trace_collector_->dropped() : 0) +
                          capture_dropped_total_.load(std::memory_order_relaxed));
  double utilization = 0;
  for (const prof::DeviceStats& d : stats.devices) {
    utilization += d.utilization;
  }
  values["utilization"] =
      stats.devices.empty() ? 0 : utilization / stats.devices.size();
  // Published only once there is evidence: a `cache_hit_ratio < R` rule
  // must not fire on an idle pool that has served nothing yet.
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  if (lookups > 0) {
    values["cache_hit_ratio"] =
        static_cast<double>(stats.cache_hits) / static_cast<double>(lookups);
  }
  return values;
}

std::vector<obs::SampleBatch> Scheduler::MetricsBatches() const {
  if (!sampler_) return {};
  return sampler_->Batches();
}

std::vector<obs::AlertEvent> Scheduler::MetricsAlertLog() const {
  if (!sampler_) return {};
  return sampler_->AlertLog();
}

uint64_t Scheduler::MetricsDropped() const {
  return sampler_ ? sampler_->dropped() : 0;
}

Status Scheduler::WriteMetrics(const std::string& path,
                               obs::ExportFormat format) const {
  if (!sampler_) {
    return Status::Unavailable(
        "metrics sampling is disabled (Options::metrics.enabled)");
  }
  return sampler_->WriteTo(path, format);
}

}  // namespace adgraph::serve
