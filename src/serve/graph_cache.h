#ifndef ADGRAPH_SERVE_GRAPH_CACHE_H_
#define ADGRAPH_SERVE_GRAPH_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "core/residency.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::serve {

/// \brief Per-device graph residency cache (DESIGN.md §2.6): a
/// content-keyed map from (graph fingerprint, mutation epoch, variant) to
/// an uploaded DeviceCsr, so repeated jobs over the same graph skip the
/// host-side variant build *and* the modeled PCIe upload.
///
/// The epoch component exists for dynamic graphs (§2.12): DeltaGraph
/// snapshots share one *family* fingerprint across mutations and carry the
/// version in mutation_epoch(), so without the epoch in the key a resident
/// copy of version k would silently satisfy a job holding version k+1.
/// Static graphs are epoch 0 forever and behave exactly as before.
///
/// Ownership and threading mirror the device itself: each serve::Scheduler
/// worker constructs one GraphCache beside its vgpu::Device on the worker
/// thread, and the cache never escapes that thread — no internal locking.
///
/// Entries are ref-count pinned while a job reads them (ResidentCsr RAII)
/// and evicted LRU-first under memory pressure, either when an insertion
/// exceeds the cache budget or when admission control calls EvictForSpace
/// to admit a job that would not otherwise fit.  Pinned entries are never
/// evicted.
///
/// Correctness bar: every cached DeviceCsr equals BuildHostVariant(base,
/// variant) uploaded via DeviceCsr::Upload, and every variant is a
/// deterministic function of the base graph — so job results are
/// byte-identical with the cache on or off.
class GraphCache final : public core::GraphResidency {
 public:
  struct Options {
    /// Off = every Acquire degrades to a one-shot owned upload (the
    /// pre-cache behavior); stats stay zero.
    bool enabled = true;
    /// Cache budget in device bytes.  0 = derive from capacity_fraction.
    uint64_t capacity_bytes = 0;
    /// Budget as a fraction of device RAM, used when capacity_bytes == 0.
    double capacity_fraction = 0.5;
    /// Entry-count cap (0 disables caching outright).
    size_t max_entries = 64;
  };

  struct Stats {
    uint64_t hits = 0;            ///< Acquire served from residency
    uint64_t misses = 0;          ///< Acquire built + uploaded
    uint64_t evictions = 0;       ///< entries evicted
    uint64_t bytes_evicted = 0;   ///< device bytes freed by eviction
    uint64_t resident_bytes = 0;  ///< device bytes currently cached
    uint64_t stale_invalidated = 0;  ///< entries dropped by Invalidate()
  };

  /// `device` must outlive the cache (both are worker-thread locals, the
  /// cache declared after — thus destroyed before — the device).
  GraphCache(vgpu::Device* device, Options options);
  ~GraphCache() override;

  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// core::GraphResidency: returns `variant` of `base` resident on the
  /// worker's device, pinned until the handle drops.  Hit = pin the cached
  /// entry (no host work, no transfer); miss = build + upload, then insert
  /// (evicting LRU unpinned entries to fit the budget) unless the upload
  /// exceeds the whole budget or everything else is pinned, in which case
  /// the upload is handed back as a one-shot owned copy.
  Result<core::ResidentCsr> Acquire(vgpu::Device* device,
                                    const graph::CsrGraph& base,
                                    core::GraphVariant variant) override;

  /// Pins (base, variant) if it is already resident; empty handle
  /// otherwise.  Counts neither a hit nor a miss — the scheduler uses this
  /// *before* admission control so eviction-for-space can never evict the
  /// graph the about-to-run job needs.
  core::ResidentCsr PinIfResident(const graph::CsrGraph& base,
                                  core::GraphVariant variant);

  /// Device bytes already resident for (base, variant); 0 when absent.
  /// Admission control subtracts this from the job's working-set charge.
  uint64_t ResidentBytesFor(const graph::CsrGraph& base,
                            core::GraphVariant variant) const;

  /// Evicts unpinned entries, least recently used first, until at least
  /// `bytes` of device memory have been freed or only pinned entries
  /// remain.  Returns the bytes actually freed.
  uint64_t EvictForSpace(uint64_t bytes);

  /// Drops every cached variant of `fingerprint` whose epoch is older than
  /// `keep_min_epoch` (default: all epochs).  With the epoch in the key
  /// stale entries can never be *served*; this frees their device memory
  /// eagerly after a mutation instead of waiting for LRU pressure.  Pinned
  /// entries are doomed — unservable immediately, erased when the last
  /// in-flight reader unpins.  Emits a `cache.stale_invalidate` trace span
  /// and counts into stats().stale_invalidated.  Returns entries dropped
  /// or doomed.
  uint64_t Invalidate(uint64_t fingerprint,
                      uint64_t keep_min_epoch = ~uint64_t{0});

  bool enabled() const { return options_.enabled; }
  /// Effective budget (capacity_bytes, or the fraction of device RAM).
  uint64_t capacity_bytes() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  size_t num_entries() const { return entries_.size(); }

 private:
  /// (fingerprint, mutation epoch, variant) — identity-free, so two
  /// JobSpecs sharing a graph's *content* (same fingerprint and epoch)
  /// share its residency, while successive versions of a mutable graph
  /// never collide.
  using Key = std::tuple<uint64_t, uint64_t, uint8_t>;

  struct Entry {
    std::shared_ptr<const core::DeviceCsr> csr;
    uint64_t bytes = 0;      ///< device bytes of the upload (aligned)
    uint64_t last_used = 0;  ///< LRU clock stamp
    uint32_t pins = 0;       ///< outstanding ResidentCsr handles
    bool doomed = false;     ///< invalidated while pinned; erase on unpin
  };

  static Key KeyFor(const graph::CsrGraph& base, core::GraphVariant variant) {
    return Key{core::FingerprintCsr(base), base.mutation_epoch(),
               static_cast<uint8_t>(variant)};
  }

  core::ResidentCsr PinEntry(const Key& key, Entry& entry);
  void EraseEntry(std::map<Key, Entry>::iterator it);

  vgpu::Device* device_;
  Options options_;
  uint64_t capacity_ = 0;
  Stats stats_;
  uint64_t use_clock_ = 0;
  std::map<Key, Entry> entries_;
};

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_GRAPH_CACHE_H_
