#ifndef ADGRAPH_SERVE_JOB_H_
#define ADGRAPH_SERVE_JOB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>

#include "core/api.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "part/partition.h"
#include "prof/metrics.h"
#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/interconnect.h"

namespace adgraph::serve {

/// The serving layer dispatches exactly the algorithm set behind the
/// uniform `core::Run` entry point; these aliases keep the historical
/// serve-layer names working (serve::Algorithm::kBfs, serve::JobParams,
/// ...) while the definitions live in core/api.h.
using Algorithm = core::Algo;

/// Lower-case wire/CLI name ("bfs", "pagerank", "esbv", "bc", ...) and its
/// inverse (kNotFound for unknown names) — the core/api.h functions,
/// re-exported under their historical serve:: names.
using core::AlgorithmName;
using core::ParseAlgorithm;

/// Per-algorithm request parameters.  The variant alternative *is* the
/// algorithm selection: constructing a JobSpec with core::TcOptions makes
/// it a triangle-count job.  Alternative order matches enum Algorithm
/// (static_asserted in core/api.cc).
using JobParams = core::Params;

/// Per-algorithm result payload, same alternative order as JobParams.
using JobPayload = core::AlgoResult;

/// \brief One graph-analytics request: which algorithm with which
/// parameters on which graph, optionally pinned to one architecture.
///
/// The graph is shared (read-only) between jobs and workers — the host-side
/// CsrGraph is immutable after construction, so concurrent uploads from
/// multiple workers are safe.
struct JobSpec {
  std::shared_ptr<const graph::CsrGraph> graph;
  JobParams params;
  /// "" = any device; otherwise an arch name from the pool ("A100", ...).
  std::string arch_preference = {};
  /// Free-form caller label echoed in the outcome (batch line number,
  /// request id, ...).
  std::string tag = {};
  /// Multi-tenant QoS (DESIGN.md §2.10).  "" = the anonymous tenant: one
  /// shared accounting bucket, the pre-tenancy behavior.
  std::string tenant = {};
  /// Priority class: lower runs first.  Workers never dequeue a class-1 job
  /// while a runnable class-0 job is queued (strict priority between
  /// classes; weighted fair share *within* a class).
  uint32_t priority = 0;
  /// Fair-share weight within the priority class: a tenant with weight 2
  /// dequeues twice as often as a weight-1 tenant when both are backlogged.
  /// Values <= 0 are treated as 1.
  double fair_weight = 1.0;
  /// Deadline budget, milliseconds from Submit().  When > 0 and the job's
  /// queue-wait alone already exceeds it at dequeue time, the job is shed
  /// with kDeadlineExceeded instead of occupying a device.  0 = no deadline.
  double deadline_ms = 0;
  /// Gang execution (DESIGN.md §2.7): > 1 runs the job on a partitioned
  /// engine of this many simulated devices of the executing worker's arch.
  /// The scheduler reserves that many worker slots for the job's duration.
  /// Only BFS (without compute_parents) and PageRank support gangs; other
  /// algorithms fail validation.
  uint32_t gang_devices = 1;
  /// Link model of the gang's interconnect (ignored when gang_devices <= 1).
  vgpu::InterconnectConfig gang_interconnect = vgpu::NvlinkPreset();
  /// How the gang shards the vertex range.
  part::PartitionStrategy gang_strategy = part::PartitionStrategy::kUniform;
  // --- Out-of-core streaming (DESIGN.md §2.13) --------------------------
  /// When true and the algorithm has a streamed path (BFS without parents,
  /// PageRank), a job whose whole-graph working set fails admission is
  /// admitted anyway iff the streamed working set — O(n) iteration state
  /// plus two staging slots — fits, and runs via ooc::RunStreamed with
  /// byte-identical results.  Evict-to-admit thereby becomes a
  /// device<->host<->disk tiering decision instead of a hard reject.
  bool allow_streamed = false;
  /// Per staging slot byte budget of the streamed path (0 = ooc default).
  uint64_t ooc_shard_bytes = 0;
  // --- Incremental recompute (DESIGN.md §2.12) --------------------------
  /// Warm start: when set (together with `delta`), the worker runs
  /// core::RunIncremental from this previous result — computed when the
  /// graph was at `previous_version` — instead of a cold full run.  The
  /// path actually taken (incremental, or one of the documented fallbacks
  /// to full recompute) is reported in JobOutcome::{incremental,
  /// fallback_reason} and counted by adgraph_incremental_fallbacks_total.
  std::shared_ptr<const JobPayload> warm_start = nullptr;
  uint64_t previous_version = 0;
  /// The mutable graph the delta path re-expands over; must outlive the
  /// job.  Required (with `delta_mutex`) when warm_start is set.
  graph::DeltaGraph* delta = nullptr;
  /// Held around delta access — the front door's per-graph mutation mutex,
  /// so warm-started jobs serialize against concurrent MUTATEs.  May be
  /// null when the caller guarantees no concurrent mutation.
  std::mutex* delta_mutex = nullptr;
  // --- Trace context (DESIGN.md §2.14) ----------------------------------
  /// One id per submission, minted at the outermost layer (client/CLI, or
  /// the net server for requests that did not carry one).  Stamped on
  /// every span the job emits, echoed on the outcome and the wire.
  /// 0 = the scheduler mints one at Submit().
  uint64_t trace_id = 0;
  /// The id the *front door* handed the caller (the net server's
  /// per-connection counter).  Distinct from the scheduler's job_id —
  /// both are stamped on spans so either can be correlated.  0 = none
  /// (in-process submission).
  uint64_t wire_job_id = 0;
  /// When set, every span the job emits (wire, queue, admission, engine
  /// rounds, kernels) is also appended here — the flight recorder's and
  /// INSPECT's source of the per-job span tree.  Capturing works even
  /// when no global trace window is open.
  std::shared_ptr<trace::SpanCapture> capture;

  Algorithm algorithm() const {
    return static_cast<Algorithm>(params.index());
  }
};

/// \brief Everything the pool reports back for one job.  Delivered through
/// the future returned by Scheduler::Submit — including failures: a
/// rejected or failed job resolves its future with a non-OK `status`
/// instead of breaking the pool.
struct JobOutcome {
  uint64_t job_id = 0;
  /// Trace context the job ran under (DESIGN.md §2.14): the propagated (or
  /// scheduler-minted) trace id and the front door's wire job id (0 for
  /// in-process submissions).  job_id above is the scheduler's id.
  uint64_t trace_id = 0;
  uint64_t wire_job_id = 0;
  std::string tag;
  /// OK, or why the job did not produce a payload: kResourceExhausted from
  /// admission control (estimated working set exceeds device RAM) or a
  /// mid-run device OOM, kInvalidArgument for bad parameters, etc.
  Status status;
  /// Valid iff status.ok().
  JobPayload payload;
  std::string device_name;        ///< arch that executed (or rejected) it
  double modeled_ms = 0;          ///< modeled device kernel time of the job
  /// Modeled host<->device (PCIe) transfer time of the job.  A residency
  /// cache hit makes this collapse: the staged graph was already on the
  /// device, so only the result readback transfers.
  double modeled_transfer_ms = 0;
  double queue_wall_ms = 0;       ///< host wall time spent waiting in queue
  double exec_wall_ms = 0;        ///< host wall time resident on the device
  uint64_t estimated_bytes = 0;   ///< admission-control working-set estimate
  /// True when the job's staged graph was served from the worker's
  /// residency cache rather than built + uploaded.
  bool cache_hit = false;
  /// Aggregated kernel profile of exactly this job's launches.
  prof::AlgoProfile profile;
  /// Compact Table 6–style attribution of the same window (derived ratios
  /// plus top kernels by cycles) — what POLL serializes under "profile"
  /// and the adgraph_job_* histograms observe.  Populated iff status.ok()
  /// and the pool's job_profiles option is on (the default).
  prof::JobProfile job_profile;
  // --- Gang execution (gang_devices > 1 in the spec) --------------------
  uint32_t gang_devices = 1;      ///< devices the job actually ran on
  uint64_t exchange_bytes = 0;    ///< peer bytes moved over the interconnect
  uint64_t exchange_rounds = 0;   ///< bulk-synchronous exchange rounds
  double exchange_ms = 0;         ///< modeled interconnect time
  // --- Out-of-core streaming (spec.allow_streamed) ----------------------
  /// True when the job ran via the double-buffered streamed path after the
  /// whole-graph working set failed admission.
  bool streamed = false;
  uint32_t ooc_shards = 0;         ///< shards in the byte-bounded plan
  uint64_t ooc_staged_bytes = 0;   ///< host->device bytes streamed
  /// Modeled serialized-staging makespan over the double-buffered one.
  double ooc_overlap_speedup = 0;
  // --- Incremental recompute (spec.warm_start) --------------------------
  bool incremental_requested = false;
  bool incremental = false;        ///< the delta path ran on the device
  /// Why full recompute ran instead ("" when the delta path ran).
  std::string fallback_reason;
  /// Delta version the payload corresponds to (warm-started jobs compute
  /// on the delta's snapshot at execution time, which may be newer than
  /// the one published at submit).
  uint64_t result_version = 0;
};

/// Modeled device time carried inside the payload (the per-algorithm
/// `time_ms` field).
double PayloadTimeMs(const JobPayload& payload);

/// Order-sensitive FNV-1a digest of the payload's *result content* (levels,
/// distances, ranks, counts, subgraph arrays, ...; modeled times excluded).
/// Two runs of the same job are byte-identical iff the fingerprints match —
/// the serial-vs-concurrent equivalence check of the tests and the
/// throughput bench.
uint64_t FingerprintPayload(const JobPayload& payload);

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_JOB_H_
