#include "serve/job.h"

#include <cmath>
#include <cstring>
#include <type_traits>

namespace adgraph::serve {

namespace {

// JobParams / JobPayload alternatives must line up with enum Algorithm:
// JobSpec::algorithm() is the variant index.
template <typename Variant, Algorithm A, typename T>
constexpr bool AlternativeMatches() {
  return std::is_same_v<std::variant_alternative_t<static_cast<size_t>(A),
                                                   Variant>,
                        T>;
}
static_assert(AlternativeMatches<JobParams, Algorithm::kBfs,
                                 core::BfsOptions>());
static_assert(AlternativeMatches<JobParams, Algorithm::kEsbv,
                                 core::EsbvOptions>());
static_assert(AlternativeMatches<JobPayload, Algorithm::kBfs,
                                 core::BfsResult>());
static_assert(AlternativeMatches<JobPayload, Algorithm::kEsbv,
                                 core::EsbvResult>());
static_assert(AlternativeMatches<JobParams, Algorithm::kBetweenness,
                                 core::BcOptions>());
static_assert(AlternativeMatches<JobPayload, Algorithm::kBetweenness,
                                 core::BcResult>());
static_assert(std::variant_size_v<JobParams> ==
              std::variant_size_v<JobPayload>);

/// Incremental FNV-1a over raw bytes.  Doubles are hashed via their bit
/// pattern, so "byte-identical" means exactly that.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void Value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&v, sizeof(v));
  }
  template <typename T>
  void Vector(const std::vector<T>& v) {
    Value<uint64_t>(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(T));
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

double PayloadTimeMs(const JobPayload& payload) {
  return core::ResultTimeMs(payload);
}

uint64_t FingerprintPayload(const JobPayload& payload) {
  Fnv1a h;
  h.Value<uint64_t>(payload.index());
  std::visit(
      [&h](const auto& r) {
        using R = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<R, core::BfsResult>) {
          h.Vector(r.levels);
          h.Vector(r.parents);
          h.Value(r.depth);
          h.Value(r.vertices_visited);
        } else if constexpr (std::is_same_v<R, core::SsspResult>) {
          h.Vector(r.distances);
          h.Value(r.rounds);
        } else if constexpr (std::is_same_v<R, core::PageRankResult>) {
          h.Vector(r.ranks);
          h.Value(r.iterations);
        } else if constexpr (std::is_same_v<R, core::TcResult>) {
          h.Value(r.triangles);
          h.Value(r.oriented_edges);
        } else if constexpr (std::is_same_v<R, core::CcResult>) {
          h.Vector(r.labels);
          h.Value(r.num_components);
        } else if constexpr (std::is_same_v<R, core::KCoreResult>) {
          h.Vector(r.in_core);
          h.Value(r.core_size);
        } else if constexpr (std::is_same_v<R, core::JaccardResult>) {
          h.Vector(r.coefficients);
        } else if constexpr (std::is_same_v<R, core::WidestPathResult>) {
          h.Vector(r.widths);
          h.Value(r.rounds);
        } else if constexpr (std::is_same_v<R, core::ColoringResult>) {
          h.Vector(r.colors);
          h.Value(r.num_colors);
        } else if constexpr (std::is_same_v<R, core::EsbvResult>) {
          h.Value<uint32_t>(r.subgraph.num_vertices());
          h.Vector(r.subgraph.row_offsets());
          h.Vector(r.subgraph.col_indices());
          h.Vector(r.subgraph.weights());
        } else if constexpr (std::is_same_v<R, core::BcResult>) {
          h.Vector(r.centrality);
          h.Vector(r.sigma);
          h.Value(r.depth);
        }
      },
      payload);
  return h.digest();
}

}  // namespace adgraph::serve
