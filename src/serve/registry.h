#ifndef ADGRAPH_SERVE_REGISTRY_H_
#define ADGRAPH_SERVE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/residency.h"
#include "serve/job.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::serve {

/// \brief One registry row: everything the scheduler needs to serve an
/// algorithm without knowing its concrete core/ signature.
///
/// `run` wraps the core entry point behind the uniform
/// `JobSpec -> Result<JobPayload>` shape; `estimate_device_bytes` is the
/// admission-control model of the job's peak device working set.
struct AlgorithmHandler {
  Algorithm algo;
  std::string_view name;

  /// Executes the job's algorithm on `device` (graph staging included) and
  /// returns the result payload.  Propagates core/ errors unchanged.  The
  /// residency provider is the worker's graph cache, or null for the
  /// upload-per-run behavior (results are byte-identical either way).
  std::function<Result<JobPayload>(vgpu::Device*, const JobSpec&,
                                   core::GraphResidency*)>
      run;

  /// The device-graph variant the algorithm stages (cache key half; for
  /// admission's residency discount and the scheduler's pre-admission pin).
  std::function<core::GraphVariant(const JobSpec&)> graph_variant;

  /// Conservative upper bound on the bytes of device memory the job will
  /// have live at its peak, mirroring the actual Alloc sequence of the
  /// core/ implementation (graph upload + working arrays + conservative
  /// intermediates).  Used by admission control: a job whose estimate
  /// exceeds device RAM is rejected with kResourceExhausted instead of
  /// being allowed to die mid-run with kOutOfMemory.
  std::function<uint64_t(const JobSpec&)> estimate_device_bytes;

  /// ESBV requires edge weights (paper §4.5); jobs on an unweighted graph
  /// are rejected up front with kInvalidArgument.
  bool requires_weights = false;
};

/// All registered algorithms, indexed by static_cast<size_t>(Algorithm).
const std::vector<AlgorithmHandler>& AlgorithmRegistry();

/// The handler of one algorithm.
const AlgorithmHandler& GetHandler(Algorithm algo);

/// Convenience: the registry's working-set estimate for `spec`.
uint64_t EstimateJobDeviceBytes(const JobSpec& spec);

/// Convenience: the device-graph variant `spec`'s algorithm will stage.
core::GraphVariant GraphVariantFor(const JobSpec& spec);

/// Validates a spec independent of any device: non-null non-empty graph,
/// source vertices in range, ESBV weight requirement.  The scheduler calls
/// this at Submit() so obviously-broken jobs fail fast.
Status ValidateJobSpec(const JobSpec& spec);

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_REGISTRY_H_
