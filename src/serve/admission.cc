#include "serve/admission.h"

#include <algorithm>

#include "serve/graph_cache.h"
#include "serve/registry.h"

namespace adgraph::serve {

AdmissionDecision CheckAdmission(const vgpu::Device& device,
                                 const JobSpec& spec, double headroom,
                                 GraphCache* cache) {
  AdmissionDecision decision;
  decision.capacity_bytes = device.memory_capacity_bytes();
  decision.available_bytes = device.memory_free_bytes();
  uint64_t estimate = EstimateJobDeviceBytes(spec);
  decision.estimated_bytes = estimate;
  if (cache != nullptr && cache->enabled()) {
    decision.resident_bytes =
        cache->ResidentBytesFor(*spec.graph, GraphVariantFor(spec));
  }
  // Charge only what the job will actually allocate: the resident graph is
  // already on the device (and already counted inside used_bytes).
  decision.charged_bytes =
      estimate - std::min<uint64_t>(decision.resident_bytes, estimate);
  uint64_t padded = static_cast<uint64_t>(
      static_cast<double>(decision.charged_bytes) *
      (headroom < 1.0 ? 1.0 : headroom));
  if (padded > decision.available_bytes && cache != nullptr &&
      cache->enabled()) {
    decision.evicted_bytes =
        cache->EvictForSpace(padded - decision.available_bytes);
    decision.available_bytes = device.memory_free_bytes();
  }
  if (padded > decision.available_bytes) {
    decision.admit = false;
    decision.reason =
        std::string(AlgorithmName(spec.algorithm())) +
        " working set ~" + std::to_string(decision.charged_bytes) +
        " bytes (" + std::to_string(estimate) + " estimated, " +
        std::to_string(decision.resident_bytes) + " resident) exceeds " +
        device.name() + " available memory (" +
        std::to_string(decision.available_bytes) + " of " +
        std::to_string(decision.capacity_bytes) + " bytes free)";
  } else {
    decision.admit = true;
  }
  return decision;
}

Status AdmissionError(const AdmissionDecision& decision) {
  return Status::ResourceExhausted("admission control: " + decision.reason);
}

}  // namespace adgraph::serve
