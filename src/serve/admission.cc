#include "serve/admission.h"

#include "serve/registry.h"

namespace adgraph::serve {

AdmissionDecision CheckAdmission(const vgpu::Device& device,
                                 const JobSpec& spec, double headroom) {
  AdmissionDecision decision;
  decision.capacity_bytes = device.memory_capacity_bytes();
  decision.available_bytes =
      decision.capacity_bytes - device.memory_used_bytes();
  uint64_t estimate = EstimateJobDeviceBytes(spec);
  decision.estimated_bytes = estimate;
  uint64_t padded = static_cast<uint64_t>(
      static_cast<double>(estimate) * (headroom < 1.0 ? 1.0 : headroom));
  if (padded > decision.available_bytes) {
    decision.admit = false;
    decision.reason =
        std::string(AlgorithmName(spec.algorithm())) +
        " working set ~" + std::to_string(estimate) + " bytes exceeds " +
        device.name() + " available memory (" +
        std::to_string(decision.available_bytes) + " of " +
        std::to_string(decision.capacity_bytes) + " bytes free)";
  } else {
    decision.admit = true;
  }
  return decision;
}

Status AdmissionError(const AdmissionDecision& decision) {
  return Status::ResourceExhausted("admission control: " + decision.reason);
}

}  // namespace adgraph::serve
