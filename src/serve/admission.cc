#include "serve/admission.h"

#include <algorithm>
#include <optional>

#include "ooc/ooc_csr.h"
#include "serve/graph_cache.h"
#include "serve/registry.h"

namespace adgraph::serve {
namespace {

/// The streamed working-set estimate for `spec`, or nullopt when the spec
/// is not eligible: streaming must be requested, and the algorithm must
/// have a streamed path (BFS without parents, PageRank).
std::optional<uint64_t> StreamedEstimate(const JobSpec& spec) {
  if (!spec.allow_streamed || spec.gang_devices > 1) return std::nullopt;
  if (spec.algorithm() == Algorithm::kBfs &&
      std::get<core::BfsOptions>(spec.params).compute_parents) {
    return std::nullopt;
  }
  auto estimate = ooc::EstimateStreamedBytes(
      spec.algorithm(), spec.graph->num_vertices(), spec.graph->has_weights(),
      spec.ooc_shard_bytes);
  if (!estimate.ok()) return std::nullopt;
  return *estimate;
}

}  // namespace

AdmissionDecision CheckAdmission(const vgpu::Device& device,
                                 const JobSpec& spec, double headroom,
                                 GraphCache* cache) {
  AdmissionDecision decision;
  decision.capacity_bytes = device.memory_capacity_bytes();
  decision.available_bytes = device.memory_free_bytes();
  uint64_t estimate = EstimateJobDeviceBytes(spec);
  decision.estimated_bytes = estimate;
  if (cache != nullptr && cache->enabled()) {
    decision.resident_bytes =
        cache->ResidentBytesFor(*spec.graph, GraphVariantFor(spec));
  }
  // Charge only what the job will actually allocate: the resident graph is
  // already on the device (and already counted inside used_bytes).
  decision.charged_bytes =
      estimate - std::min<uint64_t>(decision.resident_bytes, estimate);
  uint64_t padded = static_cast<uint64_t>(
      static_cast<double>(decision.charged_bytes) *
      (headroom < 1.0 ? 1.0 : headroom));
  if (padded > decision.available_bytes && cache != nullptr &&
      cache->enabled()) {
    decision.evicted_bytes =
        cache->EvictForSpace(padded - decision.available_bytes);
    decision.available_bytes = device.memory_free_bytes();
  }
  if (padded > decision.available_bytes) {
    // Whole-graph working set does not fit even after eviction.  Before
    // rejecting, try the out-of-core tier: the streamed path keeps only
    // O(n) iteration state plus two staging slots device-resident and
    // streams the adjacency from host (or disk) through them.
    if (auto streamed = StreamedEstimate(spec); streamed.has_value()) {
      uint64_t streamed_padded = static_cast<uint64_t>(
          static_cast<double>(*streamed) * (headroom < 1.0 ? 1.0 : headroom));
      if (streamed_padded <= decision.available_bytes) {
        decision.admit = true;
        decision.streamed = true;
        decision.streamed_bytes = *streamed;
        // What admission actually lets the job allocate: the streamed
        // working set, not the whole graph.  No residency discount — the
        // streamed path stages shards itself, bypassing the graph cache.
        decision.charged_bytes = *streamed;
        return decision;
      }
    }
    decision.admit = false;
    decision.reason =
        std::string(AlgorithmName(spec.algorithm())) +
        " working set ~" + std::to_string(decision.charged_bytes) +
        " bytes (" + std::to_string(estimate) + " estimated, " +
        std::to_string(decision.resident_bytes) + " resident) exceeds " +
        device.name() + " available memory (" +
        std::to_string(decision.available_bytes) + " of " +
        std::to_string(decision.capacity_bytes) + " bytes free)";
  } else {
    decision.admit = true;
  }
  return decision;
}

Status AdmissionError(const AdmissionDecision& decision) {
  return Status::ResourceExhausted("admission control: " + decision.reason);
}

}  // namespace adgraph::serve
