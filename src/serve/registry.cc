#include "serve/registry.h"

#include <algorithm>

namespace adgraph::serve {

namespace {

/// Device footprint of uploading a CSR graph as-is (DeviceCsr::Upload):
/// 64-bit row offsets, 32-bit column indices, FP64 weights when present.
uint64_t UploadBytes(uint64_t n, uint64_t m, bool weighted) {
  return (n + 1) * sizeof(graph::eid_t) + m * sizeof(graph::vid_t) +
         (weighted ? m * sizeof(graph::weight_t) : 0);
}

/// Footprint after host-side symmetrization (make_undirected at most
/// doubles the edge count; duplicates are removed, so this is an upper
/// bound).
uint64_t SymUploadBytes(uint64_t n, uint64_t m, bool weighted) {
  return UploadBytes(n, 2 * m, weighted);
}

template <typename Options>
const Options& Params(const JobSpec& spec) {
  return std::get<Options>(spec.params);
}

/// The uniform execution path: every handler dispatches through the
/// engine-backed `core::Run` entry point (src/engine/run.cc), so the serve
/// layer never touches a per-algorithm core/ signature.
Result<JobPayload> RunViaEngine(vgpu::Device* d, const JobSpec& s,
                                core::GraphResidency* res) {
  return core::Run(d, core::AlgoSpec{s.algorithm()}, *s.graph, s.params, res);
}

/// graph_variant for the algorithms whose staged layout doesn't depend on
/// the job parameters (everything except triangle counting).
std::function<core::GraphVariant(const JobSpec&)> Always(
    core::GraphVariant variant) {
  return [variant](const JobSpec&) { return variant; };
}

std::vector<AlgorithmHandler> BuildRegistry() {
  std::vector<AlgorithmHandler> reg(std::variant_size_v<JobParams>);
  auto add = [&reg](AlgorithmHandler h) {
    h.name = AlgorithmName(h.algo);
    reg[static_cast<size_t>(h.algo)] = std::move(h);
  };

  add({.algo = Algorithm::kBfs,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kAsIs),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             // levels + frontier + next frontier + parents + flag.
             return UploadBytes(n, g.num_edges(), g.has_weights()) + 16 * n +
                    256;
           }});

  add({.algo = Algorithm::kSssp,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kAsIs),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             // distances (f64) + two frontier masks + change flag.
             return UploadBytes(n, g.num_edges(), g.has_weights()) + 16 * n +
                    256;
           }});

  add({.algo = Algorithm::kPageRank,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kPullTranspose),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             // Normalized transpose (always weighted) + out-degree offsets
             // + two rank vectors + reduction cell.
             return UploadBytes(n, g.num_edges(), /*weighted=*/true) +
                    (n + 1) * sizeof(graph::eid_t) + 16 * n + 256;
           }});

  add({.algo = Algorithm::kTriangleCount,
       .name = {},
       .run = RunViaEngine,
       .graph_variant =
           [](const JobSpec& s) {
             return Params<core::TcOptions>(s).orient
                        ? core::GraphVariant::kTcOriented
                        : core::GraphVariant::kSymSimple;
           },
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             // Symmetrized (orient=false) or oriented-DAG (orient=true)
             // upload, unweighted either way, + the counter cell.  The
             // symmetrized bound covers both.
             return SymUploadBytes(g.num_vertices(), g.num_edges(),
                                   /*weighted=*/false) +
                    256;
           }});

  add({.algo = Algorithm::kConnectedComponents,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kSymSimple),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             return SymUploadBytes(n, g.num_edges(), /*weighted=*/false) +
                    4 * n + 256;
           }});

  add({.algo = Algorithm::kKCore,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kSymSimple),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             // degrees + membership + removal queue + flag.
             return SymUploadBytes(n, g.num_edges(), /*weighted=*/false) +
                    12 * n + 256;
           }});

  add({.algo = Algorithm::kJaccard,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kAsIs),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             return UploadBytes(g.num_vertices(), g.num_edges(),
                                g.has_weights()) +
                    g.num_edges() * sizeof(double) + 256;
           }});

  add({.algo = Algorithm::kWidestPath,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kAsIs),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             return UploadBytes(g.num_vertices(), g.num_edges(),
                                g.has_weights()) +
                    8 * static_cast<uint64_t>(g.num_vertices()) + 256;
           }});

  add({.algo = Algorithm::kColoring,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kSymSimple),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             return SymUploadBytes(n, g.num_edges(), /*weighted=*/false) +
                    4 * n + 256;
           }});

  add({.algo = Algorithm::kEsbv,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kCscWeighted),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             uint64_t m = g.num_edges();
             // The paper's capacity-killer (§4.4/§4.5): weighted CSC
             // upload (8n + 12m) plus the conservatively-sized extraction
             // intermediates — flag/renumber scans (~16n) and the COO
             // rebuild working set (~32m) — lands near 44 bytes/edge.
             return UploadBytes(n, m, /*weighted=*/true) + 16 * n + 32 * m +
                    256;
           },
       .requires_weights = true});

  add({.algo = Algorithm::kBetweenness,
       .name = {},
       .run = RunViaEngine,
       .graph_variant = Always(core::GraphVariant::kSymSimple),
       .estimate_device_bytes =
           [](const JobSpec& s) {
             const auto& g = *s.graph;
             uint64_t n = g.num_vertices();
             // levels (4n) + sigma/delta (8n each) + two engine frontiers
             // (queue + flags, 8n each) + count cells.
             return SymUploadBytes(n, g.num_edges(), /*weighted=*/false) +
                    36 * n + 256;
           }});

  return reg;
}

}  // namespace

const std::vector<AlgorithmHandler>& AlgorithmRegistry() {
  static const std::vector<AlgorithmHandler>* registry =
      new std::vector<AlgorithmHandler>(BuildRegistry());
  return *registry;
}

const AlgorithmHandler& GetHandler(Algorithm algo) {
  return AlgorithmRegistry()[static_cast<size_t>(algo)];
}

uint64_t EstimateJobDeviceBytes(const JobSpec& spec) {
  return GetHandler(spec.algorithm()).estimate_device_bytes(spec);
}

core::GraphVariant GraphVariantFor(const JobSpec& spec) {
  return GetHandler(spec.algorithm()).graph_variant(spec);
}

Status ValidateJobSpec(const JobSpec& spec) {
  if (spec.graph == nullptr) {
    return Status::InvalidArgument("job has no graph");
  }
  if (spec.graph->num_vertices() == 0) {
    return Status::InvalidArgument("job graph is empty");
  }
  const AlgorithmHandler& handler = GetHandler(spec.algorithm());
  if (handler.requires_weights && !spec.graph->has_weights()) {
    return Status::InvalidArgument(
        std::string(handler.name) +
        " requires edge weights (attach them with WithUniformWeights or "
        "graph::AttachRandomWeights before submitting)");
  }
  if (spec.gang_devices > 1) {
    const Algorithm algo = spec.algorithm();
    if (algo != Algorithm::kBfs && algo != Algorithm::kPageRank) {
      return Status::InvalidArgument(
          "gang execution supports bfs and pagerank, not " +
          std::string(handler.name));
    }
    if (algo == Algorithm::kBfs &&
        std::get<core::BfsOptions>(spec.params).compute_parents) {
      return Status::InvalidArgument(
          "gang bfs does not produce parents (partitioned traversal "
          "reports levels only)");
    }
    ADGRAPH_RETURN_NOT_OK(
        vgpu::ValidateInterconnectConfig(spec.gang_interconnect));
  }
  if (spec.warm_start != nullptr) {
    if (spec.delta == nullptr) {
      return Status::InvalidArgument(
          "incremental warm start requires the mutable graph's delta");
    }
    if (spec.gang_devices > 1) {
      return Status::InvalidArgument(
          "incremental warm start does not compose with gang execution");
    }
    if (spec.warm_start->index() != spec.params.index()) {
      return Status::InvalidArgument(
          "warm-start payload is from a different algorithm than the job");
    }
  }
  return Status::OK();
}

}  // namespace adgraph::serve
