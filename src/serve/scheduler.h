#ifndef ADGRAPH_SERVE_SCHEDULER_H_
#define ADGRAPH_SERVE_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/sampler.h"
#include "prof/server_stats.h"
#include "serve/flight_recorder.h"
#include "serve/graph_cache.h"
#include "serve/job.h"
#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::serve {

/// \brief Thread-pool-backed job scheduler over a pool of simulated
/// devices — the layer that turns the kernel library into an analytics
/// service (Gunrock/Groute-style dispatch, DESIGN.md §2.4).
///
/// Concurrency model: one worker thread per device slot; each worker
/// *exclusively owns* its vgpu::Device (constructed on the worker thread),
/// so the single-threaded device simulator never sees concurrent calls.
/// Jobs cross threads only as immutable JobSpec values in and JobOutcome
/// values out, through a bounded, mutex-protected queue.
///
/// Lifecycle: Create() spins up the workers; the destructor (or Shutdown())
/// drains nothing — queued jobs are resolved with an error; call Drain()
/// first to finish outstanding work.
class Scheduler {
 public:
  /// One device slot = one worker thread owning one simulated GPU.
  struct DeviceSlot {
    const vgpu::ArchConfig* arch = nullptr;
    vgpu::Device::Options options;
  };

  /// What Submit() does when the bounded queue is full.
  enum class OverflowPolicy {
    kBlock,   ///< block the submitter until space frees up (backpressure)
    kReject,  ///< fail the Submit() with kResourceExhausted immediately
  };

  struct Options {
    /// Device pool; empty = one device per paper GPU (Z100, V100, Z100L,
    /// A100 — Table 3 order).
    std::vector<DeviceSlot> devices;
    /// Bounded submission queue capacity (jobs waiting, not running).
    size_t queue_capacity = 64;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Admission-control estimate multiplier (>1 = more conservative).
    double admission_headroom = 1.0;
    /// Emulated device occupancy: each job holds its device for at least
    /// this many wall milliseconds (the host worker sleeps out the
    /// remainder, as a host thread waiting on a real asynchronous GPU
    /// would).  0 = off.  Throughput experiments use this so wall-clock
    /// scaling reflects device-pool parallelism rather than the host cost
    /// of functional simulation (EXPERIMENTS.md; the simulator burns host
    /// CPU where real hardware would idle the host).
    double device_occupancy_floor_ms = 0;
    /// Per-worker graph residency cache (DESIGN.md §2.6).  Each worker
    /// owns one GraphCache beside its device; disable via `cache.enabled`
    /// for the upload-per-run behavior (results are byte-identical either
    /// way).
    GraphCache::Options cache;
    /// Per-session tracing: when `trace.enabled`, the scheduler attaches a
    /// private trace::Collector for its lifetime and — if `trace.path` is
    /// non-empty — writes the Chrome trace-event JSON there at Shutdown().
    /// Spans land on one track per worker thread (queue-wait / job /
    /// admission) plus one per device (kernels, memcpys, algorithm phases).
    trace::TraceOptions trace;
    /// Live metrics (DESIGN.md §2.9).  The labeled registry is always on —
    /// worker-side updates are relaxed atomics, and the latency histograms
    /// double as the ServerStats percentile source — but the background
    /// sampler thread, its time-series ring, the alert-rule engine and the
    /// shutdown export only exist when `metrics.enabled`.
    obs::SamplerOptions metrics;
    /// Per-job deep observability (DESIGN.md §2.14).  When on (the
    /// default), every completed job's kernel window is aggregated into a
    /// compact prof::JobProfile on its JobOutcome and rolled into the
    /// adgraph_job_* histograms.  The off switch exists for the throughput
    /// bench's overhead gate, not for production.
    bool job_profiles = true;
    /// Slow-job flight recorder: retains the K worst jobs per trigger
    /// class (latency / non-OK status / alert firing) with their full span
    /// tree and JobProfile — see FlightRecorder::Options.
    FlightRecorder::Options flight_recorder;
  };

  /// Builds the pool and starts one worker per device.  Fails on an empty
  /// effective pool or duplicate-free nonsense like a null arch.
  static Result<std::unique_ptr<Scheduler>> Create(Options options);

  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits a job.  On success the future resolves with the job's
  /// JobOutcome — *always*, even when the job itself fails or is rejected
  /// by admission control (outcome.status carries the verdict).
  ///
  /// Submit itself fails only for malformed specs (kInvalidArgument,
  /// including a gang larger than the pool), an arch preference naming no
  /// pooled device (kNotFound), a full queue under OverflowPolicy::kReject
  /// (kResourceExhausted), or a shut-down pool (kUnavailable) — the last
  /// deterministically, whether the shutdown happened before Submit or
  /// while Submit was blocked waiting for queue space.
  Result<std::future<JobOutcome>> Submit(JobSpec spec);

  /// Blocks until every accepted job has completed and the queue is empty.
  void Drain();

  /// Asks every worker to drop cached residency for `fingerprint` (all
  /// epochs older than `keep_min_epoch`).  Caches are worker-thread-owned,
  /// so the request is queued here and each worker applies it on its own
  /// thread before dequeuing its next job — i.e. any job submitted after
  /// this call observes the invalidation.  The net front door calls this
  /// with the mutated graph's family fingerprint after a MUTATE.
  void InvalidateResidency(uint64_t fingerprint,
                           uint64_t keep_min_epoch = ~uint64_t{0});

  /// Stops the workers: waits for in-flight jobs, fails the still-queued
  /// ones with kUnavailable.  Idempotent; the destructor calls it.
  void Shutdown();

  /// Point-in-time statistics snapshot (thread-safe).
  prof::ServerStats Snapshot() const;

  /// Spans collected by the session sink so far (oldest first); empty when
  /// Options::trace was disabled or after Shutdown().  Thread-safe.
  std::vector<trace::TraceEvent> TraceEvents() const;

  /// The live metric registry (always populated: per-worker job/cache/
  /// kernel-counter series, latency histograms, build_info).  Thread-safe
  /// to Scrape() at any time; gauges are refreshed by Snapshot(), so call
  /// that first for up-to-the-instant gauge values.
  const obs::Registry& metrics_registry() const { return registry_; }
  /// Mutable registry access for co-located layers (the net front door
  /// registers its per-tenant session/quota series here so one scrape
  /// covers the whole service).  Same thread-safety as the const accessor.
  obs::Registry* mutable_metrics_registry() { return &registry_; }

  /// Time-series batches collected by the sampler, oldest first; empty
  /// when Options::metrics was disabled.  Thread-safe.
  std::vector<obs::SampleBatch> MetricsBatches() const;
  /// Alert transitions since startup, in firing order.  Thread-safe.
  std::vector<obs::AlertEvent> MetricsAlertLog() const;
  /// Sample batches overwritten by the bounded ring.
  uint64_t MetricsDropped() const;
  /// On-demand export of the sampled series (kUnavailable when metrics
  /// sampling is disabled; Shutdown() also writes Options::metrics.path).
  Status WriteMetrics(const std::string& path, obs::ExportFormat format) const;

  size_t num_workers() const { return workers_.size(); }
  /// Arch names of the pooled devices, worker order.
  std::vector<std::string> device_names() const;

  /// The slow-job flight recorder (always constructed; inert when
  /// Options::flight_recorder.enabled is false).  Thread-safe — the net
  /// front door's INSPECT handler reads it while workers record.
  FlightRecorder* flight_recorder() const { return flight_recorder_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct TenantState;

  struct PendingJob {
    uint64_t id = 0;
    JobSpec spec;
    std::promise<JobOutcome> promise;
    Clock::time_point enqueued_at;
    /// Resolved once in Submit() under mutex_ (map nodes are stable), so
    /// workers update tenant series lock-free after execution.
    TenantState* tenant = nullptr;
  };

  /// Registry handles of one worker's labeled series, resolved once in
  /// Create() (labels {worker=i, device=arch}); updates afterwards are
  /// lock-free atomics on the worker thread.
  struct WorkerMetricHandles {
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* jobs_failed = nullptr;
    obs::Counter* jobs_rejected = nullptr;
    obs::Counter* jobs_shed = nullptr;
    /// Live admission headroom: device free bytes after the last job — the
    /// saturation signal tenant alert rules watch (DESIGN.md §2.10).
    obs::Gauge* admission_headroom_bytes = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* cache_resident_bytes = nullptr;
    obs::Gauge* busy_wall_ms = nullptr;
    obs::Gauge* utilization = nullptr;
    // Per-job aggregated kernel counters (vgpu::KernelCounters), the
    // instruction-rate surface of paper Table 6.
    obs::Counter* warp_inst = nullptr;
    obs::Counter* dram_bytes = nullptr;
    obs::Counter* l2_hits = nullptr;
    obs::Counter* l2_misses = nullptr;
    // Partitioned-exchange interconnect traffic of gang jobs.
    obs::Counter* exchange_bytes = nullptr;
    obs::Counter* exchange_rounds = nullptr;
    /// Warm-started jobs that fell back to full recompute (§2.12) — the
    /// silent-fallback regression signal satellite dashboards alert on.
    obs::Counter* incremental_fallbacks = nullptr;
    /// Jobs admitted past a whole-graph kResourceExhausted and run via the
    /// out-of-core streamed path (§2.13).
    obs::Counter* streamed_jobs = nullptr;
    obs::Histogram* modeled_latency = nullptr;
    obs::Histogram* wall_latency = nullptr;
    obs::Histogram* queue_wait = nullptr;
  };

  struct Worker {
    explicit Worker(DeviceSlot s) : slot(std::move(s)) {}
    DeviceSlot slot;
    std::string arch_name;       ///< fixed at Create(); readable lock-free
    uint64_t trace_track = 0;    ///< set and read on the worker thread only
    WorkerMetricHandles metrics; ///< fixed at Create(); atomically updated
    std::thread thread;
    // --- owned by mutex_ ---
    uint64_t jobs_completed = 0;
    uint64_t jobs_failed = 0;
    uint64_t jobs_rejected = 0;
    double busy_wall_ms = 0;
    double modeled_ms = 0;
    uint64_t memory_capacity_bytes = 0;
    /// Mirror of the worker-thread-owned GraphCache::Stats, refreshed
    /// under mutex_ after every job so Snapshot() can read it safely.
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_evictions = 0;
    uint64_t cache_bytes_evicted = 0;
    uint64_t cache_resident_bytes = 0;
    uint64_t cache_stale_invalidated = 0;
    /// Residency invalidations queued by InvalidateResidency(), drained on
    /// the worker thread before the next dequeue (cache is thread-owned).
    std::vector<std::pair<uint64_t, uint64_t>> pending_invalidations;
    // Gang execution (DESIGN.md §2.7), updated after each gang job.
    uint64_t gang_jobs = 0;
    uint64_t exchange_bytes = 0;
    uint64_t exchange_rounds = 0;
  };

  /// Per-tenant accounting + fair-share state (multi-tenant QoS,
  /// DESIGN.md §2.10).  Counts and vtime are owned by mutex_; the obs
  /// handles are registered once (first Submit naming the tenant) and
  /// updated lock-free from worker threads afterwards.
  struct TenantState {
    uint32_t priority = 0;
    /// Weighted-fair-queue virtual time: bumped by 1/weight per dequeued
    /// job, floored at the pool's vtime floor on (re-)arrival so an idle
    /// tenant cannot bank unbounded credit.
    double vtime = 0;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
    uint64_t shed_deadline = 0;
    double queue_wait_ms_total = 0;
    // Registered lazily in Submit(); stable for the scheduler's lifetime.
    obs::Counter* metric_submitted = nullptr;
    obs::Counter* metric_completed = nullptr;
    obs::Counter* metric_failed = nullptr;
    obs::Counter* metric_rejected = nullptr;
    obs::Counter* metric_shed = nullptr;
    obs::Histogram* metric_queue_wait = nullptr;
  };

  explicit Scheduler(Options options);

  void WorkerLoop(Worker* worker);
  /// Runs one job on the worker's device (admission + execution +
  /// profiling); never throws, always returns a resolved outcome.
  JobOutcome Execute(Worker* worker, vgpu::Device* device, GraphCache* cache,
                     PendingJob job);
  /// Gang-execution path of Execute: builds a partitioned engine of
  /// spec.gang_devices fresh devices (worker's arch) on the calling worker
  /// thread, runs the partitioned driver, fills the payload and exchange
  /// stats.  Returns the job-level verdict.
  Status RunGang(Worker* worker, const JobSpec& spec, JobOutcome* outcome);
  /// Index of the queued job this worker should take next, or npos.  A job
  /// is *runnable* when its arch preference matches and its gang fits the
  /// unreserved workers; among runnable jobs the pick is by priority class
  /// (strictly: lower class first), then by the owning tenant's fair-share
  /// virtual time (smallest first), then FIFO.
  size_t FindRunnableLocked(const Worker& worker) const;

  /// The tenant-state node for `spec`'s tenant, creating (and registering
  /// its metric series) on first sight.  Requires mutex_ held.
  TenantState* TenantStateLocked(const JobSpec& spec);

  /// Registers build_info (first family of every scrape) and every
  /// per-worker series; called from Create() before any thread starts.
  void RegisterMetrics();
  /// Sampler tick: refreshes the gauges via Snapshot() and returns the
  /// alert-input values (queue_depth, p95_latency_ms, cache_hit_ratio,
  /// utilization, ...).
  std::map<std::string, double> PollMetrics();

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Session trace sink; non-null iff options_.trace.enabled.  Created in
  /// Create() before the workers start, written out in Shutdown() after
  /// they join.
  std::unique_ptr<trace::Collector> trace_collector_;

  /// Live metric registry — always constructed; the serve hot path updates
  /// handles into it lock-free.  Declared before sampler_ (construction
  /// order) and destroyed after it.
  obs::Registry registry_;
  // Pool-global handles (registered in Create()).
  obs::Counter* metric_submitted_ = nullptr;
  obs::Counter* metric_rejected_backpressure_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;
  obs::Gauge* metric_jobs_running_ = nullptr;
  obs::Gauge* metric_uptime_ms_ = nullptr;
  obs::Gauge* metric_jobs_per_sec_ = nullptr;
  /// Background sampler; non-null iff options_.metrics.enabled.  Started
  /// after the workers in Create(), stopped after they join in Shutdown()
  /// (while the trace collector is still attached, so alert instants from
  /// the final sample land in the trace).
  std::unique_ptr<obs::Sampler> sampler_;
  /// Trace track carrying alert instant events; registered lazily with the
  /// first alert transition.
  std::atomic<uint64_t> alerts_track_{0};
  /// Slow-job flight recorder (DESIGN.md §2.14); always non-null.
  std::unique_ptr<FlightRecorder> flight_recorder_;
  /// Spans dropped by per-job SpanCaptures (bounded buffers), summed over
  /// all finished jobs; feeds adgraph_trace_dropped_spans_total{track=
  /// "capture"}.
  std::atomic<uint64_t> capture_dropped_total_{0};
  // Dropped-span counters per sink ("track" label: global / session /
  // capture).  The sources are absolute totals, so Snapshot() publishes
  // deltas against the mirrors below (owned by mutex_).
  obs::Counter* metric_trace_dropped_global_ = nullptr;
  obs::Counter* metric_trace_dropped_session_ = nullptr;
  obs::Counter* metric_trace_dropped_capture_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers: work available/shutdown
  std::condition_variable space_cv_;  ///< submitters: queue has space
  std::condition_variable idle_cv_;   ///< Drain(): everything finished
  std::deque<PendingJob> queue_;
  bool shutdown_ = false;
  uint64_t next_job_id_ = 1;
  Clock::time_point started_at_;
  // Last-published dropped-span totals (owned by mutex_, see the counter
  // handles above).  Mutable for the same reason the gauges are settable
  // from Snapshot(): publishing is observable side bookkeeping, not state.
  mutable uint64_t published_trace_dropped_global_ = 0;
  mutable uint64_t published_trace_dropped_session_ = 0;
  mutable uint64_t published_trace_dropped_capture_ = 0;

  // Aggregate stats (owned by mutex_).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t rejected_admission_ = 0;
  uint64_t rejected_backpressure_ = 0;
  uint64_t shed_deadline_ = 0;
  uint64_t running_ = 0;
  /// Tenant accounting, keyed by tenant name ("" = anonymous).  Node
  /// pointers are handed to PendingJob (std::map nodes are stable), so the
  /// map itself is only mutated under mutex_.
  std::map<std::string, TenantState> tenants_;
  /// Fair-share virtual-time floor: the pre-increment vtime of the most
  /// recently dequeued tenant.  Arriving (previously idle) tenants start
  /// here instead of at their stale — unfairly low — old vtime.
  double vtime_floor_ = 0;
  /// Worker slots held by running gang jobs beyond the slot of the worker
  /// driving each gang (a gang of N reserves N-1 extra slots, so pool
  /// capacity modeling stays honest while one thread simulates N devices).
  uint64_t gang_reserved_ = 0;
  // Latency percentiles come from the per-worker obs::Histogram handles
  // (fixed memory for million-job runs), merged in Snapshot().
};

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_SCHEDULER_H_
