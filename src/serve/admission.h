#ifndef ADGRAPH_SERVE_ADMISSION_H_
#define ADGRAPH_SERVE_ADMISSION_H_

#include <cstdint>
#include <string>

#include "serve/job.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::serve {

class GraphCache;

/// \brief Verdict of memory-aware admission control for one (job, device)
/// pair.
struct AdmissionDecision {
  bool admit = false;
  uint64_t estimated_bytes = 0;   ///< registry working-set estimate
  /// Bytes of the estimate already resident in the worker's graph cache
  /// for this job's (graph, variant); the estimate is charged net of this.
  uint64_t resident_bytes = 0;
  /// estimated_bytes minus the residency discount — what headroom scales
  /// and what is compared against available memory.
  uint64_t charged_bytes = 0;
  /// Cache bytes evicted (LRU, unpinned only) to make this job fit.
  uint64_t evicted_bytes = 0;
  uint64_t available_bytes = 0;   ///< device capacity minus live usage
  uint64_t capacity_bytes = 0;    ///< device RAM (scaled)
  /// Admitted via the out-of-core streamed path (spec.allow_streamed): the
  /// whole-graph working set did not fit even after eviction, but the
  /// streamed one — O(n) state plus two staging slots — does.  The job
  /// runs through ooc::RunStreamed instead of the registry handler.
  bool streamed = false;
  uint64_t streamed_bytes = 0;    ///< streamed working-set estimate
  std::string reason;             ///< human-readable rejection reason
};

/// \brief Decides whether `spec` can run on `device` without exhausting its
/// address space, using the AddressSpace capacity accounting
/// (capacity_bytes / used_bytes) plus the registry's per-algorithm
/// working-set model.
///
/// `headroom` scales the estimate (> 1 = more conservative admission).
/// This is what turns the paper's twitter-mpi ESBV OOM into a graceful
/// kResourceExhausted at the serving layer: the job is refused before any
/// kernel runs, and the device stays clean for the next request.
///
/// With a (non-null, enabled) graph cache, admission charges only the
/// *non-resident* part of the estimate — the staged graph is already on
/// the device — and, when the charge still exceeds free memory, evicts
/// unpinned cache entries to admit.  The caller is expected to have pinned
/// the job's own resident entry first (Scheduler::Execute does), so
/// eviction-for-space can never free the graph the job is about to read.
AdmissionDecision CheckAdmission(const vgpu::Device& device,
                                 const JobSpec& spec, double headroom = 1.0,
                                 GraphCache* cache = nullptr);

/// Converts a non-admit decision into the Status the job's future resolves
/// with (kResourceExhausted).  Precondition: !decision.admit.
Status AdmissionError(const AdmissionDecision& decision);

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_ADMISSION_H_
