#ifndef ADGRAPH_SERVE_ADMISSION_H_
#define ADGRAPH_SERVE_ADMISSION_H_

#include <cstdint>
#include <string>

#include "serve/job.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::serve {

/// \brief Verdict of memory-aware admission control for one (job, device)
/// pair.
struct AdmissionDecision {
  bool admit = false;
  uint64_t estimated_bytes = 0;   ///< registry working-set estimate
  uint64_t available_bytes = 0;   ///< device capacity minus live usage
  uint64_t capacity_bytes = 0;    ///< device RAM (scaled)
  std::string reason;             ///< human-readable rejection reason
};

/// \brief Decides whether `spec` can run on `device` without exhausting its
/// address space, using the AddressSpace capacity accounting
/// (capacity_bytes / used_bytes) plus the registry's per-algorithm
/// working-set model.
///
/// `headroom` scales the estimate (> 1 = more conservative admission).
/// This is what turns the paper's twitter-mpi ESBV OOM into a graceful
/// kResourceExhausted at the serving layer: the job is refused before any
/// kernel runs, and the device stays clean for the next request.
AdmissionDecision CheckAdmission(const vgpu::Device& device,
                                 const JobSpec& spec, double headroom = 1.0);

/// Converts a non-admit decision into the Status the job's future resolves
/// with (kResourceExhausted).  Precondition: !decision.admit.
Status AdmissionError(const AdmissionDecision& decision);

}  // namespace adgraph::serve

#endif  // ADGRAPH_SERVE_ADMISSION_H_
