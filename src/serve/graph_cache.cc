#include "serve/graph_cache.h"

#include <algorithm>
#include <limits>

#include "trace/trace.h"

namespace adgraph::serve {

GraphCache::GraphCache(vgpu::Device* device, Options options)
    : device_(device), options_(options) {
  capacity_ = options_.capacity_bytes;
  if (capacity_ == 0) {
    double fraction = std::clamp(options_.capacity_fraction, 0.0, 1.0);
    capacity_ = static_cast<uint64_t>(
        static_cast<double>(device_->memory_capacity_bytes()) * fraction);
  }
}

GraphCache::~GraphCache() = default;

void GraphCache::EraseEntry(std::map<Key, Entry>::iterator it) {
  stats_.resident_bytes -= it->second.bytes;
  entries_.erase(it);
}

core::ResidentCsr GraphCache::PinEntry(const Key& key, Entry& entry) {
  entry.last_used = ++use_clock_;
  entry.pins += 1;
  return core::ResidentCsr(entry.csr, [this, key] {
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    if (it->second.pins > 0) it->second.pins -= 1;
    // A doomed entry outlived Invalidate() only because this reader held
    // it; the last unpin frees the stale copy.
    if (it->second.pins == 0 && it->second.doomed) EraseEntry(it);
  });
}

core::ResidentCsr GraphCache::PinIfResident(const graph::CsrGraph& base,
                                            core::GraphVariant variant) {
  if (!options_.enabled) return {};
  auto it = entries_.find(KeyFor(base, variant));
  if (it == entries_.end() || it->second.doomed) return {};
  return PinEntry(it->first, it->second);
}

uint64_t GraphCache::ResidentBytesFor(const graph::CsrGraph& base,
                                      core::GraphVariant variant) const {
  if (!options_.enabled) return 0;
  auto it = entries_.find(KeyFor(base, variant));
  return it == entries_.end() || it->second.doomed ? 0 : it->second.bytes;
}

uint64_t GraphCache::EvictForSpace(uint64_t bytes) {
  uint64_t freed = 0;
  while (freed < bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything left is pinned
    trace::Span span(device_->trace_track(), "cache.evict", "cache");
    span.Arg("variant",
             std::string(core::GraphVariantName(
                 static_cast<core::GraphVariant>(std::get<2>(victim->first)))));
    span.ArgNum("bytes", victim->second.bytes);
    freed += victim->second.bytes;
    stats_.evictions += 1;
    stats_.bytes_evicted += victim->second.bytes;
    // Unpinned means no outstanding handle shares the csr, so erasing the
    // entry drops the last reference and frees the device buffers here.
    EraseEntry(victim);
  }
  return freed;
}

uint64_t GraphCache::Invalidate(uint64_t fingerprint,
                                uint64_t keep_min_epoch) {
  if (!options_.enabled) return 0;
  uint64_t dropped = 0;
  uint64_t bytes = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Key& key = it->first;
    if (std::get<0>(key) != fingerprint ||
        std::get<1>(key) >= keep_min_epoch) {
      ++it;
      continue;
    }
    dropped += 1;
    bytes += it->second.bytes;
    if (it->second.pins > 0) {
      // In-flight readers keep their pinned copy consistent; mark it so no
      // future lookup serves it and the last unpin frees it.
      it->second.doomed = true;
      ++it;
    } else {
      auto victim = it++;
      EraseEntry(victim);
    }
  }
  if (dropped > 0) {
    stats_.stale_invalidated += dropped;
    trace::Span span(device_->trace_track(), "cache.stale_invalidate",
                     "cache");
    span.ArgNum("entries", dropped);
    span.ArgNum("bytes", bytes);
  }
  return dropped;
}

Result<core::ResidentCsr> GraphCache::Acquire(vgpu::Device* device,
                                              const graph::CsrGraph& base,
                                              core::GraphVariant variant) {
  if (!options_.enabled) {
    return core::Stage(nullptr, device, base, variant);
  }
  Key key = KeyFor(base, variant);
  auto hit = entries_.find(key);
  if (hit != entries_.end() && !hit->second.doomed) {
    stats_.hits += 1;
    trace::Span span(device_->trace_track(), "cache.hit", "cache");
    span.Arg("variant", std::string(core::GraphVariantName(variant)));
    span.ArgNum("bytes", hit->second.bytes);
    return PinEntry(hit->first, hit->second);
  }

  stats_.misses += 1;
  trace::Span span(device_->trace_track(), "cache.miss", "cache");
  span.Arg("variant", std::string(core::GraphVariantName(variant)));

  graph::CsrGraph built;
  const graph::CsrGraph* host = &base;
  if (variant != core::GraphVariant::kAsIs) {
    ADGRAPH_ASSIGN_OR_RETURN(built, core::BuildHostVariant(base, variant));
    host = &built;
  }
  uint64_t used_before = device->memory_used_bytes();
  Result<core::DeviceCsr> upload = core::DeviceCsr::Upload(device, *host);
  if (!upload.ok() && upload.status().IsOutOfMemory()) {
    // Make room out of our own residency before letting the job die: a
    // full device whose ballast is unpinned cached graphs is our fault.
    // The retry is bounded to exactly one attempt, and only when eviction
    // actually freed something — when every resident entry is pinned by an
    // in-flight job there is nothing to reclaim, and re-uploading forever
    // (or surfacing the allocator's raw kOutOfMemory) hid the real
    // condition.  Report it as deterministic admission-style exhaustion.
    const uint64_t freed =
        EvictForSpace(std::numeric_limits<uint64_t>::max());
    if (freed == 0) {
      return Status::ResourceExhausted(
          entries_.empty()
              ? "graph cache: device memory exhausted with no cached "
                "entries to evict: " +
                    upload.status().message()
              : "graph cache: device memory exhausted and all " +
                    std::to_string(entries_.size()) +
                    " resident entries are pinned by in-flight jobs: " +
                    upload.status().message());
    }
    upload = core::DeviceCsr::Upload(device, *host);
  }
  ADGRAPH_ASSIGN_OR_RETURN(core::DeviceCsr uploaded, std::move(upload));
  const uint64_t bytes = device->memory_used_bytes() - used_before;
  span.ArgNum("bytes", bytes);

  if (options_.max_entries == 0 || bytes > capacity_ ||
      entries_.count(key)) {
    // Uncacheable — over budget, or a doomed copy of the same key is still
    // pinned by an in-flight reader: serve a one-shot owned upload.
    return core::ResidentCsr(std::move(uploaded));
  }
  while (entries_.size() >= options_.max_entries ||
         stats_.resident_bytes + bytes > capacity_) {
    if (EvictForSpace(1) == 0) {
      // Every remaining entry is pinned; don't cache this one.
      return core::ResidentCsr(std::move(uploaded));
    }
  }

  Entry entry;
  entry.csr = std::make_shared<core::DeviceCsr>(std::move(uploaded));
  entry.bytes = bytes;
  stats_.resident_bytes += bytes;
  auto [pos, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  return PinEntry(pos->first, pos->second);
}

}  // namespace adgraph::serve
