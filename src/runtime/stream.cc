#include "runtime/stream.h"

namespace adgraph::rt {

Result<double> ElapsedTime(const Event& start, const Event& stop) {
  if (!start.recorded() || !stop.recorded()) {
    return Status::InvalidArgument("ElapsedTime on unrecorded event");
  }
  return stop.timestamp_ms() - start.timestamp_ms();
}

}  // namespace adgraph::rt
