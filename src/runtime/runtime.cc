#include "runtime/runtime.h"

#include <algorithm>

namespace adgraph::rt {

Platform PlatformOf(const vgpu::Device& device) {
  return device.arch().vendor == "NVIDIA" ? Platform::kCuda
                                          : Platform::kRocmLike;
}

std::string PlatformName(Platform platform) {
  return platform == Platform::kCuda ? "CUDA" : "ROCm-like";
}

std::string LibraryNameOn(Platform platform) {
  return platform == Platform::kCuda ? "nvGRAPH" : "adGRAPH";
}

vgpu::LaunchDims CoverThreads(uint64_t threads, uint32_t block_size,
                              uint32_t shared_bytes) {
  vgpu::LaunchDims dims;
  dims.block = block_size;
  dims.shared_bytes = shared_bytes;
  uint64_t grid = (std::max<uint64_t>(threads, 1) + block_size - 1) / block_size;
  // Grids are clamped to a sane maximum; kernels use grid-stride loops when
  // the problem exceeds it.
  dims.grid = static_cast<uint32_t>(std::min<uint64_t>(grid, 1u << 20));
  return dims;
}

}  // namespace adgraph::rt
