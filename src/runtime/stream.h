#ifndef ADGRAPH_RUNTIME_STREAM_H_
#define ADGRAPH_RUNTIME_STREAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::rt {

/// \brief Timestamp marker on a device timeline (the cudaEvent/hipEvent
/// idiom): records the device's modeled time when recorded; pairs of
/// events measure intervals.
class Event {
 public:
  Event() = default;

  bool recorded() const { return recorded_; }
  double timestamp_ms() const { return timestamp_ms_; }

 private:
  friend class Stream;
  bool recorded_ = false;
  double timestamp_ms_ = 0;
};

/// Modeled milliseconds between two recorded events (negative if `stop`
/// precedes `start`); fails if either is unrecorded.
Result<double> ElapsedTime(const Event& start, const Event& stop);

/// \brief Ordered work queue on one device (the cudaStream/hipStream
/// idiom).
///
/// The simulator executes synchronously, so a Stream's role is API parity
/// and bookkeeping: it scopes launches, names them for the kernel log,
/// counts them, and records events on the device timeline.  Multiple
/// streams on one device interleave their modeled times on the single
/// device clock, as launches on a real single-queue GPU ultimately do.
class Stream {
 public:
  explicit Stream(vgpu::Device* device, std::string name = "stream")
      : device_(device), name_(std::move(name)) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  vgpu::Device* device() const { return device_; }
  const std::string& name() const { return name_; }
  uint64_t launches() const { return launches_; }

  /// Enqueues (and, in the simulator, immediately executes) a kernel.
  Result<vgpu::KernelStats> Launch(std::string_view kernel_name,
                                   vgpu::LaunchDims dims,
                                   const vgpu::Device::KernelFn& kernel) {
    ADGRAPH_ASSIGN_OR_RETURN(
        vgpu::KernelStats stats,
        device_->Launch(std::string(name_) + "/" + std::string(kernel_name),
                        dims, kernel));
    launches_ += 1;
    return stats;
  }

  /// Records `event` at the stream's current position (device time now).
  Status Record(Event* event) {
    if (event == nullptr) {
      return Status::InvalidArgument("Record on null event");
    }
    event->recorded_ = true;
    event->timestamp_ms_ = device_->elapsed_ms();
    return Status::OK();
  }

  /// Blocks until all enqueued work completed.  The simulator executes
  /// eagerly, so this is a (checked) no-op kept for API parity.
  Status Synchronize() { return Status::OK(); }

 private:
  vgpu::Device* device_;
  std::string name_;
  uint64_t launches_ = 0;
};

}  // namespace adgraph::rt

#endif  // ADGRAPH_RUNTIME_STREAM_H_
