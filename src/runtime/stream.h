#ifndef ADGRAPH_RUNTIME_STREAM_H_
#define ADGRAPH_RUNTIME_STREAM_H_

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::rt {

/// \brief Timestamp marker on a device timeline (the cudaEvent/hipEvent
/// idiom): records the device's modeled time when recorded; pairs of
/// events measure intervals.
///
/// Thread-confinement: an Event is plain unsynchronized state.  It must be
/// recorded and read on the thread that owns the Stream (equivalently, the
/// Device) it is recorded on; `ElapsedTime` on events of a live foreign
/// stream is a data race.  The serving layer (`src/serve/`) obeys this by
/// giving each worker thread exclusive ownership of its device, streams and
/// events; results cross threads only as values after the job completes.
class Event {
 public:
  Event() = default;

  bool recorded() const { return recorded_; }
  double timestamp_ms() const { return timestamp_ms_; }

 private:
  friend class Stream;
  bool recorded_ = false;
  double timestamp_ms_ = 0;
};

/// Modeled milliseconds between two recorded events (negative if `stop`
/// precedes `start`); fails if either is unrecorded.
Result<double> ElapsedTime(const Event& start, const Event& stop);

/// \brief Ordered work queue on one device (the cudaStream/hipStream
/// idiom).
///
/// The simulator executes synchronously, so a Stream's role is API parity
/// and bookkeeping: it scopes launches, names them for the kernel log,
/// counts them, and records events on the device timeline.  Multiple
/// streams on one device interleave their modeled times on the single
/// device clock, as launches on a real single-queue GPU ultimately do.
///
/// Thread-confinement (enforced): a Stream — like the single-threaded
/// vgpu::Device under it — belongs to the thread that constructed it.
/// Launch/Record on any other thread return kInternal instead of silently
/// racing on the device clock and kernel log.  A multi-threaded scheduler
/// therefore creates the Stream *inside* the worker that owns the device
/// (see src/serve/scheduler.cc), never shares one across workers.
class Stream {
 public:
  explicit Stream(vgpu::Device* device, std::string name = "stream")
      : device_(device),
        name_(std::move(name)),
        owner_(std::this_thread::get_id()) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  vgpu::Device* device() const { return device_; }
  const std::string& name() const { return name_; }
  uint64_t launches() const { return launches_; }

  /// Modeled host->device transfer time staged through this stream via
  /// CopyToDeviceAsync, and the bytes behind it.  The out-of-core driver
  /// uses per-stream accounting to build the copy/compute overlap timeline
  /// (device->transfer_ms() only gives the global sum).
  double transfer_ms() const { return transfer_ms_; }
  uint64_t staged_bytes() const { return staged_bytes_; }

  /// Enqueues (and, in the simulator, immediately executes) a kernel.
  Result<vgpu::KernelStats> Launch(std::string_view kernel_name,
                                   vgpu::LaunchDims dims,
                                   const vgpu::Device::KernelFn& kernel) {
    ADGRAPH_RETURN_NOT_OK(CheckOwningThread("Launch"));
    trace::Span span(device_->trace_track(),
                     name_ + "/launch:" + std::string(kernel_name), "stream");
    ADGRAPH_ASSIGN_OR_RETURN(
        vgpu::KernelStats stats,
        device_->Launch(std::string(name_) + "/" + std::string(kernel_name),
                        dims, kernel));
    launches_ += 1;
    return stats;
  }

  /// Stages a host->device copy on this stream (the cudaMemcpyAsync idiom).
  /// The simulator executes it eagerly, but the transfer time is charged to
  /// this stream's own clock so a prefetch stream and a compute stream can
  /// be overlapped analytically by the caller.
  template <typename T>
  Status CopyToDeviceAsync(vgpu::DevPtr<T> dst, const T* src,
                           uint64_t count) {
    ADGRAPH_RETURN_NOT_OK(CheckOwningThread("CopyToDeviceAsync"));
    trace::Span span(device_->trace_track(), name_ + "/copy_async", "stream");
    span.ArgNum("bytes", static_cast<double>(count * sizeof(T)));
    const double before = device_->transfer_ms();
    ADGRAPH_RETURN_NOT_OK(device_->CopyToDevice(dst, src, count));
    transfer_ms_ += device_->transfer_ms() - before;
    staged_bytes_ += count * sizeof(T);
    return Status::OK();
  }

  /// Records `event` at the stream's current position (device time now).
  Status Record(Event* event) {
    ADGRAPH_RETURN_NOT_OK(CheckOwningThread("Record"));
    if (event == nullptr) {
      return Status::InvalidArgument("Record on null event");
    }
    event->recorded_ = true;
    event->timestamp_ms_ = device_->elapsed_ms();
    trace::Span span(device_->trace_track(), name_ + "/record", "stream");
    span.ArgNum("device_ms", event->timestamp_ms_);
    return Status::OK();
  }

  /// Blocks until all enqueued work completed.  The simulator executes
  /// eagerly, so this is a (checked) no-op kept for API parity.
  Status Synchronize() {
    trace::Span span(device_->trace_track(), name_ + "/synchronize",
                     "stream");
    return Status::OK();
  }

 private:
  Status CheckOwningThread(std::string_view op) const {
    if (std::this_thread::get_id() != owner_) {
      return Status::Internal("Stream '" + name_ + "': " + std::string(op) +
                              " from a thread that does not own the stream "
                              "(streams and their device are confined to the "
                              "constructing thread)");
    }
    return Status::OK();
  }

  vgpu::Device* device_;
  std::string name_;
  std::thread::id owner_;
  uint64_t launches_ = 0;
  double transfer_ms_ = 0;
  uint64_t staged_bytes_ = 0;
};

}  // namespace adgraph::rt

#endif  // ADGRAPH_RUNTIME_STREAM_H_
