#ifndef ADGRAPH_RUNTIME_PEER_COPY_H_
#define ADGRAPH_RUNTIME_PEER_COPY_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"
#include "vgpu/device.h"
#include "vgpu/interconnect.h"

namespace adgraph::rt {

/// \brief Device-to-device copy over the modeled interconnect (the
/// cudaMemcpyPeer of the simulator).
///
/// Moves `count` elements from `src` on `src_device` to `dst` on
/// `dst_device` and charges count*sizeof(T) bytes to the interconnect's
/// current exchange round on the (src_index -> dst_index) link.  Timing is
/// rolled up by Interconnect::EndRound, so back-to-back peer copies of one
/// bulk-synchronous round overlap instead of serializing.  Emits one span
/// on the interconnect track per copy.
template <typename T>
Status PeerCopy(vgpu::Device* src_device, vgpu::DevPtr<T> src,
                vgpu::Device* dst_device, vgpu::DevPtr<T> dst, uint64_t count,
                vgpu::Interconnect* interconnect, uint32_t src_index,
                uint32_t dst_index) {
  if (count == 0) return Status::OK();
  trace::Span span(interconnect->trace_track(), "peer_copy", "exchange");
  std::vector<T> staging(count);
  ADGRAPH_RETURN_NOT_OK(src_device->ReadForPeer(staging.data(), src, count));
  ADGRAPH_RETURN_NOT_OK(
      dst_device->WriteFromPeer(dst, staging.data(), count));
  interconnect->AccountTransfer(src_index, dst_index, count * sizeof(T));
  if (span.active()) {
    span.ArgNum("bytes", count * sizeof(T));
    span.ArgNum("src", static_cast<uint64_t>(src_index));
    span.ArgNum("dst", static_cast<uint64_t>(dst_index));
  }
  return Status::OK();
}

/// \brief Host-staged peer send for irregular (scatter-shaped) exchanges.
///
/// The BFS remote-frontier exchange splits a mixed device queue by owner on
/// the host; the per-owner payloads are then "shipped" from `src_index` to
/// the destination device with the same interconnect accounting as
/// PeerCopy — the host array is the simulator's transport for data that
/// logically crosses the src->dst link.
template <typename T>
Status PeerSend(const T* host_payload, uint64_t count,
                vgpu::Device* dst_device, vgpu::DevPtr<T> dst,
                vgpu::Interconnect* interconnect, uint32_t src_index,
                uint32_t dst_index) {
  if (count == 0) return Status::OK();
  trace::Span span(interconnect->trace_track(), "peer_send", "exchange");
  ADGRAPH_RETURN_NOT_OK(dst_device->WriteFromPeer(dst, host_payload, count));
  interconnect->AccountTransfer(src_index, dst_index, count * sizeof(T));
  if (span.active()) {
    span.ArgNum("bytes", count * sizeof(T));
    span.ArgNum("src", static_cast<uint64_t>(src_index));
    span.ArgNum("dst", static_cast<uint64_t>(dst_index));
  }
  return Status::OK();
}

}  // namespace adgraph::rt

#endif  // ADGRAPH_RUNTIME_PEER_COPY_H_
