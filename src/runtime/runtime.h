#ifndef ADGRAPH_RUNTIME_RUNTIME_H_
#define ADGRAPH_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::rt {

/// The software platform a simulated device presents (paper Figure 3).
/// Purely a naming/metrics concern: the same library code runs on both,
/// which is the porting premise of adGRAPH.
enum class Platform { kCuda, kRocmLike };

/// CUDA for NVIDIA configs, ROCm-like for AMD-like configs.
Platform PlatformOf(const vgpu::Device& device);

/// Human-readable platform name ("CUDA" / "ROCm-like").
std::string PlatformName(Platform platform);

/// Library name the paper associates with each platform: running this code
/// base on a CUDA device *is* nvGRAPH; on a ROCm-like device it *is*
/// adGRAPH (one source tree, two platforms — see DESIGN.md §2.2).
std::string LibraryNameOn(Platform platform);

/// \brief RAII typed device allocation (the HIP/CUDA `hipMalloc` +
/// `hipFree` pair with a C++ face).
///
/// Move-only.  The device must outlive the buffer.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates `count` elements (uninitialized device memory).
  static Result<DeviceBuffer> Create(vgpu::Device* device, uint64_t count) {
    ADGRAPH_ASSIGN_OR_RETURN(vgpu::DevPtr<T> ptr, device->Alloc<T>(count));
    return DeviceBuffer(device, ptr, count);
  }

  /// Allocates and fills with zero bytes.
  static Result<DeviceBuffer> CreateZeroed(vgpu::Device* device,
                                           uint64_t count) {
    ADGRAPH_ASSIGN_OR_RETURN(DeviceBuffer buf, Create(device, count));
    ADGRAPH_RETURN_NOT_OK(buf.FillBytes(0));
    return buf;
  }

  /// Allocates and uploads `host`.
  static Result<DeviceBuffer> FromHost(vgpu::Device* device,
                                       const std::vector<T>& host) {
    ADGRAPH_ASSIGN_OR_RETURN(DeviceBuffer buf, Create(device, host.size()));
    ADGRAPH_RETURN_NOT_OK(buf.Upload(host.data(), host.size()));
    return buf;
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(std::exchange(other.device_, nullptr)),
        ptr_(std::exchange(other.ptr_, {})),
        count_(std::exchange(other.count_, 0)) {}
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = std::exchange(other.device_, nullptr);
      ptr_ = std::exchange(other.ptr_, {});
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { Release(); }

  vgpu::DevPtr<T> ptr() const { return ptr_; }
  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  Status Upload(const T* src, uint64_t count, uint64_t dst_offset = 0) {
    if (dst_offset + count > count_) {
      return Status::OutOfRange("Upload beyond buffer size");
    }
    return device_->CopyToDevice(ptr_ + dst_offset, src, count);
  }

  Status Download(T* dst, uint64_t count, uint64_t src_offset = 0) const {
    if (src_offset + count > count_) {
      return Status::OutOfRange("Download beyond buffer size");
    }
    return device_->CopyToHost(dst, ptr_ + src_offset, count);
  }

  Result<std::vector<T>> ToHost() const {
    std::vector<T> out(count_);
    ADGRAPH_RETURN_NOT_OK(Download(out.data(), count_));
    return out;
  }

  Status FillBytes(uint8_t byte) {
    return device_->Memset(ptr_, byte, count_);
  }

 private:
  DeviceBuffer(vgpu::Device* device, vgpu::DevPtr<T> ptr, uint64_t count)
      : device_(device), ptr_(ptr), count_(count) {}

  void Release() {
    if (device_ != nullptr && !ptr_.is_null()) {
      // Free of a live allocation cannot fail; ignore the status.
      (void)device_->Free(ptr_);
    }
    device_ = nullptr;
    ptr_ = {};
    count_ = 0;
  }

  vgpu::Device* device_ = nullptr;
  vgpu::DevPtr<T> ptr_;
  uint64_t count_ = 0;
};

/// \brief Scoped device-time interval (the cudaEvent elapsed-time idiom):
/// captures Device::elapsed_ms at construction; ElapsedMs() is the modeled
/// device time spent since.
class DeviceTimer {
 public:
  explicit DeviceTimer(const vgpu::Device* device)
      : device_(device), start_ms_(device->elapsed_ms()) {}

  double ElapsedMs() const { return device_->elapsed_ms() - start_ms_; }

 private:
  const vgpu::Device* device_;
  double start_ms_;
};

/// Computes a 1-D launch covering `threads` total threads with the given
/// block size (grid = ceil-div).
vgpu::LaunchDims CoverThreads(uint64_t threads, uint32_t block_size = 256,
                              uint32_t shared_bytes = 0);

}  // namespace adgraph::rt

#endif  // ADGRAPH_RUNTIME_RUNTIME_H_
