#include "obs/sampler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace adgraph::obs {

// --- SampleRing ------------------------------------------------------------

SampleRing::SampleRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SampleRing::Push(SampleBatch batch) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(batch));
    return;
  }
  ring_[next_] = std::move(batch);
  next_ = (next_ + 1) % ring_.size();
  dropped_ += 1;
}

std::vector<SampleBatch> SampleRing::Batches() const {
  std::vector<SampleBatch> batches;
  batches.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    batches.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return batches;
}

// --- Sampler ---------------------------------------------------------------

Sampler::Sampler(const Registry* registry, SamplerOptions options, PollFn poll,
                 AlertSink alert_sink)
    : registry_(registry),
      options_(std::move(options)),
      poll_(std::move(poll)),
      alert_sink_(std::move(alert_sink)),
      engine_(options_.alert_rules),
      started_at_(std::chrono::steady_clock::now()),
      ring_(options_.ring_capacity) {
  options_.interval_ms = std::max(options_.interval_ms, 1.0);
}

Sampler::~Sampler() { Stop(); }

void Sampler::Start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    const auto interval = std::chrono::duration<double, std::milli>(
        options_.interval_ms);
    if (stop_cv_.wait_for(lock, interval,
                          [this] { return stop_requested_; })) {
      return;
    }
    // Tick without holding the sampler mutex: poll_ re-enters the
    // embedding layer (the scheduler's Snapshot() takes its own lock).
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void Sampler::SampleNow() {
  const double ts_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - started_at_)
                           .count();
  std::map<std::string, double> values;
  if (poll_) values = poll_();
  SampleBatch batch;
  batch.ts_ms = ts_ms;
  batch.families = registry_->Scrape();
  std::vector<AlertEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = engine_.Evaluate(ts_ms, values);
    batch.sequence = sequence_++;
    batch.alerts = events;
    for (const AlertEvent& event : events) alert_log_.push_back(event);
    ring_.Push(std::move(batch));
  }
  for (const AlertEvent& event : events) {
    if (!options_.quiet) {
      std::fprintf(stderr, "[alert] %s %s (value %.6g, threshold %.6g)\n",
                   event.rule.c_str(),
                   event.state == AlertEvent::State::kFiring ? "FIRING"
                                                             : "resolved",
                   event.value, event.threshold);
    }
    if (alert_sink_) alert_sink_(event);
  }
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample: the exported series always covers the end-of-run state
  // (queue drained, workers idle), whatever phase the interval was in.
  SampleNow();
  if (!options_.path.empty()) {
    Status status = WriteTo(options_.path, options_.format);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export: %s\n",
                   status.ToString().c_str());
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

std::vector<SampleBatch> Sampler::Batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.Batches();
}

SampleBatch Sampler::Latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto batches = ring_.Batches();
  return batches.empty() ? SampleBatch{} : std::move(batches.back());
}

std::vector<AlertEvent> Sampler::AlertLog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alert_log_;
}

uint64_t Sampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

uint64_t Sampler::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.dropped();
}

Status Sampler::WriteTo(const std::string& path, ExportFormat format) const {
  std::vector<SampleBatch> batches;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batches = ring_.Batches();
  }
  if (format == ExportFormat::kPrometheus) {
    // A /metrics endpoint serves the latest scrape; so does the file.
    std::string text;
    if (!batches.empty()) text = ToPrometheusText(batches.back().families);
    return WriteTextFile(path, text);
  }
  std::string lines;
  for (const SampleBatch& batch : batches) {
    lines += ToJsonLine(batch);
    lines += '\n';
  }
  return WriteTextFile(path, lines);
}

}  // namespace adgraph::obs
