#ifndef ADGRAPH_OBS_ALERTS_H_
#define ADGRAPH_OBS_ALERTS_H_

/// \file
/// Threshold alert rules over sampled metrics (DESIGN.md §2.9).
///
/// Rule syntax (one rule per line; blank lines and `#` comments skipped):
///
///     METRIC OP THRESHOLD [for N]
///
///     queue_depth > 48 for 3
///     p95_latency_ms > 250
///     cache_hit_ratio < 0.5 for 10
///     utilization < 0.2 for 5
///
/// METRIC names a value from the sampler's per-tick alert-input map (the
/// scheduler publishes queue_depth, jobs_running, p95_latency_ms,
/// p95_modeled_ms, cache_hit_ratio, utilization, jobs_per_sec,
/// jobs_failed — see DESIGN.md §2.9 for the full list), OP is `>` or `<`,
/// and `for N` demands N consecutive breaching samples before the rule
/// fires (default 1).
///
/// Firing state has symmetric hysteresis: a firing rule resolves only
/// after the same N consecutive non-breaching samples, so a value
/// oscillating around the threshold cannot flap the alert every tick.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace adgraph::obs {

struct AlertRule {
  std::string name;        ///< display name; defaults to the rule text
  std::string metric;      ///< alert-input key, e.g. "queue_depth"
  enum class Op { kGreaterThan, kLessThan } op = Op::kGreaterThan;
  double threshold = 0;
  /// Consecutive breaching samples required to fire (and, symmetrically,
  /// consecutive clean samples required to resolve).  Min 1.
  uint32_t for_samples = 1;
};

/// Parses one `METRIC OP THRESHOLD [for N]` line.
Result<AlertRule> ParseAlertRule(const std::string& line);

/// Parses a whole rules file body; empty input yields an empty rule set.
Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text);

/// One firing/resolved transition, as recorded in the sample batch, the
/// trace's `alerts` track and stderr.
struct AlertEvent {
  std::string rule;    ///< AlertRule::name
  std::string metric;
  enum class State { kFiring, kResolved } state = State::kFiring;
  double value = 0;      ///< the observed value at the transition
  double threshold = 0;
  double ts_ms = 0;      ///< sampler timestamp of the transition
};

/// \brief Evaluates a rule set against successive sample ticks, tracking
/// per-rule firing state.  Single-threaded (driven by the sampler thread);
/// the sampler serializes access.
class AlertEngine {
 public:
  struct RuleState {
    AlertRule rule;
    bool firing = false;
    uint32_t breach_streak = 0;  ///< consecutive breaching samples
    uint32_t ok_streak = 0;      ///< consecutive clean samples while firing
    uint64_t times_fired = 0;    ///< lifetime count of kFiring transitions
  };

  explicit AlertEngine(std::vector<AlertRule> rules);

  /// Feeds one tick's values; returns the transitions (possibly empty).
  /// Rules whose metric is absent from `values` are left untouched — a
  /// missing input is no evidence either way.
  std::vector<AlertEvent> Evaluate(double ts_ms,
                                   const std::map<std::string, double>& values);

  const std::vector<RuleState>& states() const { return states_; }
  size_t num_rules() const { return states_.size(); }

 private:
  std::vector<RuleState> states_;
};

}  // namespace adgraph::obs

#endif  // ADGRAPH_OBS_ALERTS_H_
