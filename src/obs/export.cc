#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace adgraph::obs {

namespace {

/// Shortest round-trippable decimal; Prometheus and JSON both accept it.
/// Non-finite values (a gauge fed a degenerate ratio) become 0 so neither
/// format ever sees NaN/Inf literals.
std::string FormatValue(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void AppendLabels(std::string* out, const LabelSet& labels,
                  const char* extra_key = nullptr,
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    *out += EscapeLabelValue(v);
    *out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) *out += ',';
    *out += extra_key;
    *out += "=\"";
    *out += EscapeLabelValue(extra_value);
    *out += '"';
  }
  *out += '}';
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
  *out += '"';
}

void AppendJsonLabels(std::string* out, const LabelSet& labels) {
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, k);
    *out += ':';
    AppendJsonString(out, v);
  }
  *out += '}';
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

Result<ExportFormat> ParseExportFormat(const std::string& name) {
  if (name == "prom" || name == "prometheus") return ExportFormat::kPrometheus;
  if (name == "jsonl") return ExportFormat::kJsonl;
  return Status::InvalidArgument("unknown metrics format '" + name +
                                 "' (expected 'prom' or 'jsonl')");
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char ch : value) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string ToPrometheusText(const std::vector<FamilySnapshot>& families) {
  std::string out;
  for (const FamilySnapshot& family : families) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + family.help + "\n";
    }
    out += "# TYPE " + family.name + " ";
    out += KindName(family.kind);
    out += '\n';
    for (const SeriesSnapshot& series : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += family.name;
        AppendLabels(&out, series.labels);
        out += ' ';
        out += FormatValue(series.value);
        out += '\n';
        continue;
      }
      // Histogram triplet: cumulative buckets, then _sum and _count.
      const HistogramSnapshot& h = series.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le =
            i < h.bounds.size() ? FormatValue(h.bounds[i]) : "+Inf";
        out += family.name;
        out += "_bucket";
        AppendLabels(&out, series.labels, "le", le);
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      out += family.name;
      out += "_sum";
      AppendLabels(&out, series.labels);
      out += ' ';
      out += FormatValue(h.sum);
      out += '\n';
      out += family.name;
      out += "_count";
      AppendLabels(&out, series.labels);
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
    }
  }
  return out;
}

std::string ToJsonLine(const SampleBatch& batch) {
  std::string out = "{\"seq\":" + std::to_string(batch.sequence) +
                    ",\"ts_ms\":" + FormatValue(batch.ts_ms);
  if (!batch.alerts.empty()) {
    out += ",\"alerts\":[";
    for (size_t i = 0; i < batch.alerts.size(); ++i) {
      const AlertEvent& event = batch.alerts[i];
      if (i) out += ',';
      out += "{\"rule\":";
      AppendJsonString(&out, event.rule);
      out += ",\"state\":";
      AppendJsonString(&out, event.state == AlertEvent::State::kFiring
                                 ? "firing"
                                 : "resolved");
      out += ",\"metric\":";
      AppendJsonString(&out, event.metric);
      out += ",\"value\":" + FormatValue(event.value) +
             ",\"threshold\":" + FormatValue(event.threshold) + "}";
    }
    out += ']';
  }
  out += ",\"metrics\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : batch.families) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":";
    AppendJsonString(&out, family.name);
    out += ",\"kind\":";
    AppendJsonString(&out, KindName(family.kind));
    out += ",\"series\":[";
    for (size_t i = 0; i < family.series.size(); ++i) {
      const SeriesSnapshot& series = family.series[i];
      if (i) out += ',';
      out += "{\"labels\":";
      AppendJsonLabels(&out, series.labels);
      if (family.kind == MetricKind::kHistogram) {
        const HistogramSnapshot& h = series.histogram;
        out += ",\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + FormatValue(h.sum) + ",\"buckets\":[";
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (b) out += ',';
          out += "[";
          if (b < h.bounds.size()) {
            out += FormatValue(h.bounds[b]);
          } else {
            out += "\"+Inf\"";
          }
          out += ',' + std::to_string(h.counts[b]) + ']';
        }
        out += ']';
      } else {
        out += ",\"value\":" + FormatValue(series.value);
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace adgraph::obs
