#ifndef ADGRAPH_OBS_SAMPLER_H_
#define ADGRAPH_OBS_SAMPLER_H_

/// \file
/// Background time-series sampler (DESIGN.md §2.9): a thread that, at a
/// configurable interval, (1) calls a caller-supplied poll function — the
/// hook where the serve scheduler refreshes its gauges and publishes the
/// alert-input values, (2) scrapes the registry into a SampleBatch, (3)
/// runs the alert-rule engine over the inputs, and (4) pushes the batch
/// into a bounded overwrite-oldest ring (the trace collector's design,
/// applied to metrics).
///
/// Alert transitions are delivered three ways: recorded in the batch,
/// printed to stderr, and forwarded to an optional sink callback (the
/// scheduler uses it to drop instant events onto the trace's `alerts`
/// track).
///
/// Stop() takes one final sample before joining, so the exported series
/// always includes the end-of-run state; if the options name a path, the
/// file is written then (Prometheus text = the final scrape; JSONL = every
/// ring batch, one line each).

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/alerts.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "util/status.h"

namespace adgraph::obs {

/// \brief Bounded batch ring, overwrite-oldest.  Not internally
/// synchronized — the sampler guards it with its own mutex (and tests
/// drive it single-threaded).
class SampleRing {
 public:
  explicit SampleRing(size_t capacity);

  void Push(SampleBatch batch);
  /// Batches oldest-first.
  std::vector<SampleBatch> Batches() const;
  /// Batches evicted to make room since construction.
  uint64_t dropped() const { return dropped_; }
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  std::vector<SampleBatch> ring_;
  size_t capacity_;
  size_t next_ = 0;  ///< write cursor once full
  uint64_t dropped_ = 0;
};

struct SamplerOptions {
  /// Master switch, mirrored from the embedding option struct; the Sampler
  /// itself is only constructed when true.
  bool enabled = false;
  /// Poll period.  Clamped to >= 1 ms.
  double interval_ms = 100;
  /// Ring capacity in batches (overwrite-oldest beyond this).
  size_t ring_capacity = 600;
  /// If non-empty, the metrics are exported here at Stop().
  std::string path;
  ExportFormat format = ExportFormat::kPrometheus;
  std::vector<AlertRule> alert_rules;
  /// Suppress the stderr line per alert transition (tests).
  bool quiet = false;
};

class Sampler {
 public:
  /// Called on the sampler thread at the start of every tick: refresh
  /// gauges, return the alert-input values.
  using PollFn = std::function<std::map<std::string, double>()>;
  /// Called on the sampler thread for every alert transition.
  using AlertSink = std::function<void(const AlertEvent&)>;

  /// `registry` must outlive the sampler.  The thread starts in Start();
  /// the destructor calls Stop().
  Sampler(const Registry* registry, SamplerOptions options, PollFn poll,
          AlertSink alert_sink = nullptr);
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void Start();
  /// Joins the thread after one final sample, then writes the export file
  /// if configured.  Idempotent.
  void Stop();

  /// Takes one sample synchronously on the calling thread (also what the
  /// background thread does each tick).  Usable before Start or after
  /// Stop; tests drive the whole pipeline through this without timing.
  void SampleNow();

  std::vector<SampleBatch> Batches() const;
  /// Latest batch (empty families when no sample was ever taken).
  SampleBatch Latest() const;
  /// Every alert transition since construction, in order (unbounded, but
  /// transitions are rare by construction — hysteresis dedups flapping).
  std::vector<AlertEvent> AlertLog() const;
  uint64_t samples_taken() const;
  uint64_t dropped() const;
  const std::vector<AlertEngine::RuleState>& alert_states() const {
    return engine_.states();
  }

  /// Writes the current contents in `format` to `path` (on demand; Stop()
  /// does this automatically when options_.path is set).
  Status WriteTo(const std::string& path, ExportFormat format) const;

 private:
  void Loop();

  const Registry* registry_;
  SamplerOptions options_;
  PollFn poll_;
  AlertSink alert_sink_;
  AlertEngine engine_;  ///< touched only under mutex_ (tick + accessors)

  std::chrono::steady_clock::time_point started_at_;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  uint64_t sequence_ = 0;
  SampleRing ring_;
  std::vector<AlertEvent> alert_log_;
};

}  // namespace adgraph::obs

#endif  // ADGRAPH_OBS_SAMPLER_H_
