#include "obs/alerts.h"

#include <sstream>

namespace adgraph::obs {

Result<AlertRule> ParseAlertRule(const std::string& line) {
  std::istringstream in(line);
  AlertRule rule;
  std::string op;
  if (!(in >> rule.metric >> op)) {
    return Status::InvalidArgument("alert rule '" + line +
                                   "': expected 'METRIC OP THRESHOLD [for N]'");
  }
  if (op == ">") {
    rule.op = AlertRule::Op::kGreaterThan;
  } else if (op == "<") {
    rule.op = AlertRule::Op::kLessThan;
  } else {
    return Status::InvalidArgument("alert rule '" + line + "': operator '" +
                                   op + "' is not '>' or '<'");
  }
  if (!(in >> rule.threshold)) {
    return Status::InvalidArgument("alert rule '" + line +
                                   "': threshold is not a number");
  }
  std::string keyword;
  if (in >> keyword) {
    int64_t n = 0;
    if (keyword != "for" || !(in >> n) || n < 1) {
      return Status::InvalidArgument("alert rule '" + line +
                                     "': trailing clause must be 'for N' "
                                     "with N >= 1");
    }
    rule.for_samples = static_cast<uint32_t>(n);
    std::string extra;
    if (in >> extra) {
      return Status::InvalidArgument("alert rule '" + line +
                                     "': unexpected token '" + extra + "'");
    }
  }
  rule.name = rule.metric + " " + op + " " +
              [&] {
                std::ostringstream t;
                t << rule.threshold;
                return t.str();
              }();
  if (rule.for_samples > 1) {
    rule.name += " for " + std::to_string(rule.for_samples);
  }
  return rule;
}

Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text) {
  std::vector<AlertRule> rules;
  std::istringstream in(text);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto rule = ParseAlertRule(line.substr(first));
    if (!rule.ok()) {
      return Status::InvalidArgument("line " + std::to_string(number) + ": " +
                                     rule.status().message());
    }
    rules.push_back(std::move(*rule));
  }
  return rules;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules) {
  states_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    RuleState state;
    if (rule.for_samples < 1) rule.for_samples = 1;
    state.rule = std::move(rule);
    states_.push_back(std::move(state));
  }
}

std::vector<AlertEvent> AlertEngine::Evaluate(
    double ts_ms, const std::map<std::string, double>& values) {
  std::vector<AlertEvent> events;
  for (RuleState& state : states_) {
    auto it = values.find(state.rule.metric);
    if (it == values.end()) continue;
    const double value = it->second;
    const bool breach = state.rule.op == AlertRule::Op::kGreaterThan
                            ? value > state.rule.threshold
                            : value < state.rule.threshold;
    if (breach) {
      state.breach_streak += 1;
      state.ok_streak = 0;
      if (!state.firing && state.breach_streak >= state.rule.for_samples) {
        state.firing = true;
        state.times_fired += 1;
        events.push_back({state.rule.name, state.rule.metric,
                          AlertEvent::State::kFiring, value,
                          state.rule.threshold, ts_ms});
      }
    } else {
      state.breach_streak = 0;
      if (state.firing) {
        state.ok_streak += 1;
        if (state.ok_streak >= state.rule.for_samples) {
          state.firing = false;
          state.ok_streak = 0;
          events.push_back({state.rule.name, state.rule.metric,
                            AlertEvent::State::kResolved, value,
                            state.rule.threshold, ts_ms});
        }
      }
    }
  }
  return events;
}

}  // namespace adgraph::obs
