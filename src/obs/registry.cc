#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

namespace adgraph::obs {

namespace {

/// Shard index for the calling thread: a hashed thread id, stable for the
/// thread's lifetime.  Workers therefore land on (mostly) distinct cache
/// lines without any registration protocol.
size_t ThisThreadShard(size_t num_shards) {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shard % num_shards;
}

/// Canonical map key of a label set: sorted `k=v` joined by \x1f (a byte
/// that cannot appear in a well-formed label, so keys never collide).
std::string LabelKey(const LabelSet& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

// --- Counter ---------------------------------------------------------------

void Counter::Increment(uint64_t n) {
  shards_[ThisThreadShard(kShards)].value.fetch_add(n,
                                                    std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Gauge -----------------------------------------------------------------

void Gauge::Add(double d) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + d,
                                       std::memory_order_relaxed)) {
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(const HistogramOptions& options) {
  const size_t n = std::max<size_t>(options.num_buckets, 1);
  const double growth = options.growth > 1.0 ? options.growth : 2.0;
  double bound = options.first_bound > 0 ? options.first_bound : 0.001;
  bounds_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  // n finite buckets + the +Inf overflow bucket.
  for (size_t i = 0; i < n + 1; ++i) buckets_.emplace_back(0);
}

void Histogram::Observe(double v) {
  const size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snapshot.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bounds.empty()) {
    *this = other;
    return;
  }
  if (other.bounds != bounds || other.counts.size() != counts.size()) return;
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      if (i + 1 == counts.size()) {
        // +Inf bucket: the best finite statement is the largest bound.
        return bounds.empty() ? 0 : bounds.back();
      }
      const double upper = bounds[i];
      const double lower = i == 0 ? 0 : bounds[i - 1];
      const uint64_t below = cumulative - counts[i];
      const double within =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

// --- Registry --------------------------------------------------------------

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const std::string& help,
                                      MetricKind kind, LabelSet labels,
                                      const HistogramOptions& options) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = nullptr;
  auto it = family_index_.find(name);
  if (it != family_index_.end()) {
    family = &families_[it->second];
    if (family->kind != kind) return nullptr;
  } else {
    family_index_[name] = families_.size();
    families_.emplace_back();
    family = &families_.back();
    family->name = name;
    family->help = help;
    family->kind = kind;
    family->histogram_options = options;
  }
  const std::string key = LabelKey(labels);
  auto series_it = family->by_label.find(key);
  if (series_it != family->by_label.end()) {
    return &family->series[series_it->second];
  }
  family->by_label[key] = family->series.size();
  family->series.emplace_back();
  Series* series = &family->series.back();
  series->labels = std::move(labels);
  if (kind == MetricKind::kHistogram) {
    series->histogram = std::make_unique<Histogram>(family->histogram_options);
  }
  return series;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              LabelSet labels) {
  Series* series =
      GetSeries(name, help, MetricKind::kCounter, std::move(labels), {});
  return series != nullptr ? &series->counter : nullptr;
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          LabelSet labels) {
  Series* series =
      GetSeries(name, help, MetricKind::kGauge, std::move(labels), {});
  return series != nullptr ? &series->gauge : nullptr;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help, LabelSet labels,
                                  const HistogramOptions& options) {
  Series* series =
      GetSeries(name, help, MetricKind::kHistogram, std::move(labels), options);
  return series != nullptr ? series->histogram.get() : nullptr;
}

std::vector<FamilySnapshot> Registry::Scrape() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> snapshot;
  snapshot.reserve(families_.size());
  for (const Family& family : families_) {
    FamilySnapshot fs;
    fs.name = family.name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.series.reserve(family.series.size());
    for (const Series& series : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.value = static_cast<double>(series.counter.Value());
          break;
        case MetricKind::kGauge:
          ss.value = series.gauge.Value();
          break;
        case MetricKind::kHistogram:
          ss.histogram = series.histogram->Snapshot();
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    snapshot.push_back(std::move(fs));
  }
  return snapshot;
}

size_t Registry::num_families() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

}  // namespace adgraph::obs
