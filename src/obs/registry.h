#ifndef ADGRAPH_OBS_REGISTRY_H_
#define ADGRAPH_OBS_REGISTRY_H_

/// \file
/// Live metrics registry (DESIGN.md §2.9): typed, labeled metric families
/// — monotonic Counter, Gauge, fixed-exponential-bucket Histogram — built
/// for cheap concurrent updates from the serve pool's worker threads.
///
/// Concurrency model: registration (rare) takes the registry mutex;
/// updates (hot path, once per job or per queue transition) touch only
/// relaxed atomics — counters additionally spread across cache-line-padded
/// per-thread shards that are merged at scrape time, so eight workers
/// bumping the same family never contend on one line.  Scrape() walks the
/// families under the mutex reading the atomics, which makes a concurrent
/// scrape during a job storm safe (and ThreadSanitizer-clean) by
/// construction.
///
/// Handles returned by Get*() are stable for the registry's lifetime
/// (deque storage, never reallocated); callers cache the pointer once and
/// update lock-free forever after — the Prometheus client-library usage
/// pattern.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adgraph::obs {

/// One metric series' identity within a family: sorted key/value pairs,
/// e.g. {{"algo","bfs"},{"device","A100"},{"worker","2"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter, sharded across cache-line-padded atomic cells
/// keyed by thread id; Value() merges the shards.
class Counter {
 public:
  void Increment(uint64_t n = 1);
  /// Sum over all shards.  Monotonic between calls as long as callers only
  /// Increment (the class offers nothing else).
  uint64_t Value() const;

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// \brief Last-value gauge.  Set/Add are single relaxed atomics (gauges are
/// refreshed by one sampler or owned by one worker; sharding would only
/// blur "last value" semantics).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Bucket layout of a Histogram: upper bounds grow exponentially,
/// bound[i] = first_bound * growth^i, with an implicit +Inf bucket after
/// the last — fixed memory regardless of how many observations arrive
/// (the reason the scheduler's latency path uses this instead of an
/// unbounded sample vector).
struct HistogramOptions {
  double first_bound = 0.001;  ///< upper bound of bucket 0 (e.g. ms)
  double growth = 2.0;         ///< ratio between consecutive bounds (>1)
  size_t num_buckets = 26;     ///< finite buckets (excludes +Inf)
};

/// Bucket layout for [0,1]-valued ratio observations (divergence,
/// efficiency, hit-rate, occupancy — the adgraph_job_* series): 1/64 to 1
/// in doubling buckets, fine enough to tell a divergence-bound kernel mix
/// from a coalesced one at a glance.
inline HistogramOptions RatioBuckets() {
  HistogramOptions options;
  options.first_bound = 1.0 / 64;
  options.growth = 2.0;
  options.num_buckets = 7;
  return options;
}

/// Point-in-time copy of a histogram's state.  Also the merge unit: two
/// snapshots with identical bounds (e.g. per-worker latency histograms)
/// add together into a pool-wide distribution.
struct HistogramSnapshot {
  std::vector<double> bounds;     ///< finite upper bounds, ascending
  std::vector<uint64_t> counts;   ///< bounds.size()+1 entries; last = +Inf
  uint64_t count = 0;             ///< total observations
  double sum = 0;                 ///< sum of observed values

  /// Adds `other` in (bounds must match; mismatched layouts are a
  /// programming error and are ignored).
  void Merge(const HistogramSnapshot& other);

  /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket holding rank ceil(q*count) — the standard Prometheus
  /// histogram_quantile estimate.  0 when empty; observations in the +Inf
  /// bucket clamp to the largest finite bound.
  double Quantile(double q) const;
};

/// \brief Fixed-exponential-bucket histogram.  Observe() is two relaxed
/// atomic adds (bucket + sum); bucket search is a branch-free walk of the
/// precomputed bounds.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// bounds_.size()+1 cells; the extra one is +Inf.
  std::deque<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Scrape-time copy of one labeled series.
struct SeriesSnapshot {
  LabelSet labels;
  double value = 0;               ///< counter / gauge value
  HistogramSnapshot histogram;    ///< populated for histogram families
};

/// Scrape-time copy of one metric family (all series sharing a name).
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// \brief The registry: owns every family and series, hands out stable
/// update handles, and produces consistent-enough snapshots on demand.
///
/// Families appear in Scrape() output in registration order (so a
/// `build_info` gauge registered first leads every exposition), series
/// within a family likewise.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the series handle for (name, labels), creating family and/or
  /// series on first use.  `help` is recorded on family creation and
  /// ignored afterwards.  Returns nullptr if `name` already names a family
  /// of a different kind (a programming error surfaced softly).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      LabelSet labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  LabelSet labels = {});
  /// `options` applies on family creation; later calls reuse the family's
  /// layout (so every series of a family merges cleanly).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          LabelSet labels = {},
                          const HistogramOptions& options = {});

  /// Copies every family and series.  Safe to call while workers update
  /// handles concurrently; each value is an atomic read (counters sum
  /// their shards), so a scrape is per-series consistent.
  std::vector<FamilySnapshot> Scrape() const;

  size_t num_families() const;

 private:
  struct Series {
    LabelSet labels;
    // Exactly one is populated, per the family kind.  deque-stored so the
    // pointers handed out stay valid as series are added.
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    HistogramOptions histogram_options;
    std::deque<Series> series;              ///< registration order
    std::map<std::string, size_t> by_label; ///< canonical label key -> index
  };

  Series* GetSeries(const std::string& name, const std::string& help,
                    MetricKind kind, LabelSet labels,
                    const HistogramOptions& options);

  mutable std::mutex mutex_;
  std::deque<Family> families_;             ///< registration order
  std::map<std::string, size_t> family_index_;
};

}  // namespace adgraph::obs

#endif  // ADGRAPH_OBS_REGISTRY_H_
