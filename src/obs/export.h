#ifndef ADGRAPH_OBS_EXPORT_H_
#define ADGRAPH_OBS_EXPORT_H_

/// \file
/// Metric exposition formats (DESIGN.md §2.9):
///
///   - Prometheus text exposition — what a /metrics endpoint serves; one
///     `# HELP` / `# TYPE` header per family, one sample line per series,
///     histograms expanded into the `_bucket`/`_sum`/`_count` triplet with
///     cumulative `le` buckets ending in `+Inf`.
///   - JSONL — one complete sample batch (a timestamped scrape plus any
///     alert transitions) per line, so a million-sample run stays
///     streamable with `jq`/pandas and an interrupted run stays parseable
///     up to its last full line.

#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/registry.h"
#include "util/status.h"

namespace adgraph::obs {

enum class ExportFormat { kPrometheus, kJsonl };

/// "prom" / "jsonl" <-> ExportFormat (CLI flag surface).
Result<ExportFormat> ParseExportFormat(const std::string& name);

/// One timestamped scrape: what the sampler pushes into its ring each
/// tick.  `alerts` holds only the transitions (fired/resolved) that
/// happened on this tick, not steady state.
struct SampleBatch {
  uint64_t sequence = 0;   ///< monotone tick number (survives ring wrap)
  double ts_ms = 0;        ///< milliseconds since the sampler started
  std::vector<FamilySnapshot> families;
  std::vector<AlertEvent> alerts;
};

/// Prometheus label-value escaping: backslash, double-quote and newline.
std::string EscapeLabelValue(const std::string& value);

/// Renders families in Prometheus text exposition format (version 0.0.4).
/// Families appear in the given order — scrapes put `build_info` first.
std::string ToPrometheusText(const std::vector<FamilySnapshot>& families);

/// Renders one sample batch as a single JSON line (no trailing newline).
std::string ToJsonLine(const SampleBatch& batch);

/// Writes `content` to `path`, failing with kIOError on an unopenable or
/// short write.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace adgraph::obs

#endif  // ADGRAPH_OBS_EXPORT_H_
