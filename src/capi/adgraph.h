#ifndef ADGRAPH_CAPI_ADGRAPH_H_
#define ADGRAPH_CAPI_ADGRAPH_H_

/// \file
/// nvGRAPH-compatible C API facade.
///
/// The paper's artifact is a C-API library (nvGRAPH and its ROCm-like port
/// adGRAPH); this header mirrors that surface over the simulated devices,
/// so code written against the original handle-based style ports with a
/// rename — the same exercise the paper performed, one level up.
///
/// Usage mirrors nvGRAPH:
///   adgraphHandle_t handle;
///   adgraphCreate(&handle, "Z100L");
///   adgraphGraphDescr_t graph;
///   adgraphCreateGraphDescr(handle, &graph);
///   adgraphSetGraphStructure(handle, graph, n, nnz, row_offsets, col_idx);
///   adgraphTraversalBfs(handle, graph, source, levels_out);
///   ...
///   adgraphDestroyGraphDescr(handle, graph);
///   adgraphDestroy(handle);
///
/// All functions return adgraphStatus_t; ADGRAPH_STATUS_SUCCESS is 0.
/// Handles are opaque; every allocation is owned by the library and
/// released by the matching Destroy call.

#include <stddef.h>  // NOLINT(modernize-deprecated-headers): C API
#include <stdint.h>  // NOLINT(modernize-deprecated-headers): C API

#ifdef __cplusplus
extern "C" {
#endif

typedef enum {
  ADGRAPH_STATUS_SUCCESS = 0,
  ADGRAPH_STATUS_NOT_INITIALIZED = 1,
  ADGRAPH_STATUS_ALLOC_FAILED = 2,
  ADGRAPH_STATUS_INVALID_VALUE = 3,
  ADGRAPH_STATUS_INTERNAL_ERROR = 4,
} adgraphStatus_t;

typedef struct adgraphContext* adgraphHandle_t;
typedef struct adgraphGraphDescrStruct* adgraphGraphDescr_t;

/// Human-readable status name ("ADGRAPH_STATUS_SUCCESS", ...).
const char* adgraphStatusGetString(adgraphStatus_t status);

/// Creates a library context bound to one simulated GPU ("Z100", "V100",
/// "Z100L" or "A100"; NULL selects A100).
adgraphStatus_t adgraphCreate(adgraphHandle_t* handle, const char* gpu_name);
adgraphStatus_t adgraphDestroy(adgraphHandle_t handle);

/// Modeled device time accumulated on the context's GPU (milliseconds).
adgraphStatus_t adgraphGetDeviceTimeMs(adgraphHandle_t handle,
                                       double* time_ms);

adgraphStatus_t adgraphCreateGraphDescr(adgraphHandle_t handle,
                                        adgraphGraphDescr_t* descr);
adgraphStatus_t adgraphDestroyGraphDescr(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr);

/// Sets CSR topology: row_offsets has num_vertices+1 entries (the last
/// equals num_edges), col_indices has num_edges entries.  Arrays are
/// copied.
adgraphStatus_t adgraphSetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t num_vertices,
                                         uint64_t num_edges,
                                         const uint64_t* row_offsets,
                                         const uint32_t* col_indices);

/// Attaches FP64 edge weights (num_edges entries, CSR order); required by
/// extraction, SSSP and widest path over weighted semantics.
adgraphStatus_t adgraphSetEdgeWeights(adgraphHandle_t handle,
                                      adgraphGraphDescr_t descr,
                                      const double* weights);

/// BFS levels from `source` into `levels_out` (num_vertices entries;
/// UINT32_MAX marks unreachable).  Pass nonzero `assume_symmetric` to
/// enable the direction-optimizing path on undirected graphs.
adgraphStatus_t adgraphTraversalBfs(adgraphHandle_t handle,
                                    adgraphGraphDescr_t descr,
                                    uint32_t source, int assume_symmetric,
                                    uint32_t* levels_out);

/// Triangle count of the undirected interpretation.
adgraphStatus_t adgraphTriangleCount(adgraphHandle_t handle,
                                     adgraphGraphDescr_t descr,
                                     uint64_t* triangles_out);

/// PageRank with damping `alpha`, at most `max_iterations` rounds, into
/// ranks_out (num_vertices entries).
adgraphStatus_t adgraphPagerank(adgraphHandle_t handle,
                                adgraphGraphDescr_t descr, double alpha,
                                uint32_t max_iterations, double* ranks_out);

/// Single-source shortest paths into distances_out (num_vertices entries;
/// +infinity marks unreachable).
adgraphStatus_t adgraphSssp(adgraphHandle_t handle, adgraphGraphDescr_t descr,
                            uint32_t source, double* distances_out);

/// Single-source widest (bottleneck) paths into widths_out.
adgraphStatus_t adgraphWidestPath(adgraphHandle_t handle,
                                  adgraphGraphDescr_t descr, uint32_t source,
                                  double* widths_out);

/// Vertex-induced subgraph extraction (weights required, as in the paper).
/// The result is written into `subgraph`, which must be a fresh descriptor
/// from adgraphCreateGraphDescr.
adgraphStatus_t adgraphExtractSubgraphByVertex(adgraphHandle_t handle,
                                               adgraphGraphDescr_t descr,
                                               adgraphGraphDescr_t subgraph,
                                               const uint32_t* vertices,
                                               size_t num_vertices);

/// Reads back a descriptor's shape (any pointer may be NULL).
adgraphStatus_t adgraphGetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t* num_vertices,
                                         uint64_t* num_edges,
                                         uint64_t* row_offsets,
                                         uint32_t* col_indices);

#ifdef __cplusplus
}  // extern "C"
#endif

#endif  // ADGRAPH_CAPI_ADGRAPH_H_
