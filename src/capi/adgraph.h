#ifndef ADGRAPH_CAPI_ADGRAPH_H_
#define ADGRAPH_CAPI_ADGRAPH_H_

/// \file
/// nvGRAPH-compatible C API facade.
///
/// The paper's artifact is a C-API library (nvGRAPH and its ROCm-like port
/// adGRAPH); this header mirrors that surface over the simulated devices,
/// so code written against the original handle-based style ports with a
/// rename — the same exercise the paper performed, one level up.
///
/// Usage mirrors nvGRAPH:
///   adgraphHandle_t handle;
///   adgraphCreate(&handle, "Z100L");
///   adgraphGraphDescr_t graph;
///   adgraphCreateGraphDescr(handle, &graph);
///   adgraphSetGraphStructure(handle, graph, n, nnz, row_offsets, col_idx);
///   adgraphTraversalBfs(handle, graph, source, levels_out);
///   ...
///   adgraphDestroyGraphDescr(handle, graph);
///   adgraphDestroy(handle);
///
/// All functions return adgraphStatus_t; ADGRAPH_STATUS_SUCCESS is 0.
/// Handles are opaque; every allocation is owned by the library and
/// released by the matching Destroy call.
///
/// ## API v2 — error surface
///
/// v2 widens the status enum so every library error category crosses the C
/// boundary losslessly (v1 folded most failures into INVALID_VALUE).  The
/// v1 values 0..4 are frozen — code compiled against v1 keeps working —
/// and v2 adds values 5..12, including GRAPH_TYPE_MISMATCH for the
/// nvGRAPH-style "this graph lacks the structure/weights this call needs"
/// verdict.  Each failing call also records a human-readable message on
/// the handle, retrievable with adgraphGetLastErrorString() until the next
/// call on that handle (per-handle, not thread-safe: callers sharing a
/// handle across threads must serialize, as in nvGRAPH).

#include <stddef.h>  // NOLINT(modernize-deprecated-headers): C API
#include <stdint.h>  // NOLINT(modernize-deprecated-headers): C API

/// Library version, bumped with the v2 error-surface redesign.  Additions
/// bump MINOR; existing symbols and enum values stay stable within MAJOR 2.
#define ADGRAPH_VERSION_MAJOR 2
#define ADGRAPH_VERSION_MINOR 4
#define ADGRAPH_VERSION_PATCH 0

#ifdef __cplusplus
extern "C" {
#endif

typedef enum {
  /* v1 values — frozen, do not renumber. */
  ADGRAPH_STATUS_SUCCESS = 0,
  ADGRAPH_STATUS_NOT_INITIALIZED = 1,
  ADGRAPH_STATUS_ALLOC_FAILED = 2,      /**< simulated device memory exhausted */
  ADGRAPH_STATUS_INVALID_VALUE = 3,
  ADGRAPH_STATUS_INTERNAL_ERROR = 4,
  /* v2 additions — one value per library StatusCode. */
  ADGRAPH_STATUS_NOT_FOUND = 5,         /**< unknown GPU / algorithm / entity */
  ADGRAPH_STATUS_ALREADY_EXISTS = 6,    /**< e.g. a trace window already open */
  ADGRAPH_STATUS_OUT_OF_RANGE = 7,      /**< index past the graph's bounds */
  ADGRAPH_STATUS_UNSUPPORTED = 8,       /**< unimplemented operation variant */
  ADGRAPH_STATUS_IO_ERROR = 9,          /**< file read/write failed */
  ADGRAPH_STATUS_DEADLOCK = 10,         /**< kernel barrier deadlock detected */
  ADGRAPH_STATUS_RESOURCE_EXHAUSTED = 11, /**< serving-layer resource limit */
  ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH = 12, /**< graph lacks required
                                                structure or weights */
  ADGRAPH_STATUS_UNAVAILABLE = 13,      /**< serving layer is shut down */
  ADGRAPH_STATUS_DEADLINE_EXCEEDED = 14, /**< job shed: its deadline passed
                                              while it waited in the queue */
  ADGRAPH_STATUS_FAILED_PRECONDITION = 15, /**< well-formed request, but the
                                                system state cannot satisfy it
                                                (e.g. a pull-only traversal
                                                without a symmetric
                                                adjacency) */
  /* v2.3 addition. */
  ADGRAPH_STATUS_CANCELLED = 16,        /**< job cancelled by its submitter */
} adgraphStatus_t;

typedef struct adgraphContext* adgraphHandle_t;
typedef struct adgraphGraphDescrStruct* adgraphGraphDescr_t;

/// Human-readable status name ("ADGRAPH_STATUS_SUCCESS", ...).
const char* adgraphStatusGetString(adgraphStatus_t status);

/// Writes the library version (any pointer may be NULL).
adgraphStatus_t adgraphGetVersion(int* major, int* minor, int* patch);

/// The documented StatusCode -> adgraphStatus_t mapping (the one table the
/// whole C layer routes through).  `status_code` is a numeric
/// adgraph::StatusCode; unknown values map to INTERNAL_ERROR.  Exposed so
/// bindings and tests can rely on the mapping as a stable contract.
adgraphStatus_t adgraphStatusFromStatusCode(int status_code);

/// Human-readable detail of the most recent failing call on `handle`; ""
/// when the most recent call succeeded (or `handle` is NULL).  The pointer
/// is owned by the handle and valid until the next API call on it.
const char* adgraphGetLastErrorString(adgraphHandle_t handle);

/// Opens the process-global tracing window and arranges for the Chrome
/// trace-event JSON to be written to `path` when the window closes —
/// explicitly via a NULL `path`, or implicitly at adgraphDestroy().
/// ALREADY_EXISTS if a trace window is already open.
adgraphStatus_t adgraphSetTraceFile(adgraphHandle_t handle, const char* path);

/// Creates a library context bound to one simulated GPU ("Z100", "V100",
/// "Z100L" or "A100"; NULL selects A100).  NOT_FOUND for any other name
/// (v1 returned INVALID_VALUE here).
adgraphStatus_t adgraphCreate(adgraphHandle_t* handle, const char* gpu_name);
adgraphStatus_t adgraphDestroy(adgraphHandle_t handle);

/// Modeled device time accumulated on the context's GPU (milliseconds).
adgraphStatus_t adgraphGetDeviceTimeMs(adgraphHandle_t handle,
                                       double* time_ms);

adgraphStatus_t adgraphCreateGraphDescr(adgraphHandle_t handle,
                                        adgraphGraphDescr_t* descr);
adgraphStatus_t adgraphDestroyGraphDescr(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr);

/// Sets CSR topology: row_offsets has num_vertices+1 entries (the last
/// equals num_edges), col_indices has num_edges entries.  Arrays are
/// copied.
adgraphStatus_t adgraphSetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t num_vertices,
                                         uint64_t num_edges,
                                         const uint64_t* row_offsets,
                                         const uint32_t* col_indices);

/// Attaches FP64 edge weights (num_edges entries, CSR order); required by
/// extraction, SSSP and widest path over weighted semantics.
adgraphStatus_t adgraphSetEdgeWeights(adgraphHandle_t handle,
                                      adgraphGraphDescr_t descr,
                                      const double* weights);

/// BFS levels from `source` into `levels_out` (num_vertices entries;
/// UINT32_MAX marks unreachable).  Pass nonzero `assume_symmetric` to
/// enable the direction-optimizing path on undirected graphs.
///
/// Like every traversal below: GRAPH_TYPE_MISMATCH when the descriptor has
/// no structure yet, OUT_OF_RANGE when `source >= num_vertices`.
adgraphStatus_t adgraphTraversalBfs(adgraphHandle_t handle,
                                    adgraphGraphDescr_t descr,
                                    uint32_t source, int assume_symmetric,
                                    uint32_t* levels_out);

/// Triangle count of the undirected interpretation.
adgraphStatus_t adgraphTriangleCount(adgraphHandle_t handle,
                                     adgraphGraphDescr_t descr,
                                     uint64_t* triangles_out);

/// PageRank with damping `alpha`, at most `max_iterations` rounds, into
/// ranks_out (num_vertices entries).
adgraphStatus_t adgraphPagerank(adgraphHandle_t handle,
                                adgraphGraphDescr_t descr, double alpha,
                                uint32_t max_iterations, double* ranks_out);

/// Single-source shortest paths into distances_out (num_vertices entries;
/// +infinity marks unreachable).
adgraphStatus_t adgraphSssp(adgraphHandle_t handle, adgraphGraphDescr_t descr,
                            uint32_t source, double* distances_out);

/// Single-source widest (bottleneck) paths into widths_out.
adgraphStatus_t adgraphWidestPath(adgraphHandle_t handle,
                                  adgraphGraphDescr_t descr, uint32_t source,
                                  double* widths_out);

/// Vertex-induced subgraph extraction (weights required, as in the paper;
/// GRAPH_TYPE_MISMATCH on an unweighted descriptor).  The result is
/// written into `subgraph`, which must be a fresh descriptor from
/// adgraphCreateGraphDescr.
adgraphStatus_t adgraphExtractSubgraphByVertex(adgraphHandle_t handle,
                                               adgraphGraphDescr_t descr,
                                               adgraphGraphDescr_t subgraph,
                                               const uint32_t* vertices,
                                               size_t num_vertices);

/// One edge mutation for adgraphApplyEdgeUpdates (v2.3).
typedef struct {
  uint32_t src;
  uint32_t dst;
  double weight;   /**< ignored for removals and on unweighted graphs */
  int32_t remove;  /**< nonzero = delete the edge instead of inserting */
} adgraphEdgeUpdate_t;

/// Applies edge insertions/deletions to the descriptor's graph in order
/// (v2.3).  The vertex set is fixed: OUT_OF_RANGE if any update names a
/// vertex >= num_vertices (updates before the offender are kept).
/// Duplicate inserts are keep-first no-ops and self loops are legal — the
/// library-wide normalization policy.  The descriptor's graph must be in
/// normal form (neighbor-sorted, duplicate-free), which every library
/// construction path produces; INVALID_VALUE otherwise.  `version_out`
/// (may be NULL) receives the graph's monotonic mutation version, which
/// increments once per update that actually changed the edge set.
adgraphStatus_t adgraphApplyEdgeUpdates(adgraphHandle_t handle,
                                        adgraphGraphDescr_t descr,
                                        const adgraphEdgeUpdate_t* updates,
                                        size_t num_updates,
                                        uint64_t* version_out);

/// Per-run kernel attribution (v2.4): the counters and Table 6–style
/// derived ratios of the kernel launches made by the most recent algorithm
/// call on this handle — the C-surface view of the serving layer's
/// per-job "profile" object (DESIGN.md §2.14).
typedef struct {
  uint64_t num_kernels;           /**< launches in the last run's window */
  double total_ms;                /**< modeled device time of the window */
  double total_cycles;
  uint64_t warp_inst_issued;
  uint64_t branches;
  uint64_t divergent_branches;
  uint64_t dram_bytes;            /**< modeled DRAM read+write traffic */
  double divergent_branch_ratio;  /**< divergent / executed branches */
  double gld_efficiency;          /**< requested / transferred load bytes */
  double gst_efficiency;          /**< requested / transferred store bytes */
  double l1_hit_rate;
  double l2_hit_rate;
  double achieved_occupancy;      /**< time-weighted, [0,1] */
  double exposed_latency_cycles;  /**< unhidden memory latency */
} adgraphJobProfile_t;

/// Fills `profile_out` with the attribution of the most recent algorithm
/// call on this handle (v2.4).  Before any algorithm ran — or after a
/// failed call that launched nothing — the window is empty and every
/// field is zero except the efficiency ratios, which default to 1.
adgraphStatus_t adgraphGetJobProfile(adgraphHandle_t handle,
                                     adgraphJobProfile_t* profile_out);

/// Reads back a descriptor's shape (any pointer may be NULL).
adgraphStatus_t adgraphGetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t* num_vertices,
                                         uint64_t* num_edges,
                                         uint64_t* row_offsets,
                                         uint32_t* col_indices);

#ifdef __cplusplus
}  // extern "C"
#endif

#endif  // ADGRAPH_CAPI_ADGRAPH_H_
