#include "capi/adgraph.h"

#include <memory>
#include <string>
#include <vector>

#include "core/api.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "prof/metrics.h"
#include "trace/trace.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

// Opaque handle definitions.  C linkage callers only see the pointers.
struct adgraphContext {
  std::unique_ptr<adgraph::vgpu::Device> device;
  /// Detail of the most recent failing call on this handle; cleared by the
  /// next successful call.  Per-handle, so callers sharing a handle across
  /// threads must serialize (documented in the header).
  std::string last_error;
  /// Non-empty while this handle holds the global trace window open; the
  /// JSON is flushed at adgraphDestroy if the caller never closed it.
  std::string trace_path;
  /// Kernel-log position when the most recent algorithm call started; the
  /// window [last_run_start, log.size()) is what adgraphGetJobProfile
  /// attributes (v2.4).
  size_t last_run_start = 0;
};

struct adgraphGraphDescrStruct {
  adgraph::graph::CsrGraph graph;
  bool has_structure = false;
  /// Lazily created by adgraphApplyEdgeUpdates; reset whenever the
  /// structure or weights are replaced wholesale.
  std::unique_ptr<adgraph::graph::DeltaGraph> delta;
};

namespace {

using adgraph::Status;
using adgraph::StatusCode;

/// The one StatusCode -> adgraphStatus_t table (also exported as
/// adgraphStatusFromStatusCode).  Every library error category has its own
/// C value in v2; the switch is exhaustive so a new StatusCode fails to
/// compile until mapped here.
adgraphStatus_t ToC(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return ADGRAPH_STATUS_SUCCESS;
    case StatusCode::kInvalidArgument:
      return ADGRAPH_STATUS_INVALID_VALUE;
    case StatusCode::kOutOfMemory:
      return ADGRAPH_STATUS_ALLOC_FAILED;
    case StatusCode::kNotFound:
      return ADGRAPH_STATUS_NOT_FOUND;
    case StatusCode::kAlreadyExists:
      return ADGRAPH_STATUS_ALREADY_EXISTS;
    case StatusCode::kOutOfRange:
      return ADGRAPH_STATUS_OUT_OF_RANGE;
    case StatusCode::kUnimplemented:
      return ADGRAPH_STATUS_UNSUPPORTED;
    case StatusCode::kInternal:
      return ADGRAPH_STATUS_INTERNAL_ERROR;
    case StatusCode::kIOError:
      return ADGRAPH_STATUS_IO_ERROR;
    case StatusCode::kDeadlock:
      return ADGRAPH_STATUS_DEADLOCK;
    case StatusCode::kResourceExhausted:
      return ADGRAPH_STATUS_RESOURCE_EXHAUSTED;
    case StatusCode::kUnavailable:
      return ADGRAPH_STATUS_UNAVAILABLE;
    case StatusCode::kDeadlineExceeded:
      return ADGRAPH_STATUS_DEADLINE_EXCEEDED;
    case StatusCode::kFailedPrecondition:
      return ADGRAPH_STATUS_FAILED_PRECONDITION;
    case StatusCode::kCancelled:
      return ADGRAPH_STATUS_CANCELLED;
  }
  return ADGRAPH_STATUS_INTERNAL_ERROR;
}

bool Ready(adgraphHandle_t handle) {
  return handle != nullptr && handle->device != nullptr;
}

bool HasStructure(adgraphGraphDescr_t descr) {
  return descr != nullptr && descr->has_structure;
}

/// Records `message` as the handle's last error and returns `code`.
adgraphStatus_t Fail(adgraphHandle_t handle, adgraphStatus_t code,
                     std::string message) {
  if (handle != nullptr) handle->last_error = std::move(message);
  return code;
}

adgraphStatus_t Fail(adgraphHandle_t handle, const Status& status) {
  return Fail(handle, ToC(status.code()), status.ToString());
}

/// Clears the handle's last error and returns SUCCESS.
adgraphStatus_t Succeed(adgraphHandle_t handle) {
  if (handle != nullptr) handle->last_error.clear();
  return ADGRAPH_STATUS_SUCCESS;
}

/// GRAPH_TYPE_MISMATCH with a uniform message for structureless descriptors.
adgraphStatus_t NoStructure(adgraphHandle_t handle, const char* op) {
  return Fail(handle, ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH,
              std::string(op) +
                  ": graph descriptor has no structure "
                  "(call adgraphSetGraphStructure first)");
}

/// Opens the attribution window of adgraphGetJobProfile: every algorithm
/// entry point calls this once its arguments validate, so the window covers
/// exactly the launches of the most recent run.
void BeginRun(adgraphHandle_t handle) {
  handle->last_run_start = handle->device->kernel_log().size();
}

}  // namespace

extern "C" {

const char* adgraphStatusGetString(adgraphStatus_t status) {
  switch (status) {
    case ADGRAPH_STATUS_SUCCESS:
      return "ADGRAPH_STATUS_SUCCESS";
    case ADGRAPH_STATUS_NOT_INITIALIZED:
      return "ADGRAPH_STATUS_NOT_INITIALIZED";
    case ADGRAPH_STATUS_ALLOC_FAILED:
      return "ADGRAPH_STATUS_ALLOC_FAILED";
    case ADGRAPH_STATUS_INVALID_VALUE:
      return "ADGRAPH_STATUS_INVALID_VALUE";
    case ADGRAPH_STATUS_INTERNAL_ERROR:
      return "ADGRAPH_STATUS_INTERNAL_ERROR";
    case ADGRAPH_STATUS_NOT_FOUND:
      return "ADGRAPH_STATUS_NOT_FOUND";
    case ADGRAPH_STATUS_ALREADY_EXISTS:
      return "ADGRAPH_STATUS_ALREADY_EXISTS";
    case ADGRAPH_STATUS_OUT_OF_RANGE:
      return "ADGRAPH_STATUS_OUT_OF_RANGE";
    case ADGRAPH_STATUS_UNSUPPORTED:
      return "ADGRAPH_STATUS_UNSUPPORTED";
    case ADGRAPH_STATUS_IO_ERROR:
      return "ADGRAPH_STATUS_IO_ERROR";
    case ADGRAPH_STATUS_DEADLOCK:
      return "ADGRAPH_STATUS_DEADLOCK";
    case ADGRAPH_STATUS_RESOURCE_EXHAUSTED:
      return "ADGRAPH_STATUS_RESOURCE_EXHAUSTED";
    case ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH:
      return "ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH";
    case ADGRAPH_STATUS_UNAVAILABLE:
      return "ADGRAPH_STATUS_UNAVAILABLE";
    case ADGRAPH_STATUS_DEADLINE_EXCEEDED:
      return "ADGRAPH_STATUS_DEADLINE_EXCEEDED";
    case ADGRAPH_STATUS_FAILED_PRECONDITION:
      return "ADGRAPH_STATUS_FAILED_PRECONDITION";
    case ADGRAPH_STATUS_CANCELLED:
      return "ADGRAPH_STATUS_CANCELLED";
  }
  return "ADGRAPH_STATUS_UNKNOWN";
}

adgraphStatus_t adgraphGetVersion(int* major, int* minor, int* patch) {
  if (major != nullptr) *major = ADGRAPH_VERSION_MAJOR;
  if (minor != nullptr) *minor = ADGRAPH_VERSION_MINOR;
  if (patch != nullptr) *patch = ADGRAPH_VERSION_PATCH;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphStatusFromStatusCode(int status_code) {
  if (status_code < static_cast<int>(StatusCode::kOk) ||
      status_code > static_cast<int>(StatusCode::kCancelled)) {
    return ADGRAPH_STATUS_INTERNAL_ERROR;
  }
  return ToC(static_cast<StatusCode>(status_code));
}

const char* adgraphGetLastErrorString(adgraphHandle_t handle) {
  if (handle == nullptr) return "";
  return handle->last_error.c_str();
}

adgraphStatus_t adgraphCreate(adgraphHandle_t* handle, const char* gpu_name) {
  if (handle == nullptr) return ADGRAPH_STATUS_INVALID_VALUE;
  const adgraph::vgpu::ArchConfig* arch = &adgraph::vgpu::A100Config();
  if (gpu_name != nullptr) {
    bool found = false;
    for (const auto* gpu : adgraph::vgpu::PaperGpus()) {
      if (gpu->name == gpu_name) {
        arch = gpu;
        found = true;
      }
    }
    if (!found) return ADGRAPH_STATUS_NOT_FOUND;
  }
  auto* context = new adgraphContext();
  context->device = std::make_unique<adgraph::vgpu::Device>(*arch);
  *handle = context;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphDestroy(adgraphHandle_t handle) {
  if (handle == nullptr) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!handle->trace_path.empty()) {
    // The caller opened a trace window through this handle and never
    // closed it; flush the JSON on the way out (best-effort).
    Status stop_status = adgraph::trace::Stop();
    (void)stop_status;
  }
  delete handle;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphSetTraceFile(adgraphHandle_t handle, const char* path) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (path == nullptr) {
    handle->trace_path.clear();
    Status status = adgraph::trace::Stop();
    if (!status.ok()) return Fail(handle, status);
    return Succeed(handle);
  }
  adgraph::trace::TraceOptions options;
  options.enabled = true;
  options.path = path;
  Status status = adgraph::trace::Start(std::move(options));
  if (!status.ok()) return Fail(handle, status);
  handle->trace_path = path;
  return Succeed(handle);
}

adgraphStatus_t adgraphGetDeviceTimeMs(adgraphHandle_t handle,
                                       double* time_ms) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (time_ms == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphGetDeviceTimeMs: time_ms is NULL");
  }
  *time_ms = handle->device->elapsed_ms();
  return Succeed(handle);
}

adgraphStatus_t adgraphCreateGraphDescr(adgraphHandle_t handle,
                                        adgraphGraphDescr_t* descr) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphCreateGraphDescr: descr is NULL");
  }
  *descr = new adgraphGraphDescrStruct();
  return Succeed(handle);
}

adgraphStatus_t adgraphDestroyGraphDescr(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphDestroyGraphDescr: descr is NULL");
  }
  delete descr;
  return Succeed(handle);
}

adgraphStatus_t adgraphSetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t num_vertices,
                                         uint64_t num_edges,
                                         const uint64_t* row_offsets,
                                         const uint32_t* col_indices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr || row_offsets == nullptr ||
      (col_indices == nullptr && num_edges > 0)) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphSetGraphStructure: NULL descriptor or arrays");
  }
  std::vector<adgraph::graph::eid_t> rows(row_offsets,
                                          row_offsets + num_vertices + 1);
  std::vector<adgraph::graph::vid_t> cols(col_indices,
                                          col_indices + num_edges);
  auto graph = adgraph::graph::CsrGraph::FromArrays(
      num_vertices, std::move(rows), std::move(cols));
  if (!graph.ok()) return Fail(handle, graph.status());
  descr->graph = std::move(graph).value();
  descr->has_structure = true;
  descr->delta.reset();
  return Succeed(handle);
}

adgraphStatus_t adgraphSetEdgeWeights(adgraphHandle_t handle,
                                      adgraphGraphDescr_t descr,
                                      const double* weights) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) {
    return NoStructure(handle, "adgraphSetEdgeWeights");
  }
  if (weights == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphSetEdgeWeights: weights is NULL");
  }
  std::vector<adgraph::graph::weight_t> w(
      weights, weights + descr->graph.num_edges());
  auto rebuilt = adgraph::graph::CsrGraph::FromArrays(
      descr->graph.num_vertices(), descr->graph.row_offsets(),
      descr->graph.col_indices(), std::move(w));
  if (!rebuilt.ok()) return Fail(handle, rebuilt.status());
  descr->graph = std::move(rebuilt).value();
  descr->delta.reset();
  return Succeed(handle);
}

adgraphStatus_t adgraphApplyEdgeUpdates(adgraphHandle_t handle,
                                        adgraphGraphDescr_t descr,
                                        const adgraphEdgeUpdate_t* updates,
                                        size_t num_updates,
                                        uint64_t* version_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) {
    return NoStructure(handle, "adgraphApplyEdgeUpdates");
  }
  if (updates == nullptr && num_updates > 0) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphApplyEdgeUpdates: updates is NULL");
  }
  if (descr->delta == nullptr) {
    auto created = adgraph::graph::DeltaGraph::Create(descr->graph);
    if (!created.ok()) return Fail(handle, created.status());
    descr->delta = std::make_unique<adgraph::graph::DeltaGraph>(
        std::move(created).value());
  }
  std::vector<adgraph::graph::EdgeUpdate> batch;
  batch.reserve(num_updates);
  for (size_t i = 0; i < num_updates; ++i) {
    adgraph::graph::EdgeUpdate update;
    update.u = updates[i].src;
    update.v = updates[i].dst;
    update.w = updates[i].weight;
    update.insert = updates[i].remove == 0;
    batch.push_back(update);
  }
  auto applied = descr->delta->Apply(batch);
  // Refresh the descriptor's graph with whatever did apply before failing,
  // so the descriptor and its delta never disagree.
  auto snapshot = descr->delta->Snapshot();
  if (!snapshot.ok()) return Fail(handle, snapshot.status());
  descr->graph = **snapshot;
  if (version_out != nullptr) *version_out = descr->delta->version();
  if (!applied.ok()) return Fail(handle, applied.status());
  return Succeed(handle);
}

adgraphStatus_t adgraphTraversalBfs(adgraphHandle_t handle,
                                    adgraphGraphDescr_t descr,
                                    uint32_t source, int assume_symmetric,
                                    uint32_t* levels_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return NoStructure(handle, "adgraphTraversalBfs");
  if (levels_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphTraversalBfs: levels_out is NULL");
  }
  if (source >= descr->graph.num_vertices()) {
    return Fail(handle, ADGRAPH_STATUS_OUT_OF_RANGE,
                "adgraphTraversalBfs: source " + std::to_string(source) +
                    " >= num_vertices " +
                    std::to_string(descr->graph.num_vertices()));
  }
  BeginRun(handle);
  adgraph::core::BfsOptions options;
  options.source = source;
  options.assume_symmetric = assume_symmetric != 0;
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kBfs}, descr->graph,
      adgraph::core::Params(options));
  if (!result.ok()) return Fail(handle, result.status());
  const auto& r = std::get<adgraph::core::BfsResult>(*result);
  std::copy(r.levels.begin(), r.levels.end(), levels_out);
  return Succeed(handle);
}

adgraphStatus_t adgraphTriangleCount(adgraphHandle_t handle,
                                     adgraphGraphDescr_t descr,
                                     uint64_t* triangles_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return NoStructure(handle, "adgraphTriangleCount");
  if (triangles_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphTriangleCount: triangles_out is NULL");
  }
  BeginRun(handle);
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kTriangleCount},
      descr->graph, adgraph::core::Params(adgraph::core::TcOptions{}));
  if (!result.ok()) return Fail(handle, result.status());
  *triangles_out = std::get<adgraph::core::TcResult>(*result).triangles;
  return Succeed(handle);
}

adgraphStatus_t adgraphPagerank(adgraphHandle_t handle,
                                adgraphGraphDescr_t descr, double alpha,
                                uint32_t max_iterations, double* ranks_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return NoStructure(handle, "adgraphPagerank");
  if (ranks_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphPagerank: ranks_out is NULL");
  }
  BeginRun(handle);
  adgraph::core::PageRankOptions options;
  options.alpha = alpha;
  options.max_iterations = max_iterations;
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kPageRank}, descr->graph,
      adgraph::core::Params(options));
  if (!result.ok()) return Fail(handle, result.status());
  const auto& r = std::get<adgraph::core::PageRankResult>(*result);
  std::copy(r.ranks.begin(), r.ranks.end(), ranks_out);
  return Succeed(handle);
}

adgraphStatus_t adgraphSssp(adgraphHandle_t handle, adgraphGraphDescr_t descr,
                            uint32_t source, double* distances_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return NoStructure(handle, "adgraphSssp");
  if (distances_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphSssp: distances_out is NULL");
  }
  if (source >= descr->graph.num_vertices()) {
    return Fail(handle, ADGRAPH_STATUS_OUT_OF_RANGE,
                "adgraphSssp: source " + std::to_string(source) +
                    " >= num_vertices " +
                    std::to_string(descr->graph.num_vertices()));
  }
  BeginRun(handle);
  adgraph::core::SsspOptions options;
  options.source = source;
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kSssp}, descr->graph,
      adgraph::core::Params(options));
  if (!result.ok()) return Fail(handle, result.status());
  const auto& r = std::get<adgraph::core::SsspResult>(*result);
  std::copy(r.distances.begin(), r.distances.end(), distances_out);
  return Succeed(handle);
}

adgraphStatus_t adgraphWidestPath(adgraphHandle_t handle,
                                  adgraphGraphDescr_t descr, uint32_t source,
                                  double* widths_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return NoStructure(handle, "adgraphWidestPath");
  if (widths_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphWidestPath: widths_out is NULL");
  }
  if (source >= descr->graph.num_vertices()) {
    return Fail(handle, ADGRAPH_STATUS_OUT_OF_RANGE,
                "adgraphWidestPath: source " + std::to_string(source) +
                    " >= num_vertices " +
                    std::to_string(descr->graph.num_vertices()));
  }
  BeginRun(handle);
  adgraph::core::WidestPathOptions options;
  options.source = source;
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kWidestPath}, descr->graph,
      adgraph::core::Params(options));
  if (!result.ok()) return Fail(handle, result.status());
  const auto& r = std::get<adgraph::core::WidestPathResult>(*result);
  std::copy(r.widths.begin(), r.widths.end(), widths_out);
  return Succeed(handle);
}

adgraphStatus_t adgraphExtractSubgraphByVertex(adgraphHandle_t handle,
                                               adgraphGraphDescr_t descr,
                                               adgraphGraphDescr_t subgraph,
                                               const uint32_t* vertices,
                                               size_t num_vertices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) {
    return NoStructure(handle, "adgraphExtractSubgraphByVertex");
  }
  if (subgraph == nullptr || (vertices == nullptr && num_vertices > 0)) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphExtractSubgraphByVertex: NULL output descriptor or "
                "vertex array");
  }
  if (!descr->graph.has_weights()) {
    return Fail(handle, ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH,
                "adgraphExtractSubgraphByVertex: extraction requires edge "
                "weights (call adgraphSetEdgeWeights first)");
  }
  BeginRun(handle);
  adgraph::core::EsbvOptions options;
  options.vertices.assign(vertices, vertices + num_vertices);
  auto result = adgraph::core::Run(
      handle->device.get(), {adgraph::core::Algo::kEsbv}, descr->graph,
      adgraph::core::Params(std::move(options)));
  if (!result.ok()) return Fail(handle, result.status());
  subgraph->graph =
      std::move(std::get<adgraph::core::EsbvResult>(*result).subgraph);
  subgraph->has_structure = true;
  subgraph->delta.reset();
  return Succeed(handle);
}

adgraphStatus_t adgraphGetJobProfile(adgraphHandle_t handle,
                                     adgraphJobProfile_t* profile_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (profile_out == nullptr) {
    return Fail(handle, ADGRAPH_STATUS_INVALID_VALUE,
                "adgraphGetJobProfile: profile_out is NULL");
  }
  const auto& log = handle->device->kernel_log();
  size_t start = handle->last_run_start;
  if (start > log.size()) start = log.size();  // log was reset since the run
  adgraph::prof::AlgoProfile merged;
  for (size_t i = start; i < log.size(); ++i) merged.Add(log[i]);
  adgraph::prof::JobProfile profile =
      adgraph::prof::BuildJobProfile(merged, log, start);
  adgraphJobProfile_t out{};
  out.num_kernels = profile.num_kernels;
  out.total_ms = profile.total_ms;
  out.total_cycles = profile.total_cycles;
  out.warp_inst_issued = profile.warp_inst_issued;
  out.branches = profile.branches;
  out.divergent_branches = profile.divergent_branches;
  out.dram_bytes = profile.dram_bytes;
  out.divergent_branch_ratio = profile.divergent_branch_ratio;
  out.gld_efficiency = profile.gld_efficiency;
  out.gst_efficiency = profile.gst_efficiency;
  out.l1_hit_rate = profile.l1_hit_rate;
  out.l2_hit_rate = profile.l2_hit_rate;
  out.achieved_occupancy = profile.achieved_occupancy;
  out.exposed_latency_cycles = profile.exposed_latency_cycles;
  *profile_out = out;
  return Succeed(handle);
}

adgraphStatus_t adgraphGetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t* num_vertices,
                                         uint64_t* num_edges,
                                         uint64_t* row_offsets,
                                         uint32_t* col_indices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) {
    return NoStructure(handle, "adgraphGetGraphStructure");
  }
  if (num_vertices != nullptr) *num_vertices = descr->graph.num_vertices();
  if (num_edges != nullptr) *num_edges = descr->graph.num_edges();
  if (row_offsets != nullptr) {
    std::copy(descr->graph.row_offsets().begin(),
              descr->graph.row_offsets().end(), row_offsets);
  }
  if (col_indices != nullptr) {
    std::copy(descr->graph.col_indices().begin(),
              descr->graph.col_indices().end(), col_indices);
  }
  return Succeed(handle);
}

}  // extern "C"
