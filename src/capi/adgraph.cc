#include "capi/adgraph.h"

#include <memory>
#include <string>
#include <vector>

#include "core/bfs.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "core/widest_path.h"
#include "graph/csr.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

// Opaque handle definitions.  C linkage callers only see the pointers.
struct adgraphContext {
  std::unique_ptr<adgraph::vgpu::Device> device;
};

struct adgraphGraphDescrStruct {
  adgraph::graph::CsrGraph graph;
  bool has_structure = false;
};

namespace {

using adgraph::Status;
using adgraph::StatusCode;

adgraphStatus_t ToC(const Status& status) {
  if (status.ok()) return ADGRAPH_STATUS_SUCCESS;
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
      return ADGRAPH_STATUS_INVALID_VALUE;
    case StatusCode::kOutOfMemory:
      return ADGRAPH_STATUS_ALLOC_FAILED;
    default:
      return ADGRAPH_STATUS_INTERNAL_ERROR;
  }
}

bool Ready(adgraphHandle_t handle) {
  return handle != nullptr && handle->device != nullptr;
}

bool HasStructure(adgraphGraphDescr_t descr) {
  return descr != nullptr && descr->has_structure;
}

}  // namespace

extern "C" {

const char* adgraphStatusGetString(adgraphStatus_t status) {
  switch (status) {
    case ADGRAPH_STATUS_SUCCESS:
      return "ADGRAPH_STATUS_SUCCESS";
    case ADGRAPH_STATUS_NOT_INITIALIZED:
      return "ADGRAPH_STATUS_NOT_INITIALIZED";
    case ADGRAPH_STATUS_ALLOC_FAILED:
      return "ADGRAPH_STATUS_ALLOC_FAILED";
    case ADGRAPH_STATUS_INVALID_VALUE:
      return "ADGRAPH_STATUS_INVALID_VALUE";
    case ADGRAPH_STATUS_INTERNAL_ERROR:
      return "ADGRAPH_STATUS_INTERNAL_ERROR";
  }
  return "ADGRAPH_STATUS_UNKNOWN";
}

adgraphStatus_t adgraphCreate(adgraphHandle_t* handle, const char* gpu_name) {
  if (handle == nullptr) return ADGRAPH_STATUS_INVALID_VALUE;
  const adgraph::vgpu::ArchConfig* arch = &adgraph::vgpu::A100Config();
  if (gpu_name != nullptr) {
    bool found = false;
    for (const auto* gpu : adgraph::vgpu::PaperGpus()) {
      if (gpu->name == gpu_name) {
        arch = gpu;
        found = true;
      }
    }
    if (!found) return ADGRAPH_STATUS_INVALID_VALUE;
  }
  auto* context = new adgraphContext();
  context->device = std::make_unique<adgraph::vgpu::Device>(*arch);
  *handle = context;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphDestroy(adgraphHandle_t handle) {
  if (handle == nullptr) return ADGRAPH_STATUS_NOT_INITIALIZED;
  delete handle;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphGetDeviceTimeMs(adgraphHandle_t handle,
                                       double* time_ms) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (time_ms == nullptr) return ADGRAPH_STATUS_INVALID_VALUE;
  *time_ms = handle->device->elapsed_ms();
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphCreateGraphDescr(adgraphHandle_t handle,
                                        adgraphGraphDescr_t* descr) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr) return ADGRAPH_STATUS_INVALID_VALUE;
  *descr = new adgraphGraphDescrStruct();
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphDestroyGraphDescr(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr) return ADGRAPH_STATUS_INVALID_VALUE;
  delete descr;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphSetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t num_vertices,
                                         uint64_t num_edges,
                                         const uint64_t* row_offsets,
                                         const uint32_t* col_indices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (descr == nullptr || row_offsets == nullptr ||
      (col_indices == nullptr && num_edges > 0)) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  std::vector<adgraph::graph::eid_t> rows(row_offsets,
                                          row_offsets + num_vertices + 1);
  std::vector<adgraph::graph::vid_t> cols(col_indices,
                                          col_indices + num_edges);
  auto graph = adgraph::graph::CsrGraph::FromArrays(
      num_vertices, std::move(rows), std::move(cols));
  if (!graph.ok()) return ToC(graph.status());
  descr->graph = std::move(graph).value();
  descr->has_structure = true;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphSetEdgeWeights(adgraphHandle_t handle,
                                      adgraphGraphDescr_t descr,
                                      const double* weights) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || weights == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  std::vector<adgraph::graph::weight_t> w(
      weights, weights + descr->graph.num_edges());
  auto rebuilt = adgraph::graph::CsrGraph::FromArrays(
      descr->graph.num_vertices(), descr->graph.row_offsets(),
      descr->graph.col_indices(), std::move(w));
  if (!rebuilt.ok()) return ToC(rebuilt.status());
  descr->graph = std::move(rebuilt).value();
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphTraversalBfs(adgraphHandle_t handle,
                                    adgraphGraphDescr_t descr,
                                    uint32_t source, int assume_symmetric,
                                    uint32_t* levels_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || levels_out == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  adgraph::core::BfsOptions options;
  options.source = source;
  options.assume_symmetric = assume_symmetric != 0;
  auto result =
      adgraph::core::RunBfs(handle->device.get(), descr->graph, options);
  if (!result.ok()) return ToC(result.status());
  std::copy(result->levels.begin(), result->levels.end(), levels_out);
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphTriangleCount(adgraphHandle_t handle,
                                     adgraphGraphDescr_t descr,
                                     uint64_t* triangles_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || triangles_out == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  auto result =
      adgraph::core::RunTriangleCount(handle->device.get(), descr->graph, {});
  if (!result.ok()) return ToC(result.status());
  *triangles_out = result->triangles;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphPagerank(adgraphHandle_t handle,
                                adgraphGraphDescr_t descr, double alpha,
                                uint32_t max_iterations, double* ranks_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || ranks_out == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  adgraph::core::PageRankOptions options;
  options.alpha = alpha;
  options.max_iterations = max_iterations;
  auto result =
      adgraph::core::RunPageRank(handle->device.get(), descr->graph, options);
  if (!result.ok()) return ToC(result.status());
  std::copy(result->ranks.begin(), result->ranks.end(), ranks_out);
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphSssp(adgraphHandle_t handle, adgraphGraphDescr_t descr,
                            uint32_t source, double* distances_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || distances_out == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  adgraph::core::SsspOptions options;
  options.source = source;
  auto result =
      adgraph::core::RunSssp(handle->device.get(), descr->graph, options);
  if (!result.ok()) return ToC(result.status());
  std::copy(result->distances.begin(), result->distances.end(),
            distances_out);
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphWidestPath(adgraphHandle_t handle,
                                  adgraphGraphDescr_t descr, uint32_t source,
                                  double* widths_out) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || widths_out == nullptr) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  adgraph::core::WidestPathOptions options;
  options.source = source;
  auto result = adgraph::core::RunWidestPath(handle->device.get(),
                                             descr->graph, options);
  if (!result.ok()) return ToC(result.status());
  std::copy(result->widths.begin(), result->widths.end(), widths_out);
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphExtractSubgraphByVertex(adgraphHandle_t handle,
                                               adgraphGraphDescr_t descr,
                                               adgraphGraphDescr_t subgraph,
                                               const uint32_t* vertices,
                                               size_t num_vertices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr) || subgraph == nullptr ||
      (vertices == nullptr && num_vertices > 0)) {
    return ADGRAPH_STATUS_INVALID_VALUE;
  }
  adgraph::core::EsbvOptions options;
  options.vertices.assign(vertices, vertices + num_vertices);
  auto result = adgraph::core::ExtractSubgraphByVertex(
      handle->device.get(), descr->graph, options);
  if (!result.ok()) return ToC(result.status());
  subgraph->graph = std::move(result->subgraph);
  subgraph->has_structure = true;
  return ADGRAPH_STATUS_SUCCESS;
}

adgraphStatus_t adgraphGetGraphStructure(adgraphHandle_t handle,
                                         adgraphGraphDescr_t descr,
                                         uint32_t* num_vertices,
                                         uint64_t* num_edges,
                                         uint64_t* row_offsets,
                                         uint32_t* col_indices) {
  if (!Ready(handle)) return ADGRAPH_STATUS_NOT_INITIALIZED;
  if (!HasStructure(descr)) return ADGRAPH_STATUS_INVALID_VALUE;
  if (num_vertices != nullptr) *num_vertices = descr->graph.num_vertices();
  if (num_edges != nullptr) *num_edges = descr->graph.num_edges();
  if (row_offsets != nullptr) {
    std::copy(descr->graph.row_offsets().begin(),
              descr->graph.row_offsets().end(), row_offsets);
  }
  if (col_indices != nullptr) {
    std::copy(descr->graph.col_indices().begin(),
              descr->graph.col_indices().end(), col_indices);
  }
  return ADGRAPH_STATUS_SUCCESS;
}

}  // extern "C"
