#ifndef ADGRAPH_UTIL_STATUS_H_
#define ADGRAPH_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace adgraph {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,      ///< Simulated device memory exhausted (paper: "OOM").
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kDeadlock = 9,         ///< Kernel barrier deadlock detected by the scheduler.
  /// A serving-layer resource limit was hit: a job's estimated device
  /// working set exceeds the target device's RAM, or a bounded submission
  /// queue is full under the reject policy.  Distinct from kOutOfMemory,
  /// which is the *device allocator's* verdict mid-run; kResourceExhausted
  /// is the *scheduler's* verdict, issued gracefully without crashing the
  /// pool (the paper's twitter-mpi ESBV OOM, served politely).
  kResourceExhausted = 10,
  /// The serving layer is (or went) down: Submit() on a shut-down
  /// scheduler, or a job orphaned in the queue when Shutdown() ran.
  /// Distinct from kInternal — the caller did nothing wrong and may retry
  /// against a live pool.
  kUnavailable = 11,
  /// The job's deadline passed before it could run: the scheduler sheds a
  /// queued job whose queue-wait already exceeds its deadline instead of
  /// wasting a device on an answer nobody is still waiting for.  Distinct
  /// from kResourceExhausted — nothing is full; the job is merely late.
  kDeadlineExceeded = 12,
  /// The request is well-formed but the system is not in a state that can
  /// satisfy it: e.g. a pull-only traversal demanded on a graph staged
  /// without a symmetric adjacency, or an engine operator invoked before
  /// its frontier was initialized.  Distinct from kInvalidArgument — the
  /// arguments are fine; the precondition on current state is not.
  kFailedPrecondition = 13,
  /// The job was cancelled by its submitter before (or while) it ran.  A
  /// POLL on a cancelled job reports this terminal state deterministically,
  /// whether or not the reaper already collected the slot.
  kCancelled = 14,
};

/// \brief Human-readable name of a StatusCode (e.g. "Out of memory").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style operation outcome.
///
/// The library does not throw exceptions on expected failure paths (bad
/// input, device OOM, I/O problems); fallible operations return a Status or
/// a Result<T>.  An OK Status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// The error message, or "" for an OK status.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr means OK.
};

/// \brief A value-or-Status union: the return type of fallible producers.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status: `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    // A Result constructed from a Status must not be OK; that would mean
    // "success with no value", which callers cannot handle.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok() — violated preconditions abort with the carried
  /// status instead of silently yielding a default-constructed value.
  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  /// Returns by value (not T&&): binding the result of value() on a
  /// temporary Result in a range-for must not dangle.
  T value() && {
    CheckOk();
    return std::move(value_);
  }
  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(value_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

/// Propagates a non-OK Status to the caller.
#define ADGRAPH_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::adgraph::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result expression; assigns the value or propagates the error.
#define ADGRAPH_ASSIGN_OR_RETURN(lhs, expr)              \
  ADGRAPH_ASSIGN_OR_RETURN_IMPL(                         \
      ADGRAPH_CONCAT_NAME(_adgraph_result_, __LINE__), lhs, expr)

#define ADGRAPH_CONCAT_NAME_INNER(x, y) x##y
#define ADGRAPH_CONCAT_NAME(x, y) ADGRAPH_CONCAT_NAME_INNER(x, y)
#define ADGRAPH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace adgraph

#endif  // ADGRAPH_UTIL_STATUS_H_
