#include "util/logging.h"

#include <atomic>

namespace adgraph {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip the directory part for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

void LogMessage::SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel LogMessage::min_log_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

}  // namespace adgraph
