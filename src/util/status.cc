#include "util/status.h"

namespace adgraph {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(state_->code));
  result += ": ";
  result += state_->message;
  return result;
}

}  // namespace adgraph
