#ifndef ADGRAPH_UTIL_RANDOM_H_
#define ADGRAPH_UTIL_RANDOM_H_

#include <cstdint>

namespace adgraph {

/// \brief Deterministic xoshiro256** PRNG.
///
/// Every stochastic component of the library (graph generators, sampling,
/// workload shufflers) draws from an explicitly seeded Rng so that tests and
/// paper-reproduction benchmarks are bit-reproducible across runs and
/// platforms.  std::mt19937 is avoided because distribution implementations
/// differ across standard libraries.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  uint64_t Next64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
};

}  // namespace adgraph

#endif  // ADGRAPH_UTIL_RANDOM_H_
