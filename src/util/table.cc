#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/logging.h"

namespace adgraph {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ADGRAPH_CHECK(cells.size() <= headers_.size())
      << "row has " << cells.size() << " cells, table has "
      << headers_.size() << " columns";
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { separator_before_.push_back(rows_.size()); }

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    out << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      for (size_t i = row[c].size(); i < widths[c] + 1; ++i) out << ' ';
      out << '|';
    }
    out << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separator_before_.begin(), separator_before_.end(), r) !=
        separator_before_.end()) {
      rule();
    }
    emit(rows_[r]);
  }
  rule();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << ToCsv();
  if (!file) return Status::IOError("failed writing " + path);
  return Status::OK();
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatRate(double per_ms) {
  char buf[64];
  if (per_ms >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/ms", per_ms / 1e6);
  } else if (per_ms >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK/ms", per_ms / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f/ms", per_ms);
  }
  return buf;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace adgraph
