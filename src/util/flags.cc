#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"

namespace adgraph {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string key = body.substr(0, eq);
      if (key.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      flags.values_[key] = body.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  // Reject empty/non-numeric input, trailing junk ("12x"), and overflow —
  // strtoll with a null end pointer would silently return 0 (or a clamped
  // extreme) for all of these.
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    ADGRAPH_LOG(Warning) << "flag --" << key << "='" << text
                         << "' is not a valid integer; using default "
                         << default_value;
    return default_value;
  }
  return static_cast<int64_t>(parsed);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    ADGRAPH_LOG(Warning) << "flag --" << key << "='" << text
                         << "' is not a valid number; using default "
                         << default_value;
    return default_value;
  }
  return parsed;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace adgraph
