#ifndef ADGRAPH_UTIL_TABLE_H_
#define ADGRAPH_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace adgraph {

/// \brief Column-aligned ASCII table builder used by the paper-reproduction
/// benchmark harnesses to print Table 3/4/5/6-style output, plus CSV export
/// so results can be diffed and plotted.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row.  Rows shorter than the header are padded with "";
  /// longer rows are a programmer error (checked).
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next added row.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  /// Renders the aligned table (with +---+ borders) to `out`.
  void Print(std::ostream& out) const;

  /// Renders the table as RFC-4180-ish CSV (quotes cells containing
  /// commas/quotes/newlines).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separator_before_;  // row indices with a rule above
};

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("12.34", "0.5", "7").
std::string FormatFixed(double value, int digits);

/// Human-style count with K/M suffix ("5.18K", "18.57M", "773.22") used by
/// the Table 6 reproduction to match the paper's notation.
std::string FormatRate(double per_ms);

/// Thousands-separated integer ("1,963,263,821").
std::string FormatWithCommas(uint64_t value);

}  // namespace adgraph

#endif  // ADGRAPH_UTIL_TABLE_H_
