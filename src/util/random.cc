#include "util/random.h"

#include "util/logging.h"

namespace adgraph {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // All-zero state would lock the generator; SplitMix64 of any seed cannot
  // produce four zeros, but keep the invariant explicit.
  ADGRAPH_DCHECK(s_[0] | s_[1] | s_[2] | s_[3]);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  ADGRAPH_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  ADGRAPH_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

}  // namespace adgraph
