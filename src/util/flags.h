#ifndef ADGRAPH_UTIL_FLAGS_H_
#define ADGRAPH_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace adgraph {

/// \brief Tiny `--key=value` command-line parser for the benchmark and
/// example binaries.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--flag`
/// (value "true").  Positional arguments are collected in order.
class Flags {
 public:
  /// Parses argv (skipping argv[0]).  Unknown flags are kept; callers decide
  /// what is legal.  Fails on malformed input such as `--=x`.
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace adgraph

#endif  // ADGRAPH_UTIL_FLAGS_H_
