#ifndef ADGRAPH_UTIL_LOGGING_H_
#define ADGRAPH_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace adgraph {

/// Severity of a log record.  kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Minimal streaming logger used across the library.
///
/// Example: `ADGRAPH_LOG(INFO) << "launched " << n << " blocks";`
/// The global minimum level defaults to kInfo and can be changed at runtime
/// (tests silence kInfo noise with SetMinLogLevel(LogLevel::kWarning)).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

  static void SetMinLogLevel(LogLevel level);
  static LogLevel min_log_level();

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define ADGRAPH_LOG(severity)                                               \
  ::adgraph::LogMessage(::adgraph::LogLevel::k##severity, __FILE__, __LINE__) \
      .stream()

/// Internal-invariant check: logs and aborts when `condition` is false.
/// Use for programmer errors only; expected failures go through Status.
#define ADGRAPH_CHECK(condition)                                   \
  if (!(condition))                                                \
  ::adgraph::LogMessage(::adgraph::LogLevel::kFatal, __FILE__, __LINE__) \
          .stream()                                                \
      << "Check failed: " #condition " "

#define ADGRAPH_CHECK_OK(expr)                                     \
  if (::adgraph::Status _st = (expr); !_st.ok())                   \
  ::adgraph::LogMessage(::adgraph::LogLevel::kFatal, __FILE__, __LINE__) \
          .stream()                                                \
      << "Status not OK: " << _st.ToString() << " "

#ifndef NDEBUG
#define ADGRAPH_DCHECK(condition) ADGRAPH_CHECK(condition)
#else
#define ADGRAPH_DCHECK(condition) \
  if (false) ADGRAPH_LOG(Fatal) << ""
#endif

}  // namespace adgraph

#endif  // ADGRAPH_UTIL_LOGGING_H_
