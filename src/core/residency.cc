#include "core/residency.h"

#include <vector>

#include "core/triangle_count.h"

namespace adgraph::core {

std::string_view GraphVariantName(GraphVariant variant) {
  switch (variant) {
    case GraphVariant::kAsIs:
      return "as-is";
    case GraphVariant::kSymSimple:
      return "sym";
    case GraphVariant::kTcOriented:
      return "tc-oriented";
    case GraphVariant::kPullTranspose:
      return "pull-transpose";
    case GraphVariant::kCscWeighted:
      return "csc-weighted";
    case GraphVariant::kStreamed:
      return "streamed";
  }
  return "unknown";
}

uint64_t FingerprintCsr(const graph::CsrGraph& g) {
  // Same FNV-1a digest as always, now memoized on the graph itself — and
  // pre-stamped with the family fingerprint on DeltaGraph snapshots, whose
  // identity is (fingerprint, mutation_epoch) rather than raw content.
  return g.ContentFingerprint();
}

Result<graph::CsrGraph> BuildHostVariant(const graph::CsrGraph& base,
                                         GraphVariant variant) {
  switch (variant) {
    case GraphVariant::kAsIs:
      return base;
    case GraphVariant::kSymSimple:
      return SymmetrizeForTc(base);
    case GraphVariant::kTcOriented:
      return OrientByDegree(base);
    case GraphVariant::kPullTranspose: {
      // Pull formulation operand: edge (v <- u) carries 1/outdeg(u), so a
      // plus-times SpMV against it is one PageRank gather sweep.
      graph::CsrGraph gt = base.Transpose();
      std::vector<graph::weight_t> w(gt.num_edges());
      const auto& cols = gt.col_indices();
      for (graph::eid_t e = 0; e < gt.num_edges(); ++e) {
        w[e] = 1.0 / static_cast<double>(base.degree(cols[e]));
      }
      return graph::CsrGraph::FromArrays(gt.num_vertices(), gt.row_offsets(),
                                         gt.col_indices(), std::move(w));
    }
    case GraphVariant::kCscWeighted:
      return base.Transpose();
    case GraphVariant::kStreamed:
      return Status::InvalidArgument(
          "kStreamed is not a host layout: the out-of-core driver stages "
          "shards itself and never materializes a whole-graph variant");
  }
  return Status::InvalidArgument("unknown graph variant");
}

Result<ResidentCsr> Stage(GraphResidency* residency, vgpu::Device* device,
                          const graph::CsrGraph& base, GraphVariant variant) {
  if (residency != nullptr) return residency->Acquire(device, base, variant);
  if (variant == GraphVariant::kAsIs) {
    ADGRAPH_ASSIGN_OR_RETURN(DeviceCsr d, DeviceCsr::Upload(device, base));
    return ResidentCsr(std::move(d));
  }
  ADGRAPH_ASSIGN_OR_RETURN(graph::CsrGraph host,
                           BuildHostVariant(base, variant));
  ADGRAPH_ASSIGN_OR_RETURN(DeviceCsr d, DeviceCsr::Upload(device, host));
  return ResidentCsr(std::move(d));
}

}  // namespace adgraph::core
