#ifndef ADGRAPH_CORE_JACCARD_H_
#define ADGRAPH_CORE_JACCARD_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct JaccardOptions {
  uint32_t block_size = 256;
};

struct JaccardResult {
  /// Per-edge Jaccard coefficient in CSR edge order.
  std::vector<double> coefficients;
  double time_ms = 0;
};

/// Jaccard similarity of every edge's endpoint neighborhoods
/// (|N(u) ∩ N(v)| / |N(u) ∪ N(v)| over sorted out-neighbor lists) — one of
/// nvGRAPH's link-analysis primitives.  Requires sorted adjacency.
class GraphResidency;

Result<JaccardResult> RunJaccard(vgpu::Device* device,
                                 const graph::CsrGraph& g,
                                 const JaccardOptions& options,
                                 GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_JACCARD_H_
