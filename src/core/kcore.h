#ifndef ADGRAPH_CORE_KCORE_H_
#define ADGRAPH_CORE_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct KCoreOptions {
  uint32_t k = 2;
  uint32_t block_size = 256;
};

struct KCoreResult {
  /// 1 if the vertex belongs to the k-core of the undirected
  /// interpretation, else 0.
  std::vector<uint32_t> in_core;
  uint64_t core_size = 0;
  uint32_t peel_rounds = 0;
  double time_ms = 0;
};

/// k-core membership by iterative peeling: repeatedly remove vertices with
/// (remaining) undirected degree < k until a fixpoint.
class GraphResidency;

Result<KCoreResult> RunKCore(vgpu::Device* device, const graph::CsrGraph& g,
                             const KCoreOptions& options,
                             GraphResidency* residency = nullptr);

struct CoreDecompositionResult {
  /// Per-vertex core number: the largest k whose k-core contains the
  /// vertex (0 for isolated vertices).
  std::vector<uint32_t> core_numbers;
  uint32_t max_core = 0;
  uint32_t peel_rounds = 0;
  double time_ms = 0;
};

/// Full core decomposition: peels k = 1, 2, ... in sequence, recording the
/// phase at which each vertex leaves (device-side Matula-Beck).
Result<CoreDecompositionResult> RunCoreDecomposition(
    vgpu::Device* device, const graph::CsrGraph& g,
    uint32_t block_size = 256);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_KCORE_H_
