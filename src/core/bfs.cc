#include "core/bfs.h"

#include <algorithm>
#include <string>

#include "core/bfs_kernels.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
// Kernel definitions live in core::detail (declared in core/bfs_kernels.h)
// so the partitioned drivers in src/part/ can launch the identical kernels
// per shard.
namespace detail {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;
using vgpu::SmemPtr;

/// Shared-memory staging queue capacity (entries per block).  Discovered
/// vertices are staged in shared memory and flushed with one global atomic
/// per block — the nvGRAPH-style optimization that makes BFS a shared-
/// memory-heavy, low-branch-divergence workload (paper §4.6/§5.1.1).
constexpr uint32_t kStageCapacity = 2048;

/// Shared layout: [0] staging counter, [1] flush base, [2..] staged ids.
constexpr uint32_t kStageHeaderWords = 2;

}  // namespace

uint32_t StageSharedBytes() {
  return (kStageCapacity + kStageHeaderWords) * sizeof(uint32_t);
}

/// Top-down frontier expansion with shared-memory staging.
KernelTask TopDownKernel(Ctx& c, BfsDeviceState s, uint32_t frontier_size,
                         uint32_t level) {
  SmemPtr<uint32_t> counter{0};
  SmemPtr<uint32_t> flush_base{sizeof(uint32_t)};
  SmemPtr<vid_t> stage{kStageHeaderWords * sizeof(uint32_t)};

  auto local = c.BlockThreadId();
  auto zero_idx = c.Splat<uint32_t>(0);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    c.SharedStore(counter, zero_idx, c.Splat<uint32_t>(0));
  });
  co_await c.Sync();

  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, frontier_size), [&](Ctx& c) {
    auto u = c.Load(s.frontier, tid);
    auto begin = c.Load(s.row, u);
    auto end = c.Load(s.row, c.Add(u, 1u));
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(s.col, e);
      auto old = c.AtomicCas(s.levels, v, c.Splat(kUnreachedLevel),
                             c.Splat(level));
      c.If(c.Eq(old, kUnreachedLevel), [&](Ctx& c) {
        if (!s.parents.is_null()) c.Store(s.parents, v, u);
        auto pos = c.SharedAtomicAdd(counter, zero_idx, c.Splat<uint32_t>(1));
        c.IfElse(
            c.Lt(pos, kStageCapacity),
            [&](Ctx& c) { c.SharedStore(stage, pos, v); },
            [&](Ctx& c) {
              // Staging overflow: write through to the global queue.
              auto gpos = c.AtomicAdd(s.next_size, zero_idx,
                                      c.Splat<uint32_t>(1));
              c.Store(s.next_frontier, gpos, v);
            });
      });
    });
  });
  co_await c.Sync();

  // Flush the staged entries: one global atomic for the whole block.
  auto staged_raw = c.SharedLoad(counter, zero_idx);
  auto staged = c.Min(staged_raw, kStageCapacity);
  c.If(c.Eq(local, 0u), [&](Ctx& c) {
    auto base = c.AtomicAdd(s.next_size, zero_idx, staged);
    c.SharedStore(flush_base, zero_idx, base);
  });
  co_await c.Sync();
  auto base = c.SharedLoad(flush_base, zero_idx);
  auto cursor = local;
  auto block_dim = c.Splat(c.block_dim());
  c.While(
      [&](Ctx& c) { return c.Lt(cursor, staged); },
      [&](Ctx& c) {
        auto v = c.SharedLoad(stage, cursor);
        c.Store(s.next_frontier, c.Add(base, cursor), v);
        c.Assign(&cursor, c.Add(cursor, block_dim));
      });
  co_return;
}

/// Bottom-up sweep: every unvisited vertex scans its adjacency for a
/// parent on the previous level; early-exits on the first hit.  Uniform
/// control flow and shared-memory-free — the low-branch-complexity phase
/// where wavefront-64 issue efficiency shines (paper Hypothesis 1).
KernelTask BottomUpKernel(Ctx& c, BfsDeviceState s, uint32_t num_vertices,
                          uint32_t level) {
  auto tid = c.GlobalThreadId();
  LaneMask found = 0;
  c.If(c.Lt(tid, num_vertices), [&](Ctx& c) {
    auto my_level = c.Load(s.levels, tid);
    c.If(c.Eq(my_level, kUnreachedLevel), [&](Ctx& c) {
      auto cursor = c.Load(s.row, tid);
      auto end = c.Load(s.row, c.Add(tid, 1u));
      c.While(
          [&](Ctx& c) {
            return c.Lt(cursor, end) & ~found;
          },
          [&](Ctx& c) {
            auto v = c.Load(s.col, cursor);
            auto v_level = c.Load(s.levels, v);
            LaneMask hit = c.Eq(v_level, level - 1);
            c.If(hit, [&](Ctx& c) {
              c.Store(s.levels, tid, c.Splat(level));
              if (!s.parents.is_null()) c.Store(s.parents, tid, v);
            });
            found |= hit;
            c.Assign(&cursor, c.Add(cursor, eid_t{1}));
          });
    });
  });
  // Tally newly-visited vertices: warp reduction + one atomic per warp.
  auto ones = c.Select(found, c.Splat<uint32_t>(1), c.Splat<uint32_t>(0));
  uint32_t sum = c.ReduceAdd(ones);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(s.next_size, c.Splat<uint32_t>(0), c.Splat(sum));
  });
  co_return;
}

/// Rebuilds an explicit frontier queue from the level array (used when the
/// traversal switches from bottom-up back to top-down).
KernelTask LevelsToQueueKernel(Ctx& c, BfsDeviceState s, uint32_t num_vertices,
                               uint32_t level) {
  auto tid = c.GlobalThreadId();
  c.If(c.Lt(tid, num_vertices), [&](Ctx& c) {
    auto my_level = c.Load(s.levels, tid);
    c.If(c.Eq(my_level, level), [&](Ctx& c) {
      auto pos =
          c.AtomicAdd(s.next_size, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
      c.Store(s.next_frontier, pos, tid);
    });
  });
  co_return;
}

}  // namespace detail

namespace {

using detail::BfsDeviceState;
using detail::BottomUpKernel;
using detail::LevelsToQueueKernel;
using detail::StageSharedBytes;
using detail::TopDownKernel;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;

}  // namespace

Result<BfsResult> RunBfsOnDevice(vgpu::Device* device, const DeviceCsr& g,
                                 const BfsOptions& options) {
  const vid_t n = g.num_vertices;
  if (n == 0) return Status::InvalidArgument("BFS on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("BFS source " +
                                   std::to_string(options.source) +
                                   " out of range");
  }

  trace::Span algo_span(device->trace_track(), "algo:bfs", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(auto levels,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto frontier,
                           rt::DeviceBuffer<vid_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto next_frontier,
                           rt::DeviceBuffer<vid_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto next_size,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));
  rt::DeviceBuffer<vid_t> parents;
  if (options.compute_parents) {
    ADGRAPH_ASSIGN_OR_RETURN(parents,
                             rt::DeviceBuffer<vid_t>::Create(device, n));
  }

  rt::DeviceTimer timer(device);

  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<uint32_t>(device, levels.ptr(), n, kUnreachedLevel));
  ADGRAPH_RETURN_NOT_OK(
      primitives::SetElement<uint32_t>(device, levels.ptr(), options.source, 0));
  ADGRAPH_RETURN_NOT_OK(primitives::SetElement<uint32_t>(
      device, frontier.ptr().Cast<uint32_t>(), 0, options.source));

  if (options.compute_parents) {
    ADGRAPH_RETURN_NOT_OK(primitives::Fill<vid_t>(
        device, parents.ptr(), n, graph::kInvalidVertex));
  }

  BfsDeviceState state;
  state.row = g.row_offsets.ptr();
  state.col = g.col_indices.ptr();
  state.levels = levels.ptr();
  state.parents = options.compute_parents ? parents.ptr() : DevPtr<vid_t>{};
  state.frontier = frontier.ptr();
  state.next_frontier = next_frontier.ptr();
  state.next_size = next_size.ptr();

  BfsResult result;
  uint32_t frontier_size = 1;
  bool frontier_is_queue = true;  // else implicit in levels (bottom-up mode)
  uint32_t level = 1;

  while (frontier_size > 0) {
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, next_size.ptr(), 0, 0));
    const bool use_bottom_up =
        options.direction_optimizing && options.assume_symmetric &&
        frontier_size > 64 &&
        static_cast<double>(frontier_size) > n / options.alpha;

    if (use_bottom_up) {
      trace::Span sweep(device->trace_track(), "bfs.bottom_up", "phase");
      sweep.ArgNum("level", static_cast<uint64_t>(level));
      sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("bfs_bottom_up",
                       rt::CoverThreads(n, options.block_size),
                       [&](Ctx& c) {
                         return BottomUpKernel(c, state, n, level);
                       })
              .status());
      result.bottom_up_iterations += 1;
      frontier_is_queue = false;
    } else {
      trace::Span sweep(device->trace_track(), "bfs.top_down", "phase");
      sweep.ArgNum("level", static_cast<uint64_t>(level));
      sweep.ArgNum("frontier_size", static_cast<uint64_t>(frontier_size));
      if (!frontier_is_queue) {
        // Returning from bottom-up: rebuild the queue for level-1.
        ADGRAPH_RETURN_NOT_OK(
            primitives::SetElement<uint32_t>(device, next_size.ptr(), 0, 0));
        BfsDeviceState rebuild = state;
        rebuild.next_frontier = state.frontier;
        ADGRAPH_RETURN_NOT_OK(
            device
                ->Launch("bfs_levels_to_queue",
                         rt::CoverThreads(n, options.block_size),
                         [&](Ctx& c) {
                           return LevelsToQueueKernel(c, rebuild, n, level - 1);
                         })
                .status());
        ADGRAPH_ASSIGN_OR_RETURN(
            frontier_size,
            primitives::GetElement<uint32_t>(device, next_size.ptr(), 0));
        ADGRAPH_RETURN_NOT_OK(
            primitives::SetElement<uint32_t>(device, next_size.ptr(), 0, 0));
        frontier_is_queue = true;
        if (frontier_size == 0) break;
      }
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("bfs_top_down",
                       rt::CoverThreads(frontier_size, options.block_size,
                                        StageSharedBytes()),
                       [&](Ctx& c) {
                         return TopDownKernel(c, state, frontier_size, level);
                       })
              .status());
      result.top_down_iterations += 1;
    }

    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t produced,
        primitives::GetElement<uint32_t>(device, next_size.ptr(), 0));
    if (use_bottom_up) {
      // Stay implicit; `produced` counts newly visited vertices.
      frontier_size = produced;
      if (produced > 0 &&
          static_cast<double>(produced) < n / options.beta &&
          options.direction_optimizing) {
        // Next iteration's top-down branch will rebuild the queue.
      }
    } else {
      std::swap(state.frontier, state.next_frontier);
      frontier_size = produced;
      frontier_is_queue = true;
    }
    if (produced > 0) {
      result.depth = level;
    }
    ++level;
  }

  result.time_ms = timer.ElapsedMs();

  ADGRAPH_ASSIGN_OR_RETURN(result.levels, levels.ToHost());
  if (options.compute_parents) {
    ADGRAPH_ASSIGN_OR_RETURN(result.parents, parents.ToHost());
  }
  for (uint32_t lvl : result.levels) {
    if (lvl != kUnreachedLevel) result.vertices_visited += 1;
  }
  algo_span.ArgNum("depth", static_cast<uint64_t>(result.depth));
  algo_span.ArgNum("top_down_iterations",
                   static_cast<uint64_t>(result.top_down_iterations));
  algo_span.ArgNum("bottom_up_iterations",
                   static_cast<uint64_t>(result.bottom_up_iterations));
  return result;
}

Result<BfsResult> RunBfs(vgpu::Device* device, const graph::CsrGraph& g,
                         const BfsOptions& options, GraphResidency* residency) {
  ADGRAPH_ASSIGN_OR_RETURN(ResidentCsr d,
                           Stage(residency, device, g, GraphVariant::kAsIs));
  return RunBfsOnDevice(device, *d, options);
}

}  // namespace adgraph::core
