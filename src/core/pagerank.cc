#include "core/pagerank.h"

#include <cmath>

#include "core/device_graph.h"
#include "core/pagerank_kernels.h"
#include "core/residency.h"
#include "core/spmv.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
// Kernel definitions live in core::detail (declared in
// core/pagerank_kernels.h) so the partitioned driver in src/part/ can apply
// the identical per-shard update.
namespace detail {

using graph::eid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;

/// ranks_next = base + alpha * ranks_next (after the SpMV), and
/// accumulates |next - prev| into delta.
KernelTask ApplyDampingKernel(Ctx& c, DevPtr<double> next, DevPtr<double> prev,
                              DevPtr<double> delta, double base, double alpha,
                              uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) {
    auto spmv_value = c.Load(next, v);
    auto updated = c.Add(c.Mul(spmv_value, alpha), base);
    c.Store(next, v, updated);
    auto old_value = c.Load(prev, v);
    auto diff = c.Sub(updated, old_value);
    // |diff| via select.
    auto neg = c.Lt(diff, 0.0);
    auto absdiff = c.Select(neg, c.Sub(c.Splat(0.0), diff), diff);
    double warp_sum = c.ReduceAdd(absdiff);
    c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
      c.AtomicAdd(delta, c.Splat<uint32_t>(0), c.Splat(warp_sum));
    });
  });
  co_return;
}

/// Sums the rank mass parked on dangling (out-degree 0) vertices.
KernelTask DanglingSumKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<double> ranks,
                             DevPtr<double> out, uint32_t n) {
  auto v = c.GlobalThreadId();
  auto mass = c.Splat(0.0);
  c.If(c.Lt(v, n), [&](Ctx& c) {
    auto begin = c.Load(row, v);
    auto end = c.Load(row, c.Add(v, 1u));
    c.If(c.Eq(begin, end), [&](Ctx& c) {
      c.Assign(&mass, c.Load(ranks, v));
    });
  });
  double warp_sum = c.ReduceAdd(mass);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(out, c.Splat<uint32_t>(0), c.Splat(warp_sum));
  });
  co_return;
}

}  // namespace detail

namespace {

using detail::ApplyDampingKernel;
using detail::DanglingSumKernel;
using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;

}  // namespace

Result<PageRankResult> RunPageRank(vgpu::Device* device,
                                   const graph::CsrGraph& g,
                                   const PageRankOptions& options,
                                   GraphResidency* residency) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("PageRank on empty graph");
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("damping factor must be in (0,1)");
  }

  trace::Span algo_span(device->trace_track(), "algo:pagerank", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("max_iterations",
                   static_cast<uint64_t>(options.max_iterations));

  // Pull formulation: next = A_norm^T * ranks where the edge (v <- u)
  // carries 1/outdeg(u) (BuildHostVariant's kPullTranspose).
  ADGRAPH_ASSIGN_OR_RETURN(
      ResidentCsr staged,
      Stage(residency, device, g, GraphVariant::kPullTranspose));
  const DeviceCsr& d_gt = *staged;
  // Original row offsets, for the dangling-mass pass.
  ADGRAPH_ASSIGN_OR_RETURN(
      auto d_row, rt::DeviceBuffer<eid_t>::FromHost(device, g.row_offsets()));
  ADGRAPH_ASSIGN_OR_RETURN(auto ranks,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto next,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto scalars,
                           rt::DeviceBuffer<double>::Create(device, 2));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<double>(device, ranks.ptr(), n, 1.0 / n));

  PageRankResult result;
  SpmvOptions spmv_options;
  spmv_options.semiring = Semiring::kPlusTimes;
  spmv_options.block_size = options.block_size;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    trace::Span sweep(device->trace_track(), "pagerank.iteration", "phase");
    sweep.ArgNum("iteration", static_cast<uint64_t>(iter + 1));
    // Dangling mass of the current ranks.
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<double>(device, scalars.ptr(), 0, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_dangling",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return DanglingSumKernel(c, d_row.ptr(), ranks.ptr(),
                                                scalars.ptr(), n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        double dangling,
        primitives::GetElement<double>(device, scalars.ptr(), 0));

    ADGRAPH_RETURN_NOT_OK(RunSpmvOnDevice(device, d_gt, ranks.ptr(),
                                          next.ptr(), spmv_options));

    double base = (1.0 - options.alpha) / n +
                  options.alpha * dangling / static_cast<double>(n);
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<double>(device, scalars.ptr(), 1, 0.0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("pagerank_damping",
                     rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return ApplyDampingKernel(c, next.ptr(), ranks.ptr(),
                                                 scalars.ptr() + 1, base,
                                                 options.alpha, n);
                     })
            .status());
    ADGRAPH_ASSIGN_OR_RETURN(
        result.l1_delta,
        primitives::GetElement<double>(device, scalars.ptr(), 1));

    std::swap(ranks, next);
    result.iterations = iter + 1;
    if (options.tolerance > 0 && result.l1_delta < options.tolerance) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.ranks, ranks.ToHost());
  return result;
}

}  // namespace adgraph::core
