#ifndef ADGRAPH_CORE_PAGERANK_H_
#define ADGRAPH_CORE_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct PageRankOptions {
  double alpha = 0.85;          ///< damping factor
  uint32_t max_iterations = 50;
  double tolerance = 1e-7;      ///< L1 convergence threshold (0 = run all)
  uint32_t block_size = 256;
};

struct PageRankResult {
  std::vector<double> ranks;
  uint32_t iterations = 0;
  double l1_delta = 0;  ///< last iteration's L1 change
  double time_ms = 0;
};

/// Semiring-SpMV-based PageRank (pull formulation): each round is one
/// plus-times SpMV over the 1/out-degree-normalized transpose, plus the
/// damping/dangling correction — the linear-algebra style the paper
/// describes for nvGRAPH (§3.2.1).
class GraphResidency;

Result<PageRankResult> RunPageRank(vgpu::Device* device,
                                   const graph::CsrGraph& g,
                                   const PageRankOptions& options,
                                   GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_PAGERANK_H_
