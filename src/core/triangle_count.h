#ifndef ADGRAPH_CORE_TRIANGLE_COUNT_H_
#define ADGRAPH_CORE_TRIANGLE_COUNT_H_

#include <cstdint>

#include "core/device_graph.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Options of the GPU triangle counter.
struct TcOptions {
  uint32_t block_size = 128;
  /// Blocks resident in the grid (grid-stride loop over vertices).
  uint32_t max_grid = 8192;
  /// Entries of the per-block shared-memory adjacency hash set.  Vertices
  /// with larger oriented degree fall back to binary-search intersection
  /// (the branch-heavy slow path).
  uint32_t hash_capacity = 4096;
  /// Force the binary-search paradigm for every vertex (the "other
  /// mainstream paradigm" the paper mentions; exposed for the ablation
  /// bench).
  bool force_binary_search = false;
  /// Counting mode.  true (default): degree-orient into a DAG on the host
  /// first — bounded intersection work, the common modern optimization.
  /// false: Bisson-Fatica style on the full symmetrized adjacency with
  /// in-kernel ordering filters (u < v < w) — what nvGRAPH's TC actually
  /// does, where hub vertices overflow the shared-memory set and take the
  /// branch-heavy binary-search fallback.  The paper-reproduction bench
  /// uses false; the orient=true variant is this library's extension and
  /// the subject of an ablation.
  bool orient = true;
  /// Sampled simulation: process only every N-th vertex and extrapolate
  /// counters, timing, and the triangle count by N.  1 = exact.  Used by
  /// the paper-reproduction bench for the billion-wedge twitter-mpi proxy,
  /// where exact functional simulation is not affordable (documented in
  /// EXPERIMENTS.md).
  uint32_t vertex_sample = 1;
};

/// Outcome of a triangle count.
struct TcResult {
  uint64_t triangles = 0;
  /// Oriented (DAG) edges the kernel actually intersected.
  uint64_t oriented_edges = 0;
  double time_ms = 0;  ///< device kernel time (preprocessing excluded)
  /// True when vertex_sample > 1: `triangles` is an extrapolation.
  bool sampled = false;
};

/// Counts triangles of `g` interpreted as an undirected graph.
///
/// Host preprocessing (symmetrize + deduplicate + degree-orient into a DAG,
/// the standard Bisson-Fatica setup nvGRAPH's TC uses) is not timed; the
/// device phase stages each vertex's adjacency in a shared-memory hash set
/// and probes it for every two-hop edge, with set-intersection-by-binary-
/// search as the high-degree fallback (paper §4.4: "bitmaps and atomic
/// operations ... more conditional judgments and branching than BFS").
class GraphResidency;

Result<TcResult> RunTriangleCount(vgpu::Device* device,
                                  const graph::CsrGraph& g,
                                  const TcOptions& options,
                                  GraphResidency* residency = nullptr);

/// Same, on a prepared device-resident input: a degree-oriented DAG when
/// options.orient, otherwise the symmetrized simple graph.  Adjacency
/// lists must be sorted in both cases.
Result<TcResult> RunTriangleCountOnDevice(vgpu::Device* device,
                                          const DeviceCsr& prepared,
                                          const TcOptions& options);

/// Builds the degree-oriented DAG of `g` (undirected interpretation):
/// u -> v iff (deg(u), u) < (deg(v), v).  Exposed for tests and benches.
Result<graph::CsrGraph> OrientByDegree(const graph::CsrGraph& g);

/// Builds the symmetrized simple graph (sorted, deduplicated, loop-free)
/// — the orient=false input.  Exposed for benches.
Result<graph::CsrGraph> SymmetrizeForTc(const graph::CsrGraph& g);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_TRIANGLE_COUNT_H_
