#ifndef ADGRAPH_CORE_API_H_
#define ADGRAPH_CORE_API_H_

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "core/bfs.h"
#include "core/coloring.h"
#include "core/conn_components.h"
#include "core/jaccard.h"
#include "core/kcore.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "core/widest_path.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Every library algorithm behind the uniform `core::Run` entry point.
/// Enumerator order is frozen: it matches the alternative order of
/// `Params`/`AlgoResult` (static_asserted in api.cc) and the serving
/// layer's wire protocol.  New algorithms append.
enum class Algo {
  kBfs,
  kSssp,
  kPageRank,
  kTriangleCount,
  kConnectedComponents,
  kKCore,
  kJaccard,
  kWidestPath,
  kColoring,
  kEsbv,
  kBetweenness,
};

/// Lower-case wire/CLI name ("bfs", "pagerank", "esbv", "bc", ...).
std::string_view AlgorithmName(Algo algo);

/// Inverse of AlgorithmName; kNotFound for unknown names.
Result<Algo> ParseAlgorithm(std::string_view name);

/// Options of engine-based Brandes betweenness centrality (single source).
struct BcOptions {
  graph::vid_t source = 0;
  uint32_t block_size = 256;
};

/// Outcome of a betweenness run.
struct BcResult {
  /// Per-vertex dependency of `source` on the vertex (Brandes δ_s(v)):
  /// the source-restricted betweenness contribution.  Summing over all
  /// sources yields exact betweenness centrality.
  std::vector<double> centrality;
  /// Per-vertex shortest-path counts from the source (σ_s(v); exact —
  /// integer-valued doubles).
  std::vector<double> sigma;
  uint32_t depth = 0;  ///< deepest BFS level reached
  double time_ms = 0;
};

/// Uniform request parameters: the variant alternative *is* the algorithm
/// selection.  Alternative order matches enum Algo.
using Params =
    std::variant<BfsOptions, SsspOptions, PageRankOptions, TcOptions,
                 CcOptions, KCoreOptions, JaccardOptions, WidestPathOptions,
                 ColoringOptions, EsbvOptions, BcOptions>;

/// Uniform result payload, same alternative order as Params.
///
/// Named AlgoResult (not Result) because `adgraph::Result<T>` is the
/// library-wide fallible-value wrapper and is used unqualified throughout
/// namespace core.
using AlgoResult =
    std::variant<BfsResult, SsspResult, PageRankResult, TcResult, CcResult,
                 KCoreResult, JaccardResult, WidestPathResult, ColoringResult,
                 EsbvResult, BcResult>;

/// Which algorithm a Run call dispatches.  Kept as a struct (rather than
/// a bare enum parameter) so future cross-algorithm knobs — deadlines,
/// engine policy overrides — extend it without touching every caller.
struct AlgoSpec {
  Algo algo = Algo::kBfs;
};

/// Modeled device time carried inside the payload (the per-algorithm
/// `time_ms` field).
double ResultTimeMs(const AlgoResult& result);

class GraphResidency;

/// \brief The uniform algorithm entry point: dispatches `spec.algo` with
/// the matching `params` alternative on `g`.
///
/// Fails with kInvalidArgument when `spec.algo` does not match
/// `params.index()`.  BFS, SSSP, PageRank, CC, widest-path, and betweenness
/// run on the frontier/operator engine (src/engine/, DESIGN.md §2.11); the
/// remaining algorithms dispatch to their core implementations on the same
/// signature.  Defined in src/engine/run.cc — callers link adgraph_engine
/// (every in-tree consumer already does).
Result<AlgoResult> Run(vgpu::Device* device, const AlgoSpec& spec,
                       const graph::CsrGraph& g, const Params& params,
                       GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_API_H_
