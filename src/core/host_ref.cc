#include "core/host_ref.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>

#include "core/bfs.h"
#include "graph/builder.h"

namespace adgraph::core::host_ref {

using graph::CsrGraph;
using graph::eid_t;
using graph::vid_t;

std::vector<uint32_t> BfsLevels(const CsrGraph& g, vid_t source) {
  std::vector<uint32_t> levels(g.num_vertices(), kUnreachedLevel);
  std::queue<vid_t> queue;
  levels[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    vid_t u = queue.front();
    queue.pop();
    for (vid_t v : g.neighbors(u)) {
      if (levels[v] == kUnreachedLevel) {
        levels[v] = levels[u] + 1;
        queue.push(v);
      }
    }
  }
  return levels;
}

namespace {

// Undirected simple adjacency (sorted, no loops/duplicates).
CsrGraph Symmetrized(const CsrGraph& g) {
  graph::CsrBuildOptions options;
  options.make_undirected = true;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.sort_neighbors = true;
  auto result = CsrGraph::FromCoo(g.ToCoo(), options);
  return std::move(result).value();  // inputs already validated
}

}  // namespace

uint64_t TriangleCount(const CsrGraph& g) {
  CsrGraph sym = Symmetrized(g);
  // Count each triangle once via the u < v < w ordering on sorted lists.
  uint64_t count = 0;
  for (vid_t u = 0; u < sym.num_vertices(); ++u) {
    auto adj_u = sym.neighbors(u);
    for (vid_t v : adj_u) {
      if (v <= u) continue;
      auto adj_v = sym.neighbors(v);
      // Intersect the > v suffixes of adj(u) and adj(v).
      auto it_u = std::upper_bound(adj_u.begin(), adj_u.end(), v);
      auto it_v = adj_v.begin();
      while (it_u != adj_u.end() && it_v != adj_v.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          if (*it_u > v) ++count;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return count;
}

CsrGraph ExtractSubgraph(const CsrGraph& g,
                         const std::vector<vid_t>& vertices) {
  std::vector<uint32_t> flag(g.num_vertices(), 0);
  for (vid_t v : vertices) flag[v] = 1;
  std::vector<vid_t> map(g.num_vertices(), 0);
  vid_t next = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (flag[v]) map[v] = next++;
  }
  graph::CooGraph coo;
  coo.num_vertices = next;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (!flag[u]) continue;
    auto adj = g.neighbors(u);
    for (size_t i = 0; i < adj.size(); ++i) {
      vid_t v = adj[i];
      if (!flag[v]) continue;
      if (g.has_weights()) {
        coo.AddEdge(map[u], map[v], g.edge_weights(u)[i]);
      } else {
        coo.AddEdge(map[u], map[v]);
      }
    }
  }
  graph::CsrBuildOptions options;
  options.sort_neighbors = true;
  return std::move(CsrGraph::FromCoo(coo, options)).value();
}

std::vector<double> PageRank(const CsrGraph& g, double alpha,
                             uint32_t iterations) {
  const vid_t n = g.num_vertices();
  std::vector<double> rank(n, n > 0 ? 1.0 / n : 0.0);
  std::vector<double> next(n);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    double dangling = 0;
    std::fill(next.begin(), next.end(), 0.0);
    for (vid_t u = 0; u < n; ++u) {
      eid_t deg = g.degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      double share = rank[u] / deg;
      for (vid_t v : g.neighbors(u)) next[v] += share;
    }
    double base = (1.0 - alpha) / n + alpha * dangling / n;
    for (vid_t v = 0; v < n; ++v) next[v] = base + alpha * next[v];
    rank.swap(next);
  }
  return rank;
}

std::vector<double> Sssp(const CsrGraph& g, vid_t source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_vertices(), kInf);
  dist[source] = 0;
  // Bellman-Ford with a change flag (matches the device iteration scheme).
  for (vid_t round = 0; round + 1 < std::max<vid_t>(g.num_vertices(), 1); ++round) {
    bool changed = false;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      if (dist[u] == kInf) continue;
      auto adj = g.neighbors(u);
      for (size_t i = 0; i < adj.size(); ++i) {
        double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
        if (dist[u] + w < dist[adj[i]]) {
          dist[adj[i]] = dist[u] + w;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<vid_t> ConnectedComponents(const CsrGraph& g) {
  CsrGraph sym = Symmetrized(g);
  std::vector<vid_t> label(sym.num_vertices(), graph::kInvalidVertex);
  for (vid_t s = 0; s < sym.num_vertices(); ++s) {
    if (label[s] != graph::kInvalidVertex) continue;
    label[s] = s;
    std::deque<vid_t> queue{s};
    while (!queue.empty()) {
      vid_t u = queue.front();
      queue.pop_front();
      for (vid_t v : sym.neighbors(u)) {
        if (label[v] == graph::kInvalidVertex) {
          label[v] = s;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

std::vector<double> JaccardPerEdge(const CsrGraph& g) {
  std::vector<double> out;
  out.reserve(g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj_u = g.neighbors(u);
    for (vid_t v : adj_u) {
      auto adj_v = g.neighbors(v);
      size_t inter = 0;
      auto it_u = adj_u.begin();
      auto it_v = adj_v.begin();
      while (it_u != adj_u.end() && it_v != adj_v.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          ++inter;
          ++it_u;
          ++it_v;
        }
      }
      size_t uni = adj_u.size() + adj_v.size() - inter;
      out.push_back(uni == 0 ? 0.0 : static_cast<double>(inter) / uni);
    }
  }
  return out;
}

std::vector<uint32_t> CoreNumbers(const CsrGraph& g) {
  CsrGraph sym = Symmetrized(g);
  const vid_t n = sym.num_vertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(sym.degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  // Matula-Beck peeling via bucket queue.
  std::vector<std::vector<vid_t>> buckets(max_degree + 1);
  for (vid_t v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<uint32_t> core(n, 0);
  std::vector<bool> removed(n, false);
  uint32_t current = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    auto& bucket = buckets[d];
    for (size_t i = 0; i < bucket.size(); ++i) {
      vid_t v = bucket[i];
      if (removed[v] || degree[v] > d) continue;
      removed[v] = true;
      current = std::max(current, d);
      core[v] = current;
      for (vid_t w : sym.neighbors(v)) {
        if (removed[w] || degree[w] <= d) continue;
        degree[w] -= 1;
        buckets[std::max(degree[w], d)].push_back(w);
      }
    }
  }
  return core;
}

std::vector<double> SpmvPlusTimes(const CsrGraph& g,
                                  const std::vector<double>& x) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj = g.neighbors(u);
    double acc = 0;
    for (size_t i = 0; i < adj.size(); ++i) {
      double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
      acc += w * x[adj[i]];
    }
    y[u] = acc;
  }
  return y;
}

std::vector<double> SpmvMinPlus(const CsrGraph& g,
                                const std::vector<double>& x) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> y(g.num_vertices(), kInf);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj = g.neighbors(u);
    double acc = kInf;
    for (size_t i = 0; i < adj.size(); ++i) {
      double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
      acc = std::min(acc, w + x[adj[i]]);
    }
    y[u] = acc;
  }
  return y;
}


std::vector<double> SpmvOrAnd(const CsrGraph& g,
                              const std::vector<double>& x) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj = g.neighbors(u);
    for (size_t i = 0; i < adj.size(); ++i) {
      double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
      if (w != 0.0 && x[adj[i]] != 0.0) {
        y[u] = 1.0;
        break;
      }
    }
  }
  return y;
}

std::vector<double> WidestPath(const CsrGraph& g, vid_t source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> width(g.num_vertices(), 0.0);
  width[source] = kInf;
  for (vid_t round = 0; round + 1 < std::max<vid_t>(g.num_vertices(), 1);
       ++round) {
    bool changed = false;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      if (width[u] == 0.0) continue;
      auto adj = g.neighbors(u);
      for (size_t i = 0; i < adj.size(); ++i) {
        double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
        double candidate = std::min(width[u], w);
        if (candidate > width[adj[i]]) {
          width[adj[i]] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return width;
}

graph::CsrGraph ExtractSubgraphByEdge(const CsrGraph& g,
                                      const std::vector<eid_t>& edges) {
  // Map each edge index to its (src, dst, w).
  std::vector<vid_t> src_of(g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (eid_t e = g.row_offsets()[u]; e < g.row_offsets()[u + 1]; ++e) {
      src_of[e] = u;
    }
  }
  std::vector<uint8_t> flag(g.num_vertices(), 0);
  for (eid_t e : edges) {
    flag[src_of[e]] = 1;
    flag[g.col_indices()[e]] = 1;
  }
  std::vector<vid_t> map(g.num_vertices(), 0);
  vid_t next = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (flag[v]) map[v] = next++;
  }
  graph::CooGraph coo;
  coo.num_vertices = next;
  for (eid_t e : edges) {
    if (g.has_weights()) {
      coo.AddEdge(map[src_of[e]], map[g.col_indices()[e]], g.weights()[e]);
    } else {
      coo.AddEdge(map[src_of[e]], map[g.col_indices()[e]]);
    }
  }
  graph::CsrBuildOptions options;
  options.sort_neighbors = true;
  return std::move(CsrGraph::FromCoo(coo, options)).value();
}

}  // namespace adgraph::core::host_ref
