#ifndef ADGRAPH_CORE_SUBGRAPH_H_
#define ADGRAPH_CORE_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "core/device_graph.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Options of Extract-Subgraph-By-Vertex (ESBV).
struct EsbvOptions {
  /// The vertex subset to extract (need not be sorted; duplicates ignored).
  std::vector<graph::vid_t> vertices;
  uint32_t block_size = 256;
};

/// Outcome of an extraction.
struct EsbvResult {
  /// The induced subgraph, renumbered 0..k-1 in ascending original-id
  /// order, with the original edge weights carried over.
  graph::CsrGraph subgraph;
  uint64_t subgraph_vertices = 0;
  uint64_t subgraph_edges = 0;
  double time_ms = 0;  ///< device kernel time
};

/// Extracts the vertex-induced subgraph of `g` on the device.
///
/// This is the paper's high-branch-complexity workload (§4.4): the pipeline
/// mirrors nvGRAPH's extraction on a weighted (MultiValued) graph —
/// CSC-native storage, an on-device CSC->CSR conversion, flag/renumber
/// scans, a conservatively-sized intermediate COO, and an on-device
/// COO->CSR rebuild.  Edge weights are mandatory in this path ("the
/// requirement of edge weight data", §4.5); an unweighted input fails with
/// kInvalidArgument — attach weights first (CsrGraph::WithUniformWeights or
/// graph::AttachRandomWeights).
///
/// The conservative intermediate allocations are what reproduce the paper's
/// twitter-mpi OOM row: on a graph whose weighted footprint is near device
/// capacity, the ~44 bytes/edge working set does not fit.
class GraphResidency;

Result<EsbvResult> ExtractSubgraphByVertex(vgpu::Device* device,
                                           const graph::CsrGraph& g,
                                           const EsbvOptions& options,
                                           GraphResidency* residency = nullptr);

/// Deterministic pseudo-cluster selector used by benches/examples: roughly
/// `fraction` of all vertices, chosen by multiplicative hash.
std::vector<graph::vid_t> SelectPseudoCluster(graph::vid_t num_vertices,
                                              double fraction, uint64_t seed);

/// Options of Extract-Subgraph-By-Edge (the companion nvGRAPH API):
/// keeps exactly the listed edges; the subgraph's vertex set is their
/// endpoints, renumbered in ascending original order.
struct EsbeOptions {
  /// CSR edge indices to keep (need not be sorted; duplicates each
  /// contribute one output edge, matching nvGRAPH).
  std::vector<graph::eid_t> edges;
  uint32_t block_size = 256;
};

struct EsbeResult {
  graph::CsrGraph subgraph;
  uint64_t subgraph_vertices = 0;
  uint64_t subgraph_edges = 0;
  double time_ms = 0;
};

/// Extracts the edge-selected subgraph of `g` on the device.  Each kernel
/// locates an edge's source row by binary search over the row offsets
/// (branch-heavy, like the rest of the extraction family).  Weights are
/// carried over when `g` has them; unweighted graphs are accepted.
Result<EsbeResult> ExtractSubgraphByEdge(vgpu::Device* device,
                                         const graph::CsrGraph& g,
                                         const EsbeOptions& options);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_SUBGRAPH_H_
